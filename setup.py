"""Setup shim for environments without the `wheel` package (offline PEP 660
builds fail there); `pip install -e .` falls back to this legacy path."""
from setuptools import setup

setup()
