"""Figure 8: our approach versus Basic on the CiteSeerX-like workload.

The paper's three sub-figures plot duplicate recall against execution time
on 10 machines: Basic with popcorn thresholds {F, 0.1, 0.07, 0.04, 0.01}
and {F, 0.007, 0.004, 0.001, 0.00001} at window w = 15, and the best four
thresholds at w = 5, each against our approach.

Expected shape (paper): our curve dominates every Basic variant after the
brief preprocessing overhead; aggressive thresholds rise fast but plateau
low; Basic F is slowest but reaches Basic's maximum recall; w = 5 does not
materially improve Basic's progressiveness.
"""

from __future__ import annotations

import pytest

from repro.baselines import BasicConfig
from repro.blocking import citeseer_scheme
from repro.core import citeseer_config
from repro.evaluation import (
    ExperimentRun,
    RunSpec,
    format_curves,
    format_final_summary,
    sample_times,
)
from repro.mechanisms import SortedNeighborHint

pytestmark = pytest.mark.bench

MACHINES = 10

SUBFIGURES = {
    "fig8-left (w=15, coarse thresholds)": (15, [None, 0.1, 0.07, 0.04, 0.01]),
    "fig8-middle (w=15, fine thresholds)": (15, [None, 0.007, 0.004, 0.001, 0.00001]),
    "fig8-right (w=5, best thresholds)": (5, [None, 0.07, 0.01, 0.007]),
}


def _basic_config(matcher, window, threshold):
    return BasicConfig(
        scheme=citeseer_scheme(),
        matcher=matcher,
        mechanism=SortedNeighborHint(),
        window=window,
        popcorn_threshold=threshold,
    )


@pytest.fixture(scope="module")
def ours_run(citeseer_dataset, citeseer_cached_matcher):
    config = citeseer_config(matcher=citeseer_cached_matcher)
    return ExperimentRun(
        RunSpec(citeseer_dataset, config, machines=MACHINES, label="Our Approach")
    ).run()


@pytest.mark.parametrize("subfigure", list(SUBFIGURES))
def test_fig8(benchmark, subfigure, citeseer_dataset, citeseer_cached_matcher, ours_run, report):
    window, thresholds = SUBFIGURES[subfigure]

    def run_subfigure():
        runs = [ours_run]
        for threshold in thresholds:
            label = f"Basic {'F' if threshold is None else threshold} (w={window})"
            config = _basic_config(citeseer_cached_matcher, window, threshold)
            runs.append(
                ExperimentRun(
                    RunSpec(citeseer_dataset, config, machines=MACHINES, label=label)
                ).run()
            )
        return runs

    runs = benchmark.pedantic(run_subfigure, rounds=1, iterations=1)
    # The paper plots each sub-figure over a fixed x-range covering our
    # approach's run; Basic variants that end earlier hold their final
    # recall (their curves flatline), exactly like in the figures.
    horizon = runs[0].total_time
    times = sample_times(horizon, points=10)
    report(
        format_curves(runs, times, title=f"{subfigure} — recall vs time (μ={MACHINES})")
        + "\n\n"
        + format_final_summary(runs, title="final recall / total time")
    )

    ours, *basics = runs
    basic_f = basics[0]
    # Headline claims (tolerant to the early-overhead window):
    late = [t for t in times if t >= horizon * 0.3]
    dominated = sum(
        1 for t in late if ours.curve.recall_at(t) >= basic_f.curve.recall_at(t)
    )
    assert dominated >= len(late) - 1, "ours must dominate Basic F past the overhead"
    assert ours.final_recall >= basic_f.final_recall - 0.02
    benchmark.extra_info["final_recall_ours"] = round(ours.final_recall, 4)
    benchmark.extra_info["final_recall_basic_f"] = round(basic_f.final_recall, 4)
