"""Microbenchmarks for the hot kernels under everything else.

Not a paper artifact — a regression guard for the implementation: pair
comparisons dominate real runtime, blocking and schedule generation
dominate the per-run setup.
"""

from __future__ import annotations

import random

import pytest

from repro.blocking import build_forests, citeseer_scheme
from repro.core.config import citeseer_config
from repro.core.estimation import EstimationModel, UniformEstimator
from repro.core.schedule import generate_schedule
from repro.core.statistics import run_statistics_job
from repro.mapreduce import Cluster, CostModel
from repro.similarity import citeseer_matcher, jaro_winkler, levenshtein


def _random_string(rng, length):
    return "".join(rng.choice("abcdefghij ") for _ in range(length))


@pytest.mark.parametrize("length", [20, 60, 150])
def test_levenshtein_throughput(benchmark, length):
    rng = random.Random(0)
    pairs = [
        (_random_string(rng, length), _random_string(rng, length))
        for _ in range(50)
    ]

    def kernel():
        return sum(levenshtein(a, b) for a, b in pairs)

    total = benchmark(kernel)
    assert total > 0


def test_jaro_winkler_throughput(benchmark):
    rng = random.Random(1)
    pairs = [(_random_string(rng, 20), _random_string(rng, 20)) for _ in range(100)]

    def kernel():
        return sum(jaro_winkler(a, b) for a, b in pairs)

    total = benchmark(kernel)
    assert total >= 0


def test_matcher_throughput(benchmark, citeseer_dataset):
    matcher = citeseer_matcher()  # uncached: measure the real kernel
    rng = random.Random(2)
    pairs = [tuple(rng.sample(citeseer_dataset.entities, 2)) for _ in range(40)]

    def kernel():
        return sum(matcher.is_match(a, b) for a, b in pairs)

    benchmark(kernel)


def test_blocking_throughput(benchmark, citeseer_dataset):
    scheme = citeseer_scheme()
    forests = benchmark(build_forests, citeseer_dataset, scheme)
    assert sum(f.num_blocks for f in forests.values()) > 0


def test_statistics_job_throughput(benchmark, citeseer_dataset):
    scheme = citeseer_scheme()
    cluster = Cluster(10)

    def kernel():
        return run_statistics_job(cluster, citeseer_dataset, scheme)

    _, stats, _ = benchmark(kernel)
    assert stats.num_blocks > 0


def test_schedule_generation_throughput(benchmark, citeseer_dataset):
    scheme = citeseer_scheme()
    cluster = Cluster(10)
    config = citeseer_config()

    def fresh_stats():
        # generate_schedule mutates the statistics trees (elimination and
        # splits), so every round gets a fresh copy.
        _, stats, _ = run_statistics_job(cluster, citeseer_dataset, scheme)
        return (stats,), {}

    def kernel(stats):
        model = EstimationModel(
            config, CostModel(), UniformEstimator(0.05), len(citeseer_dataset)
        )
        return generate_schedule(stats, model, config, 20, strategy="ours")

    schedule = benchmark.pedantic(kernel, setup=fresh_stats, rounds=3, iterations=1)
    assert schedule.num_blocks > 0
