"""Microbenchmarks for the hot kernels under everything else.

Not a paper artifact — a regression guard for the implementation: pair
comparisons dominate real runtime, blocking and schedule generation
dominate the per-run setup.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

import pytest

from repro.blocking import build_forests, citeseer_scheme
from repro.core.config import citeseer_config
from repro.core.estimation import EstimationModel, UniformEstimator
from repro.core.schedule import generate_schedule
from repro.core.statistics import run_statistics_job
from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce import Cluster, CostModel, ParallelExecutor, SerialExecutor
from repro.similarity import (
    batch_is_match,
    books_matcher,
    citeseer_matcher,
    clear_similarity_cache,
    jaro_winkler,
    levenshtein,
)


def _random_string(rng, length):
    return "".join(rng.choice("abcdefghij ") for _ in range(length))


@pytest.mark.parametrize("length", [20, 60, 150])
def test_levenshtein_throughput(benchmark, length):
    rng = random.Random(0)
    pairs = [
        (_random_string(rng, length), _random_string(rng, length))
        for _ in range(50)
    ]

    def kernel():
        return sum(levenshtein(a, b) for a, b in pairs)

    total = benchmark(kernel)
    assert total > 0


def test_jaro_winkler_throughput(benchmark):
    rng = random.Random(1)
    pairs = [(_random_string(rng, 20), _random_string(rng, 20)) for _ in range(100)]

    def kernel():
        return sum(jaro_winkler(a, b) for a, b in pairs)

    total = benchmark(kernel)
    assert total >= 0


def test_matcher_throughput(benchmark, citeseer_dataset):
    matcher = citeseer_matcher()  # uncached: measure the real kernel
    rng = random.Random(2)
    pairs = [tuple(rng.sample(citeseer_dataset.entities, 2)) for _ in range(40)]

    def kernel():
        return sum(matcher.is_match(a, b) for a, b in pairs)

    benchmark(kernel)


def test_blocking_throughput(benchmark, citeseer_dataset):
    scheme = citeseer_scheme()
    forests = benchmark(build_forests, citeseer_dataset, scheme)
    assert sum(f.num_blocks for f in forests.values()) > 0


def test_statistics_job_throughput(benchmark, citeseer_dataset):
    scheme = citeseer_scheme()
    cluster = Cluster(10)

    def kernel():
        return run_statistics_job(cluster, citeseer_dataset, scheme)

    _, stats, _ = benchmark(kernel)
    assert stats.num_blocks > 0


def test_schedule_generation_throughput(benchmark, citeseer_dataset):
    scheme = citeseer_scheme()
    cluster = Cluster(10)
    config = citeseer_config()

    def fresh_stats():
        # generate_schedule mutates the statistics trees (elimination and
        # splits), so every round gets a fresh copy.
        _, stats, _ = run_statistics_job(cluster, citeseer_dataset, scheme)
        return (stats,), {}

    def kernel(stats):
        model = EstimationModel(
            config, CostModel(), UniformEstimator(0.05), len(citeseer_dataset)
        )
        return generate_schedule(stats, model, config, 20, strategy="ours")

    schedule = benchmark.pedantic(kernel, setup=fresh_stats, rounds=3, iterations=1)
    assert schedule.num_blocks > 0


# ---------------------------------------------------------------------------
# Execution backends: serial versus process wall-clock (FIG10 workload)
# ---------------------------------------------------------------------------

BACKEND_BENCH_MACHINES = [5, 20]  # μ values; θ shrinks as μ grows
BACKEND_BENCH_WORKERS = 4  # requested; clamped to the CPU affinity mask at run time
BACKEND_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_backend.json"

#: PR 4's measured ``ipc_payload_bytes`` on this exact workload: it shipped
#: whole encoded partitions back over the result queue.  The shared-memory
#: data plane must keep the queue down to descriptors — at least 5x below
#: these numbers, machine-independently.
PR4_RESULT_QUEUE_BYTES = {5: 43188, 20: 53950}


def _visible_cpus() -> int:
    """CPUs this process may actually run on (the affinity mask, not the
    box).  Container runners routinely pin pytest to a slice of the host."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _timed_fig10_run(dataset, machines, executor):
    """One FIG10-style progressive run on the books workload, wall-clocked.

    Every run starts from a cold similarity memo and a fresh (uncached)
    matcher so neither backend inherits the other's warm state.
    """
    from repro.core import books_config

    clear_similarity_cache()
    start = time.perf_counter()
    run = ExperimentRun(
        RunSpec(dataset, books_config(), machines=machines, executor=executor)
    ).run()
    elapsed = time.perf_counter() - start
    return run, elapsed


def test_parallel_backend_wall_clock(books_dataset, report):
    """Serial versus process backend on the FIG10 bench workload.

    Emits ``BENCH_parallel_backend.json`` with the per-μ wall-clock
    trajectory plus the runtime's machine-independent efficiency facts:
    pool forks per run (must stay ≤ one per job), payload wire bytes
    versus the plain-pickle baseline (must stay ≥3x smaller), result-queue
    descriptor bytes versus PR 4's full-payload queues (must stay ≥5x
    smaller while shared memory is up), and the work-stealing counters
    (steals taken, worker idle time).  Worker count is clamped to the CPU
    affinity mask and both the requested and effective values are
    recorded.  Virtual-time results must agree exactly across backends
    (that is the determinism contract); the speedup expectation only
    applies where the hardware can deliver it, so runs on affinity-limited
    hosts are annotated ``parallelism_limited`` and skip that assertion.
    """
    cpus = _visible_cpus()
    # Clamp to the affinity mask, but never below two workers: the
    # transport facts (wire/descriptor/steal counters) are machine-
    # independent and need a real fan-out to exist, while the wall-clock
    # speedup assertion is already gated on ``parallelism_limited``.
    workers = min(BACKEND_BENCH_WORKERS, max(2, cpus))
    parallelism_limited = cpus < BACKEND_BENCH_WORKERS
    entries = []
    lines = [
        f"parallel backend wall-clock — books x{len(books_dataset)}, "
        f"{workers} workers ({BACKEND_BENCH_WORKERS} requested, "
        f"{cpus} visible CPUs)"
    ]
    for machines in BACKEND_BENCH_MACHINES:
        serial_run, serial_s = _timed_fig10_run(
            books_dataset, machines, SerialExecutor()
        )
        executor = ParallelExecutor(workers, profile_wire=True)
        process_run, process_s = _timed_fig10_run(
            books_dataset, machines, executor
        )
        assert serial_run.total_time == process_run.total_time
        assert serial_run.final_recall == process_run.final_recall
        result = process_run.result
        jobs = 2 if hasattr(result, "job2") else 1
        stats = executor.stats
        forks = stats.get("pool_forks", 0)
        descriptor_bytes = stats.get("ipc_payload_bytes", 0)
        wire_bytes = stats.get("payload_wire_bytes", 0)
        raw_bytes = stats.get("ipc_payload_raw_bytes", 0)
        shm_segments = stats.get("shm_segments", 0)
        wire_ratio = raw_bytes / wire_bytes if wire_bytes else None
        assert forks <= jobs, f"{forks} pool forks for {jobs} jobs"
        if wire_bytes:
            assert wire_ratio >= 3.0, (
                f"wire format only {wire_ratio:.2f}x smaller than plain pickle"
            )
        if shm_segments and wire_bytes:
            # The result queue now carries (segment, offset, length)
            # descriptors, not payloads.  Hold the line against PR 4.
            baseline = PR4_RESULT_QUEUE_BYTES[machines]
            assert descriptor_bytes * 5 <= baseline, (
                f"result-queue bytes {descriptor_bytes} not 5x below the "
                f"PR 4 full-payload baseline {baseline} at mu={machines}"
            )
        speedup = serial_s / process_s if process_s > 0 else float("inf")
        entries.append(
            {
                "workload": "fig10-books-progressive",
                "entities": len(books_dataset),
                "machines": machines,
                "workers": workers,
                "serial_seconds": round(serial_s, 3),
                "process_seconds": round(process_s, 3),
                "speedup": round(speedup, 3),
                "parallelism_limited": parallelism_limited,
                "virtual_time": serial_run.total_time,
                "final_recall": serial_run.final_recall,
                "jobs": jobs,
                "driver": {
                    "pool_forks": forks,
                    "tasks_fanned": stats.get("tasks_fanned", 0),
                    "tasks_inline": stats.get("tasks_inline", 0),
                    "steal_tasks": stats.get("steal_tasks", 0),
                    "worker_idle_ms": stats.get("worker_idle_ms", 0),
                    "shm_segments": shm_segments,
                    "shm_input_bytes": stats.get("shm_input_bytes", 0),
                    "shm_payload_bytes": stats.get("shm_payload_bytes", 0),
                    "payload_wire_bytes": wire_bytes,
                    "ipc_payload_bytes": descriptor_bytes,
                    "ipc_payload_raw_bytes": raw_bytes,
                    "ipc_input_bytes": stats.get("ipc_input_bytes", 0),
                    "wire_ratio": round(wire_ratio, 3) if wire_ratio else None,
                },
            }
        )
        lines.append(
            f"  mu={machines:2d}: serial {serial_s:7.2f}s  "
            f"process {process_s:7.2f}s  speedup {speedup:4.2f}x  "
            f"forks {forks}/{jobs} jobs  wire "
            + (f"{wire_ratio:.1f}x" if wire_ratio else "n/a")
            + f"  queue {descriptor_bytes}B  steals {stats.get('steal_tasks', 0)}"
        )
    payload = {
        "bench": "parallel_backend",
        "cpus_visible": cpus,
        "workers_requested": BACKEND_BENCH_WORKERS,
        "workers": workers,
        "parallelism_limited": parallelism_limited,
        "note": (
            "speedup reflects the machine the bench ran on; entries marked "
            "parallelism_limited ran with the worker count clamped to fewer "
            "visible CPUs than requested, where the process backend cannot "
            "beat serial.  pool_forks, the wire ratio, and the result-queue "
            "descriptor bytes are machine-independent."
        ),
        "pr4_result_queue_bytes": PR4_RESULT_QUEUE_BYTES,
        "trajectory": entries,
    }
    BACKEND_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    report("\n".join(lines) + f"\n  wrote {BACKEND_BENCH_PATH.name}")
    if not parallelism_limited:
        best = max(entry["speedup"] for entry in entries)
        assert best > 1.0, f"expected >1x speedup with {cpus} CPUs, got {best}x"


# ---------------------------------------------------------------------------
# Perf smoke: kernel crossover and threshold propagation (CI-asserted)
# ---------------------------------------------------------------------------


def test_myers_beats_scalar_dp_on_long_strings(report):
    """Myers' bit-parallel kernel must stay ≥10x faster than the scalar
    two-row DP on 300-character inputs (the abstract-length regime)."""
    from repro.similarity.edit_distance import _full_dp, _myers_dp

    rng = random.Random(5)
    pairs = [
        (_random_string(rng, 300), _random_string(rng, 300)) for _ in range(8)
    ]
    # Warm up, then time the best of 3 rounds each to shrug off CI jitter.
    for a, b in pairs[:2]:
        assert _myers_dp(a, b) == _full_dp(a, b)

    def _best_of(kernel, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for a, b in pairs:
                kernel(a, b)
            best = min(best, time.perf_counter() - start)
        return best

    scalar_s = _best_of(_full_dp)
    myers_s = _best_of(_myers_dp)
    ratio = scalar_s / myers_s if myers_s > 0 else float("inf")
    report(
        f"myers vs scalar DP (300 chars): scalar {scalar_s * 1e3:.1f}ms  "
        f"myers {myers_s * 1e3:.1f}ms  ratio {ratio:.1f}x"
    )
    assert ratio >= 10.0, f"Myers only {ratio:.1f}x faster than scalar DP"


def test_threshold_propagation_reduces_banded_work(books_dataset, report):
    """Propagating the matcher's running bound into the edit kernel must
    shrink DP cell visits on the books workload without flipping a single
    decision."""
    from repro.core import books_config
    from repro.similarity import dp_cell_counters, reset_dp_cell_counters
    from repro.similarity.matchers import WeightedMatcher

    config = books_config()
    matcher = config.matcher
    rng = random.Random(9)
    pairs = [tuple(rng.sample(books_dataset.entities, 2)) for _ in range(400)]
    # Mix in near-duplicates so both accept and reject paths are exercised.
    pairs += [(e, e) for e in rng.sample(books_dataset.entities, 50)]

    def _run_decisions():
        clear_similarity_cache()
        reset_dp_cell_counters()
        decisions = [matcher.is_match(a, b) for a, b in pairs]
        return decisions, sum(dp_cell_counters().values())

    propagated_decisions, propagated_cells = _run_decisions()
    original_floor = WeightedMatcher._rule_floor
    WeightedMatcher._rule_floor = lambda self, *args: 0.0  # disable propagation
    try:
        baseline_decisions, baseline_cells = _run_decisions()
    finally:
        WeightedMatcher._rule_floor = original_floor

    report(
        f"threshold propagation on books pairs: {propagated_cells:,} DP cells "
        f"vs {baseline_cells:,} without ({baseline_cells / max(propagated_cells, 1):.2f}x)"
    )
    assert propagated_decisions == baseline_decisions
    assert propagated_cells < baseline_cells


def test_batch_kernel_call_reduction(books_dataset, report):
    """The batched kernel must make ≥3x fewer Python-level calls than the
    per-pair scalar path on the same fixed batch.

    This is the machine-independent core of the wall-clock claim: batching
    amortizes attribute extraction, rule dispatch and memo lookups across
    the batch, so the interpreter executes far fewer function calls for
    identical decisions.  Calls are counted with ``sys.setprofile`` 'call'
    events (Python frames only — C entry points are excluded on both
    sides, so numpy availability does not skew the ratio).
    """
    matcher = books_matcher()
    rng = random.Random(13)
    # A small pool with repeats: real reduce batches revisit the same
    # entities and values across the window, which is exactly where the
    # batch kernel's per-rule dedup and hoisted rows pay off.
    pool = books_dataset.entities[:12]
    pairs = [tuple(rng.sample(pool, 2)) for _ in range(240)]
    pairs += [(e, e) for e in pool]

    def _count_calls(fn):
        calls = 0

        def profiler(frame, event, arg):
            nonlocal calls
            if event == "call":
                calls += 1

        clear_similarity_cache()  # both sides start from a cold memo
        sys.setprofile(profiler)
        try:
            result = fn()
        finally:
            sys.setprofile(None)
        return result, calls

    scalar, scalar_calls = _count_calls(
        lambda: [matcher.is_match(a, b) for a, b in pairs]
    )
    batched, batch_calls = _count_calls(lambda: batch_is_match(matcher, pairs))
    ratio = scalar_calls / max(batch_calls, 1)
    report(
        f"batch kernel call reduction on {len(pairs)} pairs: "
        f"scalar {scalar_calls:,} calls vs batch {batch_calls:,} "
        f"({ratio:.1f}x fewer)"
    )
    assert batched == scalar
    assert ratio >= 3.0, (
        f"batch kernel only cut Python calls by {ratio:.2f}x (need >=3x)"
    )
