"""Microbenchmarks for the hot kernels under everything else.

Not a paper artifact — a regression guard for the implementation: pair
comparisons dominate real runtime, blocking and schedule generation
dominate the per-run setup.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.blocking import build_forests, citeseer_scheme
from repro.core.config import citeseer_config
from repro.core.estimation import EstimationModel, UniformEstimator
from repro.core.schedule import generate_schedule
from repro.core.statistics import run_statistics_job
from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce import Cluster, CostModel, ParallelExecutor, SerialExecutor
from repro.similarity import (
    citeseer_matcher,
    clear_similarity_cache,
    jaro_winkler,
    levenshtein,
)


def _random_string(rng, length):
    return "".join(rng.choice("abcdefghij ") for _ in range(length))


@pytest.mark.parametrize("length", [20, 60, 150])
def test_levenshtein_throughput(benchmark, length):
    rng = random.Random(0)
    pairs = [
        (_random_string(rng, length), _random_string(rng, length))
        for _ in range(50)
    ]

    def kernel():
        return sum(levenshtein(a, b) for a, b in pairs)

    total = benchmark(kernel)
    assert total > 0


def test_jaro_winkler_throughput(benchmark):
    rng = random.Random(1)
    pairs = [(_random_string(rng, 20), _random_string(rng, 20)) for _ in range(100)]

    def kernel():
        return sum(jaro_winkler(a, b) for a, b in pairs)

    total = benchmark(kernel)
    assert total >= 0


def test_matcher_throughput(benchmark, citeseer_dataset):
    matcher = citeseer_matcher()  # uncached: measure the real kernel
    rng = random.Random(2)
    pairs = [tuple(rng.sample(citeseer_dataset.entities, 2)) for _ in range(40)]

    def kernel():
        return sum(matcher.is_match(a, b) for a, b in pairs)

    benchmark(kernel)


def test_blocking_throughput(benchmark, citeseer_dataset):
    scheme = citeseer_scheme()
    forests = benchmark(build_forests, citeseer_dataset, scheme)
    assert sum(f.num_blocks for f in forests.values()) > 0


def test_statistics_job_throughput(benchmark, citeseer_dataset):
    scheme = citeseer_scheme()
    cluster = Cluster(10)

    def kernel():
        return run_statistics_job(cluster, citeseer_dataset, scheme)

    _, stats, _ = benchmark(kernel)
    assert stats.num_blocks > 0


def test_schedule_generation_throughput(benchmark, citeseer_dataset):
    scheme = citeseer_scheme()
    cluster = Cluster(10)
    config = citeseer_config()

    def fresh_stats():
        # generate_schedule mutates the statistics trees (elimination and
        # splits), so every round gets a fresh copy.
        _, stats, _ = run_statistics_job(cluster, citeseer_dataset, scheme)
        return (stats,), {}

    def kernel(stats):
        model = EstimationModel(
            config, CostModel(), UniformEstimator(0.05), len(citeseer_dataset)
        )
        return generate_schedule(stats, model, config, 20, strategy="ours")

    schedule = benchmark.pedantic(kernel, setup=fresh_stats, rounds=3, iterations=1)
    assert schedule.num_blocks > 0


# ---------------------------------------------------------------------------
# Execution backends: serial versus process wall-clock (FIG10 workload)
# ---------------------------------------------------------------------------

BACKEND_BENCH_MACHINES = [5, 20]  # μ values; θ shrinks as μ grows
BACKEND_BENCH_WORKERS = 4
BACKEND_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_backend.json"


def _timed_fig10_run(dataset, machines, executor):
    """One FIG10-style progressive run on the books workload, wall-clocked.

    Every run starts from a cold similarity memo and a fresh (uncached)
    matcher so neither backend inherits the other's warm state.
    """
    from repro.core import books_config

    clear_similarity_cache()
    start = time.perf_counter()
    run = ExperimentRun(
        RunSpec(dataset, books_config(), machines=machines, executor=executor)
    ).run()
    elapsed = time.perf_counter() - start
    return run, elapsed


def test_parallel_backend_wall_clock(books_dataset, report):
    """Serial versus process backend on the FIG10 bench workload.

    Emits ``BENCH_parallel_backend.json`` with the per-μ wall-clock
    trajectory.  Virtual-time results must agree exactly across backends
    (that is the determinism contract); the ≥2× speedup expectation only
    applies where the hardware can deliver it, so the assertion is gated
    on the visible CPU count.
    """
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    entries = []
    lines = [
        f"parallel backend wall-clock — books x{len(books_dataset)}, "
        f"{BACKEND_BENCH_WORKERS} workers, {cpus} visible CPUs"
    ]
    for machines in BACKEND_BENCH_MACHINES:
        serial_run, serial_s = _timed_fig10_run(
            books_dataset, machines, SerialExecutor()
        )
        process_run, process_s = _timed_fig10_run(
            books_dataset, machines, ParallelExecutor(BACKEND_BENCH_WORKERS)
        )
        assert serial_run.total_time == process_run.total_time
        assert serial_run.final_recall == process_run.final_recall
        speedup = serial_s / process_s if process_s > 0 else float("inf")
        entries.append(
            {
                "workload": "fig10-books-progressive",
                "entities": len(books_dataset),
                "machines": machines,
                "workers": BACKEND_BENCH_WORKERS,
                "serial_seconds": round(serial_s, 3),
                "process_seconds": round(process_s, 3),
                "speedup": round(speedup, 3),
                "virtual_time": serial_run.total_time,
                "final_recall": serial_run.final_recall,
            }
        )
        lines.append(
            f"  mu={machines:2d}: serial {serial_s:7.2f}s  "
            f"process {process_s:7.2f}s  speedup {speedup:4.2f}x"
        )
    payload = {
        "bench": "parallel_backend",
        "cpus_visible": cpus,
        "workers": BACKEND_BENCH_WORKERS,
        "note": (
            "speedup reflects the machine the bench ran on; with fewer than "
            "`workers` CPUs the process backend cannot beat serial"
        ),
        "trajectory": entries,
    }
    BACKEND_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    report("\n".join(lines) + f"\n  wrote {BACKEND_BENCH_PATH.name}")
    if cpus >= BACKEND_BENCH_WORKERS:
        best = max(entry["speedup"] for entry in entries)
        assert best >= 2.0, f"expected >=2x speedup with {cpus} CPUs, got {best}x"
