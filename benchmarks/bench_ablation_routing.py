"""Ablation: per-tree versus per-block routing (footnote 5).

The paper's actual implementation emits each entity once per *tree*
containing it and re-derives sub-block membership reduce-side; the naive
design emits once per *block*.  Both produce identical results; the
footnote exists because the naive shuffle is strictly larger.

Expected shape: identical duplicate sets; per-block routing ships more
intermediate records and at least as much shuffle cost.
"""

from __future__ import annotations

import pytest

from repro.core import ProgressiveER, citeseer_config
from repro.mapreduce import Cluster
from repro.evaluation import format_table

pytestmark = pytest.mark.bench

MACHINES = 10


def test_routing_ablation(benchmark, citeseer_dataset, citeseer_cached_matcher, report):
    def run_ablation():
        results = {}
        for routing in ("tree", "block"):
            config = citeseer_config(
                matcher=citeseer_cached_matcher, routing=routing
            )
            results[routing] = ProgressiveER(config, Cluster(MACHINES)).run(
                citeseer_dataset
            )
        return results

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for routing, result in results.items():
        rows.append(
            [
                routing,
                f"{result.job2.counters.get('map', 'emitted'):,d}",
                f"{len(result.found_pairs):,d}",
                f"{result.total_time:,.0f}",
            ]
        )
    report(
        format_table(
            ["routing", "shuffled records", "duplicates", "total time"],
            rows,
            title="ablation — per-tree vs per-block routing (footnote 5)",
        )
    )

    tree, block = results["tree"], results["block"]
    assert tree.found_pairs == block.found_pairs, "routing must not change results"
    assert block.job2.counters.get("engine", "map_emitted") > tree.job2.counters.get(
        "engine", "map_emitted"
    ), "per-block routing must ship more records"
    benchmark.extra_info["shuffle_saving"] = round(
        1.0
        - tree.job2.counters.get("engine", "map_emitted")
        / block.job2.counters.get("engine", "map_emitted"),
        4,
    )
