"""Load-balancing benchmark: reduce-phase makespan under data skew.

The skewed workload concentrates most entities in one hub block, the
failure mode the balance strategies target (Kolb et al.'s BlockSplit /
PairRange setting).  Each strategy resolves the *same* duplicate pairs —
the differential suite pins that — so the only question is virtual time:

* how much reduce-phase makespan does each strategy cut versus the
  untouched ``slack`` baseline, and
* does the planned (estimate-based) improvement materialize in the
  simulated timeline?

Acceptance: the best non-``slack`` strategy cuts the reduce-phase
makespan by at least 1.5x at identical resolved output, and the global
``pairrange`` beats its deprecated tree-granularity alias
``pairrange-tree`` by at least 1.3x (whole-tree placement cannot split
the hub block, so it stays hub-bound).  Results are recorded in
``BENCH_load_balance.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import skewed_config
from repro.core.balance import BALANCE_STRATEGIES
from repro.evaluation import ExperimentRun, RunSpec

pytestmark = pytest.mark.bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_load_balance.json"

MACHINES = 3
ACCEPT_SPEEDUP = 1.5
ACCEPT_GLOBAL_OVER_TREE = 1.3


def _reduce_span(run):
    job2 = run.result.job2
    return job2.end_time - job2.map_phase_end


def test_load_balance_bench(
    skewed_dataset, skewed_cached_matcher, calibrated_seconds, report
):
    runs = {}
    for strategy in BALANCE_STRATEGIES:
        spec = RunSpec(
            skewed_dataset,
            skewed_config(matcher=skewed_cached_matcher),
            machines=MACHINES,
            balance=strategy,
        )
        runs[strategy] = ExperimentRun(spec).run()

    slack = runs["slack"]
    assert slack.found_pairs, "benchmark is vacuous: nothing resolved"

    entries = {}
    for strategy, run in runs.items():
        # Equal resolved output is the precondition for comparing time.
        assert run.found_pairs == slack.found_pairs, strategy
        plan = run.result.balance
        entries[strategy] = {
            "reduce_makespan": _reduce_span(run),
            "total_time": run.total_time,
            "final_recall": run.final_recall,
            "found_pairs": len(run.found_pairs),
            "planned_makespan_before": plan.before.max,
            "planned_makespan_after": plan.after.max,
            "gini_before": plan.before.gini,
            "gini_after": plan.after.gini,
            "shards": len(plan.shards),
            "moved_trees": plan.moved_trees,
        }
        if calibrated_seconds is not None:
            # The same makespans restated in this host's estimated wall
            # seconds (fitted compare price from BENCH_calibration.json).
            entries[strategy]["reduce_makespan_calibrated_s"] = calibrated_seconds(
                _reduce_span(run)
            )
            entries[strategy]["total_time_calibrated_s"] = calibrated_seconds(
                run.total_time
            )

    slack_span = entries["slack"]["reduce_makespan"]
    speedups = {
        strategy: slack_span / entries[strategy]["reduce_makespan"]
        for strategy in BALANCE_STRATEGIES
        if strategy != "slack"
    }
    best_strategy = max(speedups, key=speedups.get)

    # Acceptance: the skew-aware strategies actually pay off on skew.
    assert speedups[best_strategy] >= ACCEPT_SPEEDUP, speedups

    # Acceptance: global PairRange decisively beats the deprecated
    # tree-granularity variant, which cannot split the hub block.
    global_over_tree = (
        entries["pairrange-tree"]["reduce_makespan"]
        / entries["pairrange"]["reduce_makespan"]
    )
    assert global_over_tree >= ACCEPT_GLOBAL_OVER_TREE, global_over_tree

    payload = {
        "bench": "load_balance",
        "note": (
            "Reduce-phase makespan per balance strategy on the skewed "
            "workload (one hub block), identical resolved pairs across "
            f"strategies. skewed scale {len(skewed_dataset.entities)}, "
            f"{MACHINES} machines."
        ),
        "strategies": entries,
        "speedups_vs_slack": speedups,
        "best_strategy": best_strategy,
        "acceptance_speedup": ACCEPT_SPEEDUP,
        "pairrange_global_over_tree": global_over_tree,
        "acceptance_global_over_tree": ACCEPT_GLOBAL_OVER_TREE,
    }
    if calibrated_seconds is not None:
        payload["calibration"] = {
            "seconds_per_compare_unit": calibrated_seconds.seconds_per_compare_unit,
            "source": "BENCH_calibration.json",
        }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"load balancing (skewed, {MACHINES} machines)"]
    for strategy in BALANCE_STRATEGIES:
        e = entries[strategy]
        speed = "" if strategy == "slack" else f"  ({speedups[strategy]:.2f}x)"
        lines.append(
            f"  {strategy:10s}: reduce makespan {e['reduce_makespan']:10.1f}"
            f"  gini {e['gini_before']:.2f}->{e['gini_after']:.2f}"
            f"  shards {e['shards']:3d}{speed}"
        )
    report("\n".join(lines) + f"\n  wrote {BENCH_PATH.name}")
