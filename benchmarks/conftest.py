"""Shared benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper's
evaluation (Section VI) on the simulated cluster.  Datasets and matcher
caches are session-scoped: the first run of a dataset pays for the real
similarity computations, subsequent runs hit the per-pair cache, so a
whole figure's sweep stays fast while remaining bit-for-bit deterministic.

Reports are printed straight to the terminal (bypassing capture) so
``pytest benchmarks/ --benchmark-only`` shows the paper-style tables.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.data import Dataset, make_books, make_citeseer, make_skewed
from repro.similarity import books_matcher, citeseer_matcher


def pytest_collection_modifyitems(config, items):
    """Skip ``bench``-marked full-pipeline benchmarks unless opted in.

    Opt in with ``RUN_BENCH=1`` (an env var rather than a CLI option:
    ``pytest_addoption`` is only honored in the rootdir conftest, and this
    one must keep working when benchmarks are collected from the repo
    root).  Micro-kernel tests stay unmarked and always run.
    """
    if os.environ.get("RUN_BENCH") == "1":
        return
    skip = pytest.mark.skip(
        reason="full-pipeline benchmark; set RUN_BENCH=1 to run"
    )
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip)

#: Benchmark workload scales.  The paper runs 1.5M/30M entities on a
#: 25-machine Hadoop cluster; the simulator reproduces the curve shapes at
#: laptop scale (see DESIGN.md's substitution table).
CITESEER_SCALE = 2000
BOOKS_SCALE = 3000


@pytest.fixture(scope="session")
def citeseer_dataset() -> Dataset:
    """CiteSeerX-like workload (Sections VI-B1 / VI-B2)."""
    return make_citeseer(CITESEER_SCALE, seed=7)


@pytest.fixture(scope="session")
def books_dataset() -> Dataset:
    """OL-Books-like workload (Sections VI-B3 / VI-B4)."""
    return make_books(BOOKS_SCALE, seed=11)


@pytest.fixture(scope="session")
def skewed_dataset() -> Dataset:
    """Hub-skewed workload for the load-balancing benchmark."""
    return make_skewed(1200, seed=5, hub_fraction=0.6)


@pytest.fixture(scope="session")
def citeseer_cached_matcher():
    """One caching matcher per session: every citeseer run shares pairs."""
    return citeseer_matcher(cache=True)


@pytest.fixture(scope="session")
def books_cached_matcher():
    """One caching matcher per session for the books workload."""
    return books_matcher(cache=True)


@pytest.fixture(scope="session")
def skewed_cached_matcher():
    """One caching matcher per session for the skewed workload (the
    skewed family reuses the citeseer similarity functions)."""
    return citeseer_matcher(cache=True)


#: The calibration artifact the ``calibrate`` benchmark writes; its
#: fitted compare price converts virtual makespans to estimated seconds.
CALIBRATION_PATH = Path(__file__).resolve().parent.parent / "BENCH_calibration.json"


@pytest.fixture(scope="session")
def calibrated_seconds():
    """``virtual units -> estimated wall seconds`` on the calibrated host.

    One virtual unit is one compare of reference length, so the fitted
    ``seconds_per_op.compare`` price from ``BENCH_calibration.json``
    converts any virtual duration to this host's estimated real seconds.
    Returns ``None`` when no calibration artifact exists (benchmarks then
    report virtual units only), so the bench suite never depends on the
    calibration bench having run first.
    """
    if not CALIBRATION_PATH.exists():
        return None
    compare_s = (
        json.loads(CALIBRATION_PATH.read_text())
        .get("seconds_per_op", {})
        .get("compare", 0.0)
    )
    if compare_s <= 0.0:
        return None

    def convert(virtual_units: float) -> float:
        return virtual_units * compare_s

    convert.seconds_per_compare_unit = compare_s
    return convert


@pytest.fixture()
def report(capsys):
    """Print a benchmark report to the real terminal, capture or not."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report
