"""Shared benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper's
evaluation (Section VI) on the simulated cluster.  Datasets and matcher
caches are session-scoped: the first run of a dataset pays for the real
similarity computations, subsequent runs hit the per-pair cache, so a
whole figure's sweep stays fast while remaining bit-for-bit deterministic.

Reports are printed straight to the terminal (bypassing capture) so
``pytest benchmarks/ --benchmark-only`` shows the paper-style tables.
"""

from __future__ import annotations

import pytest

from repro.data import Dataset, make_books, make_citeseer
from repro.similarity import books_matcher, citeseer_matcher

#: Benchmark workload scales.  The paper runs 1.5M/30M entities on a
#: 25-machine Hadoop cluster; the simulator reproduces the curve shapes at
#: laptop scale (see DESIGN.md's substitution table).
CITESEER_SCALE = 2000
BOOKS_SCALE = 3000


@pytest.fixture(scope="session")
def citeseer_dataset() -> Dataset:
    """CiteSeerX-like workload (Sections VI-B1 / VI-B2)."""
    return make_citeseer(CITESEER_SCALE, seed=7)


@pytest.fixture(scope="session")
def books_dataset() -> Dataset:
    """OL-Books-like workload (Sections VI-B3 / VI-B4)."""
    return make_books(BOOKS_SCALE, seed=11)


@pytest.fixture(scope="session")
def citeseer_cached_matcher():
    """One caching matcher per session: every citeseer run shares pairs."""
    return citeseer_matcher(cache=True)


@pytest.fixture(scope="session")
def books_cached_matcher():
    """One caching matcher per session for the books workload."""
    return books_matcher(cache=True)


@pytest.fixture()
def report(capsys):
    """Print a benchmark report to the real terminal, capture or not."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report
