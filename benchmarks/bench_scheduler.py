"""Multi-tenant scheduler benchmark: fair-share lanes versus FIFO.

A Poisson arrival stream mixes two populations on one shared slot pool:
short *interactive* jobs (a user waiting at a prompt) and heavy *batch*
jobs (background re-resolutions).  Under FIFO the interactive tail
latency is hostage to whichever batch phases arrived first; the fair
policy's priority lane dispatches interactive phases at the next phase
boundary instead.  The headline measurement: **interactive p99 latency
must improve by at least 2x under the fair policy**, on the identical
arrival trace, while batch work still completes (work conservation means
total makespan stays within a small factor).

Results are recorded in ``BENCH_scheduler.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.mapreduce import MapReduceJob, Mapper, Reducer
from repro.scheduling import JobScheduler, poisson_arrivals

pytestmark = pytest.mark.bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"

SEED = 2025
JOBS = 40
RATE = 0.08
INTERACTIVE_FRACTION = 0.45
ACCEPT_P99_SPEEDUP = 2.0

_LINES = [
    "progressive entity resolution on a shared cluster",
    "interactive tenants must not wait behind batch",
    "map reduce slots lease from one virtual timeline",
    "fair share tracks weight normalized service",
]
#: Batch jobs are ~20x heavier than interactive probes.
INTERACTIVE_SCALE = 1
BATCH_SCALE = 20


class _WordMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(0.5 * len(values))
        context.write((key, sum(values)))


def _run_policy(policy: str):
    scheduler = JobScheduler(machines=2, policy=policy)
    scheduler.add_tenant("interactive-users", 2.0)
    scheduler.add_tenant("batch-pipeline", 1.0)
    trace = poisson_arrivals(
        seed=SEED,
        rate=RATE,
        count=JOBS,
        tenants=("interactive-users", "batch-pipeline"),
        interactive_fraction=INTERACTIVE_FRACTION,
    )
    for arrival in trace:
        lane = "interactive" if arrival.tenant == "interactive-users" else "batch"
        scale = INTERACTIVE_SCALE if lane == "interactive" else BATCH_SCALE
        scheduler.submit_job(
            MapReduceJob(
                _WordMapper, _SumReducer,
                name=f"{lane}-{arrival.index}", alpha=2.0,
            ),
            _LINES * scale,
            tenant=arrival.tenant,
            lane=lane,
            arrival=arrival.time,
        )
    return scheduler.run()


def test_scheduler_bench(calibrated_seconds, report):
    fair = _run_policy("fair")
    fifo = _run_policy("fifo")

    stats = {}
    for name, rep in (("fair", fair), ("fifo", fifo)):
        assert rep.open_leases == 0
        assert all(o.finished_at is not None for o in rep.outcomes)
        stats[name] = {
            lane: rep.latency_percentiles(lane)
            for lane in ("interactive", "batch")
        }
        stats[name]["makespan"] = rep.makespan

    fair_p99 = stats["fair"]["interactive"]["p99"]
    fifo_p99 = stats["fifo"]["interactive"]["p99"]
    speedup = fifo_p99 / fair_p99
    assert speedup >= ACCEPT_P99_SPEEDUP, (
        f"fair-share interactive p99 only {speedup:.2f}x better than FIFO "
        f"({fair_p99:.1f} vs {fifo_p99:.1f} virtual seconds)"
    )
    # Priority lanes reshuffle waiting, they don't add work: the shared
    # timeline stays work-conserving, so total makespan barely moves.
    assert stats["fair"]["makespan"] <= stats["fifo"]["makespan"] * 1.25

    payload = {
        "bench": "scheduler",
        "note": (
            f"{JOBS} Poisson arrivals (seed {SEED}, rate {RATE}), "
            f"~{int(100 * INTERACTIVE_FRACTION)}% short interactive probes "
            f"vs {BATCH_SCALE}x heavier batch jobs, 2 machines.  Latency is "
            "virtual arrival-to-finish time; identical trace under both "
            "policies."
        ),
        "interactive": {
            "fair": stats["fair"]["interactive"],
            "fifo": stats["fifo"]["interactive"],
            "p99_speedup": speedup,
        },
        "batch": {
            "fair": stats["fair"]["batch"],
            "fifo": stats["fifo"]["batch"],
        },
        "makespan": {
            "fair": stats["fair"]["makespan"],
            "fifo": stats["fifo"]["makespan"],
        },
        "acceptance_p99_speedup": ACCEPT_P99_SPEEDUP,
    }
    if calibrated_seconds is not None:
        # The same latencies restated in this host's estimated wall
        # seconds (fitted compare price from BENCH_calibration.json).
        payload["calibrated_seconds"] = {
            "seconds_per_compare_unit": calibrated_seconds.seconds_per_compare_unit,
            "source": "BENCH_calibration.json",
            "interactive_p99": {
                "fair": calibrated_seconds(fair_p99),
                "fifo": calibrated_seconds(fifo_p99),
            },
            "makespan": {
                "fair": calibrated_seconds(stats["fair"]["makespan"]),
                "fifo": calibrated_seconds(stats["fifo"]["makespan"]),
            },
        }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"multi-tenant scheduler ({JOBS} Poisson arrivals, 2 machines)",
        "  interactive lane latency (virtual s):",
        f"    fair : p50 {stats['fair']['interactive']['p50']:8.1f}"
        f"  p99 {fair_p99:8.1f}",
        f"    fifo : p50 {stats['fifo']['interactive']['p50']:8.1f}"
        f"  p99 {fifo_p99:8.1f}",
        f"    p99 speedup: {speedup:.1f}x (accept >= {ACCEPT_P99_SPEEDUP}x)",
        f"  makespan: fair {stats['fair']['makespan']:.1f}"
        f"  fifo {stats['fifo']['makespan']:.1f}",
    ]
    report("\n".join(lines) + f"\n  wrote {BENCH_PATH.name}")
