"""Cost-model calibration benchmark: how well virtual cost predicts wall clock.

Runs the progressive approach on the citeseer workload, pools every
task's recorded wall-clock duration and tagged charge profile, and fits
real-seconds prices per virtual unit (:mod:`repro.core.calibration`).
The fit closes the loop the cost model has always hand-waved: the same
charge vectors that drive the simulated timeline must predict real task
seconds on this host within a quantified error band.

Acceptance: the median absolute percentage error of predicted versus
observed task seconds stays at or below ``ACCEPT_MEDIAN_APE`` and the
residual RMS is finite.  Results (fitted constants, error band, host
parallelism flags) are recorded in ``BENCH_calibration.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import (
    calibration_report,
    citeseer_config,
    fit_cost_model,
    task_samples,
)
from repro.evaluation import ExperimentRun, RunSpec

pytestmark = pytest.mark.bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_calibration.json"

MACHINES = 4
SCALE = 800
REPEATS = 2
WORKERS = 2
ACCEPT_MEDIAN_APE = 0.30


def test_calibration_bench(report):
    from repro.data import make_citeseer

    # Deliberately NOT the session-cached matcher: a cache makes the
    # second repeat's comparisons nearly free, and that cold/warm
    # heterogeneity breaks the linear fit (compare time must mean the
    # same thing in every sample).
    dataset = make_citeseer(SCALE, seed=7)
    config = citeseer_config()
    samples = []
    for _ in range(REPEATS):
        run = ExperimentRun(
            RunSpec(
                dataset,
                config,
                machines=MACHINES,
                backend="process",
                workers=WORKERS,
            )
        ).run()
        samples.extend(task_samples([run.result.job1, run.result.job2]))

    assert samples, "no task recorded a wall clock"
    fit = fit_cost_model(samples)

    # Acceptance: the calibrated model predicts real task seconds within
    # the advertised band, and the residual is a finite number.
    assert fit.median_ape <= ACCEPT_MEDIAN_APE, fit.median_ape
    assert fit.residual_rms == fit.residual_rms  # not NaN
    assert fit.residual_rms < float("inf")

    payload = calibration_report(
        fit,
        workload={
            "family": "citeseer",
            "size": SCALE,
            "seed": 7,
            "machines": MACHINES,
            "repeats": REPEATS,
        },
        workers=WORKERS,
        backend="process",
    )
    payload["bench"] = "calibration"
    payload["acceptance_median_ape"] = ACCEPT_MEDIAN_APE
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    per_unit = payload["seconds_per_unit"]
    lines = [
        f"cost-model calibration (citeseer {SCALE}, {MACHINES} machines, "
        f"{REPEATS} repeats, process backend x{WORKERS})",
        f"  {fit.samples_used} tasks sampled, {fit.samples_scored} scored",
        f"  median APE {fit.median_ape * 100.0:.1f}% "
        f"(acceptance <= {ACCEPT_MEDIAN_APE * 100.0:.0f}%)",
        f"  compare price {per_unit.get('compare', 0.0):.3e} s/unit",
        f"  {payload['error_band']}",
    ]
    if payload["parallelism_limited"]:
        lines.append(
            f"  note: {payload['cpus_visible']} visible CPUs < "
            f"{payload['workers']} workers — contention-biased fit"
        )
    report("\n".join(lines) + f"\n  wrote {BENCH_PATH.name}")
