"""Ablation: redundancy-free resolution (Section V) on versus off.

With SHOULD-RESOLVE disabled, every shared pair is resolved in every tree
containing it — exactly the waste Section V eliminates.

Expected shape: the redundancy-free run performs strictly fewer
comparisons and finishes far sooner.  The redundant run buys a small final
recall bonus — a shared pair that falls outside the window in its
responsible tree can still surface in another family's block — which is
the same window effect behind Basic F's recall ceiling; the paper accepts
that trade for the large cost saving.
"""

from __future__ import annotations

import pytest

from repro.core import citeseer_config
from repro.evaluation import ExperimentRun, RunSpec, format_table

pytestmark = pytest.mark.bench

MACHINES = 10


def test_redundancy_ablation(
    benchmark, citeseer_dataset, citeseer_cached_matcher, report
):
    def run_ablation():
        runs = {}
        for redundancy_free in (True, False):
            config = citeseer_config(
                matcher=citeseer_cached_matcher, redundancy_free=redundancy_free
            )
            label = "redundancy-free" if redundancy_free else "redundant"
            runs[redundancy_free] = ExperimentRun(
                RunSpec(citeseer_dataset, config, machines=MACHINES, label=label)
            ).run()
        return runs

    runs = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [
            run.label,
            f"{run.final_recall:.3f}",
            f"{run.total_time:,.0f}",
            f"{run.curve.area_under(min(r.total_time for r in runs.values())):.3f}",
        ]
        for run in runs.values()
    ]
    report(
        format_table(
            ["variant", "final recall", "total time", "recall AUC"],
            rows,
            title="ablation — redundancy-free resolution (Section V)",
        )
    )

    free, redundant = runs[True], runs[False]
    assert free.total_time < redundant.total_time, (
        "skipping shared pairs must shorten the run"
    )
    # The redundant run may pick up window-missed shared pairs elsewhere,
    # so its final recall can sit slightly above — but never far below.
    assert redundant.final_recall >= free.final_recall - 0.02
    assert free.final_recall >= redundant.final_recall - 0.10
    benchmark.extra_info["time_saved_fraction"] = round(
        1.0 - free.total_time / redundant.total_time, 4
    )
    benchmark.extra_info["recall_trade"] = round(
        redundant.final_recall - free.final_recall, 4
    )
