"""Arrival-stream benchmark: delta-path cost versus full re-resolution.

The incremental service's pitch is that a small batch against a warm
store costs what its *affected blocks* cost — not what the corpus costs.
Three measurements pin that:

* **Headline speedup.**  A 100-entity batch against a 1400-entity warm
  store must take ≥5x fewer comparisons than re-resolving all 1500
  entities from scratch, at the identical final found-pair set.
* **Scaling shape.**  The same 100-entity batch is submitted against warm
  stores of increasing size; the delta's share of the would-be full
  resolve must shrink as the corpus grows (the delta tracks affected-block
  membership, while the full resolve tracks the corpus).
* **Exact accounting.**  Warm + delta comparisons must equal the one-shot
  comparison count — the partition-invariance the differential suite pins,
  restated as arithmetic on the receipts.

Results are recorded in ``BENCH_incremental.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import citeseer_config
from repro.service import ResolverService

pytestmark = pytest.mark.bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

MACHINES = 3
DELTA_SIZE = 100
WARM_SIZES = (300, 700, 1400)
ACCEPT_SPEEDUP = 5.0


def test_incremental_bench(citeseer_dataset, citeseer_cached_matcher, report):
    config = citeseer_config(matcher=citeseer_cached_matcher)
    entities = citeseer_dataset.entities
    corpus = max(WARM_SIZES) + DELTA_SIZE
    delta_batch = entities[max(WARM_SIZES) : corpus]

    # The same late batch against increasingly warm stores.
    scaling = []
    final_service = None
    for warm_size in WARM_SIZES:
        service = ResolverService(config, machines=MACHINES)
        warm = service.submit(entities[:warm_size])
        delta = service.submit(delta_batch)
        scaling.append(
            {
                "warm_entities": warm_size,
                "delta_entities": DELTA_SIZE,
                "warm_comparisons": warm.comparisons,
                "delta_comparisons": delta.comparisons,
                "delta_affected_blocks": delta.affected_blocks,
                "delta_planned_pairs": delta.planned_pairs,
                "total_comparisons": service.total_comparisons,
                "delta_fraction": delta.comparisons / service.total_comparisons,
            }
        )
        if warm_size == max(WARM_SIZES):
            final_service = service

    # Receipts must tile the one-shot cost exactly (partition invariance).
    one_shot = ResolverService(config, machines=MACHINES)
    receipt = one_shot.submit(entities[:corpus])
    assert one_shot.found_pairs == final_service.found_pairs
    assert one_shot.total_comparisons == final_service.total_comparisons
    assert one_shot.found_pairs, "benchmark is vacuous: nothing resolved"

    # Headline: the delta path beats the full re-resolve by >= 5x.
    delta_comparisons = scaling[-1]["delta_comparisons"]
    speedup = receipt.comparisons / delta_comparisons
    assert speedup >= ACCEPT_SPEEDUP, (
        f"delta path only {speedup:.2f}x below full re-resolve "
        f"({delta_comparisons} vs {receipt.comparisons} comparisons)"
    )

    # Shape: the delta's share of the full cost shrinks as the store grows.
    fractions = [entry["delta_fraction"] for entry in scaling]
    assert fractions == sorted(fractions, reverse=True), fractions

    payload = {
        "bench": "incremental",
        "note": (
            f"{DELTA_SIZE}-entity batch against warm stores of "
            f"{list(WARM_SIZES)} entities, citeseer family, "
            f"{MACHINES} machines.  Comparisons are similarity decisions "
            "(service.comparisons counter); warm + delta equals the "
            "one-shot count exactly."
        ),
        "full_comparisons": receipt.comparisons,
        "delta_comparisons": delta_comparisons,
        "speedup_vs_full": speedup,
        "equal_output": True,
        "found_pairs": len(one_shot.found_pairs),
        "scaling": scaling,
        "acceptance_speedup": ACCEPT_SPEEDUP,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"incremental delta path (citeseer {corpus}, {MACHINES} machines)",
        f"  full re-resolve : {receipt.comparisons:8d} comparisons",
        f"  {DELTA_SIZE:4d}-entity delta: {delta_comparisons:8d} comparisons"
        f"  ({speedup:.1f}x below full)",
    ]
    for entry in scaling:
        lines.append(
            f"  warm {entry['warm_entities']:5d}: delta"
            f" {entry['delta_comparisons']:7d} cmp over"
            f" {entry['delta_affected_blocks']:3d} blocks"
            f"  ({100 * entry['delta_fraction']:.1f}% of total)"
        )
    report("\n".join(lines) + f"\n  wrote {BENCH_PATH.name}")
