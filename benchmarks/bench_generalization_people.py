"""Generalization check: the approach on a third dataset family.

The paper evaluates on publications and books.  This bench runs the same
comparison (ours vs Basic with a mid popcorn threshold) on the
census-style people family — short, low-entropy attributes, a schema the
paper never touched — to confirm the approach's advantage is not an
artifact of the two paper workloads.

Expected shape: same as Figure 8/10 — ours dominates past the
preprocessing overhead and ends at least as high.
"""

from __future__ import annotations

import pytest

from repro.baselines import BasicConfig
from repro.blocking import people_scheme
from repro.core import people_config
from repro.data import make_people
from repro.evaluation import (
    ExperimentRun,
    RunSpec,
    format_curves,
    sample_times,
)
from repro.mechanisms import PSNM
from repro.similarity.matchers import people_matcher

pytestmark = pytest.mark.bench

MACHINES = 10
SCALE = 2500


@pytest.fixture(scope="module")
def people_dataset():
    return make_people(SCALE, seed=13)


@pytest.fixture(scope="module")
def people_cached_matcher():
    return people_matcher(cache=True)


def test_people_generalization(
    benchmark, people_dataset, people_cached_matcher, report
):
    def run_comparison():
        runs = [
            ExperimentRun(
                RunSpec(
                    people_dataset,
                    people_config(matcher=people_cached_matcher),
                    machines=MACHINES,
                    label="Our Approach",
                )
            ).run()
        ]
        for threshold in (None, 0.01):
            config = BasicConfig(
                scheme=people_scheme(),
                matcher=people_cached_matcher,
                mechanism=PSNM(),
                window=15,
                popcorn_threshold=threshold,
            )
            label = f"Basic {'F' if threshold is None else threshold}"
            runs.append(
                ExperimentRun(
                    RunSpec(people_dataset, config, machines=MACHINES, label=label)
                ).run()
            )
        return runs

    runs = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    horizon = runs[0].total_time
    times = sample_times(horizon, points=10)
    report(
        format_curves(
            runs, times,
            title=f"generalization — people family, μ={MACHINES}, {SCALE} entities",
        )
    )

    ours, basic_f, basic_mid = runs
    late = [t for t in times if t >= horizon * 0.4]
    wins = sum(
        1 for t in late if ours.curve.recall_at(t) >= basic_f.curve.recall_at(t) - 0.02
    )
    assert wins >= len(late) - 1
    assert ours.final_recall >= basic_f.final_recall - 0.02
    benchmark.extra_info["final_ours"] = round(ours.final_recall, 4)
    benchmark.extra_info["final_basic_f"] = round(basic_f.final_recall, 4)
