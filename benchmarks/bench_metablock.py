"""Meta-blocking benchmark: candidate pairs pruned versus recall kept.

The pre-pass earns its place if it removes a large share of the level-1
candidate-pair universe *before* Job 1 ever sees it, while the resolved
output barely moves.  On the books workload with block filtering at
ratio 0.5 (each entity keeps its 2 smallest of 3 level-1 blocks — the
default 0.8 keeps all 3, a no-op for a 3-family scheme):

* **Acceptance (bf):** scheduled candidate pairs cut by at least 2x,
  retaining at least 95% of the unpruned run's duplicate recall.
* **Acceptance (wnp):** the found-pair set is a *subset* of the unpruned
  run's (structural: pruned pairs consume the distinct budget, so the
  pruned run stops no later at every stream position), again at >= 95%
  recall retention.

``bf``'s found-set containment is empirical, not structural: shrinking
blocks resizes windows and budgets, so at benchmark scale the pruned run
can surface pairs the unpruned run's budget skipped (the small-scale
containment is pinned by the scenario matrix and golden fixtures).  The
candidate-*universe* containment — pruning only removes candidates — is
structural for both modes and pinned by the property suite.

Results are recorded in ``BENCH_metablock.json``; virtual times are
restated in calibrated seconds when ``BENCH_calibration.json`` exists.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import books_config
from repro.evaluation import ExperimentRun, RunSpec

pytestmark = pytest.mark.bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_metablock.json"

MACHINES = 3
BF_RATIO = 0.5
ACCEPT_PAIR_REDUCTION = 2.0
ACCEPT_RECALL_RETENTION = 0.95


def test_metablock_bench(books_dataset, books_cached_matcher, calibrated_seconds, report):
    config = books_config(matcher=books_cached_matcher, metablock_ratio=BF_RATIO)
    runs = {}
    for mode in ("off", "bf", "wnp"):
        spec = RunSpec(books_dataset, config, machines=MACHINES, metablock=mode)
        runs[mode] = ExperimentRun(spec).run()

    off = runs["off"]
    assert off.found_pairs, "benchmark is vacuous: nothing resolved"

    entries = {}
    for mode, run in runs.items():
        plan = run.result.metablock
        entry = {
            "found_pairs": len(run.found_pairs),
            "final_recall": run.final_recall,
            "total_time": run.total_time,
            "recall_retention": run.final_recall / off.final_recall,
            "pairs_missing_vs_off": len(off.found_pairs - run.found_pairs),
            "pairs_extra_vs_off": len(run.found_pairs - off.found_pairs),
            "is_subset_of_off": run.found_pairs <= off.found_pairs,
        }
        if plan is not None:
            entry.update(
                candidate_pairs_kept=plan.pairs_kept,
                candidate_pairs_total=plan.pairs_total,
                pair_reduction=plan.pair_reduction,
                memberships_kept=plan.memberships_kept,
                memberships_total=plan.memberships_total,
            )
        if calibrated_seconds is not None:
            entry["total_time_calibrated_s"] = calibrated_seconds(run.total_time)
        entries[mode] = entry

    # Acceptance: block filtering cuts the scheduled pair universe >= 2x
    # while keeping >= 95% of the unpruned duplicate recall.
    bf = entries["bf"]
    assert bf["pair_reduction"] >= ACCEPT_PAIR_REDUCTION, bf
    assert bf["recall_retention"] >= ACCEPT_RECALL_RETENTION, bf

    # Acceptance: wnp's structural subset guarantee holds at scale, at the
    # same recall-retention bar.
    wnp = entries["wnp"]
    assert wnp["is_subset_of_off"], wnp
    assert wnp["pairs_extra_vs_off"] == 0
    assert wnp["recall_retention"] >= ACCEPT_RECALL_RETENTION, wnp

    payload = {
        "bench": "metablock",
        "note": (
            f"Meta-blocking pre-pass on books scale "
            f"{len(books_dataset.entities)}, {MACHINES} machines; bf ratio "
            f"{BF_RATIO} (each entity keeps its 2 smallest of 3 level-1 "
            "blocks), wnp cbs weighting.  Identical dataset and matcher "
            "across modes."
        ),
        "modes": entries,
        "acceptance_pair_reduction": ACCEPT_PAIR_REDUCTION,
        "acceptance_recall_retention": ACCEPT_RECALL_RETENTION,
    }
    if calibrated_seconds is not None:
        payload["calibration"] = {
            "seconds_per_compare_unit": calibrated_seconds.seconds_per_compare_unit,
            "source": "BENCH_calibration.json",
        }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"meta-blocking (books {len(books_dataset.entities)}, {MACHINES} machines)"]
    for mode, e in entries.items():
        pruning = (
            f"  pairs {e['candidate_pairs_kept']}/{e['candidate_pairs_total']}"
            f" ({e['pair_reduction']:.2f}x)"
            if "pair_reduction" in e
            else "  pairs unpruned"
        )
        lines.append(
            f"  {mode:4s}: found {e['found_pairs']:4d}"
            f"  recall-retention {e['recall_retention']:.4f}"
            f"  time {e['total_time']:10.1f}{pruning}"
        )
    report("\n".join(lines) + f"\n  wrote {BENCH_PATH.name}")
