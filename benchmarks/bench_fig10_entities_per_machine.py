"""Figure 10: ours versus Basic on OL-Books, varying entities per machine.

The paper fixes the dataset (30M books) and varies the cluster size over
μ = 20, 10, 5, i.e. θ = 1.5M, 3M, 6M entities per machine, comparing our
approach (PSNM) against Basic with popcorn thresholds 0.0005/0.005/0.05.

Expected shape (paper): our approach wins in every sub-figure and the gap
grows with θ; for the smallest θ Basic leads briefly at the start because
of our Job-1 + schedule-generation overhead, which stops mattering as the
per-machine workload grows.
"""

from __future__ import annotations

import pytest

from repro.baselines import BasicConfig
from repro.blocking import books_scheme
from repro.core import books_config
from repro.evaluation import (
    ExperimentRun,
    RunSpec,
    format_curves,
    sample_times,
)
from repro.mechanisms import PSNM

pytestmark = pytest.mark.bench

MACHINE_COUNTS = [12, 6, 3]  # decreasing machines = increasing θ
THRESHOLDS = [0.0005, 0.005, 0.05]


def _gap_area(runs, horizon):
    """Mean recall lead of ours over the best Basic across the horizon."""
    ours = runs[0]
    times = sample_times(horizon, points=20)
    lead = 0.0
    for t in times:
        best_basic = max(run.curve.recall_at(t) for run in runs[1:])
        lead += ours.curve.recall_at(t) - best_basic
    return lead / len(times)


@pytest.mark.parametrize("machines", MACHINE_COUNTS)
def test_fig10(benchmark, machines, books_dataset, books_cached_matcher, report):
    theta = len(books_dataset) // machines

    def run_subfigure():
        runs = [
            ExperimentRun(
                RunSpec(
                    books_dataset,
                    books_config(matcher=books_cached_matcher),
                    machines=machines,
                    label="Our Approach",
                )
            ).run()
        ]
        for threshold in THRESHOLDS:
            config = BasicConfig(
                scheme=books_scheme(),
                matcher=books_cached_matcher,
                mechanism=PSNM(),
                window=15,
                popcorn_threshold=threshold,
            )
            runs.append(
                ExperimentRun(
                    RunSpec(
                        books_dataset, config,
                        machines=machines, label=f"Basic {threshold}",
                    )
                ).run()
            )
        return runs

    runs = benchmark.pedantic(run_subfigure, rounds=1, iterations=1)
    # Anchor the x-range on our approach's run (the paper's sub-figures
    # span roughly that range); earlier-ending Basic curves flatline.
    horizon = runs[0].total_time
    times = sample_times(horizon, points=10)
    report(
        format_curves(
            runs,
            times,
            title=f"fig10 — ours vs Basic, μ={machines} (θ={theta} entities/machine)",
        )
    )

    ours, *basics = runs
    late = [t for t in times if t >= horizon * 0.4]
    for basic in basics:
        wins = sum(
            1
            for t in late
            if ours.curve.recall_at(t) >= basic.curve.recall_at(t) - 0.02
        )
        assert wins >= len(late) - 1, f"ours must dominate {basic.label} late"
    assert ours.final_recall >= max(b.final_recall for b in basics) - 0.02
    benchmark.extra_info["theta"] = theta
    benchmark.extra_info["mean_lead"] = round(_gap_area(runs, horizon), 4)


def test_fig10_gap_grows_with_theta(
    benchmark, books_dataset, books_cached_matcher, report
):
    """The paper's summary claim: the ours-versus-Basic gap widens as θ
    (entities per machine) increases."""

    def measure():
        leads = {}
        for machines in MACHINE_COUNTS:
            runs = [
                ExperimentRun(
                    RunSpec(
                        books_dataset,
                        books_config(matcher=books_cached_matcher),
                        machines=machines,
                        label="ours",
                    )
                ).run()
            ]
            config = BasicConfig(
                scheme=books_scheme(),
                matcher=books_cached_matcher,
                mechanism=PSNM(),
                window=15,
                popcorn_threshold=0.0005,
            )
            runs.append(
                ExperimentRun(
                    RunSpec(books_dataset, config, machines=machines, label="basic")
                ).run()
            )
            leads[machines] = _gap_area(runs, runs[0].total_time)
        return leads

    leads = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "fig10 summary — mean recall lead of ours over Basic 0.0005:\n"
        + "\n".join(
            f"  μ={m:2d} (θ={len(books_dataset)//m:5d}): {leads[m]:+.3f}"
            for m in MACHINE_COUNTS
        )
    )
    # The lead at the largest θ exceeds the lead at the smallest θ.
    assert leads[MACHINE_COUNTS[-1]] >= leads[MACHINE_COUNTS[0]] - 0.02
