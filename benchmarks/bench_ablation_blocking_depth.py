"""Ablation: how deep should progressive blocking go?

DESIGN.md calls out the hierarchy depth as a core design choice
(Section III-A): sub-blocks are cheaper and duplicate-denser, so deeper
trees should front-load duplicate discovery.  This bench rebuilds the
CiteSeerX scheme with 0, 1 and 2 sub-blocking functions per family and
compares progressiveness (area under the recall curve).

Expected shape: deeper blocking yields a larger early-recall area; depth 0
(main blocks only, resolved fully) is the least progressive.
"""

from __future__ import annotations

import pytest

from repro.blocking import BlockingScheme, prefix_function
from repro.core import citeseer_config
from repro.evaluation import ExperimentRun, RunSpec, format_table

pytestmark = pytest.mark.bench

MACHINES = 10

#: (family, attribute, prefix lengths by depth) following Table II.
_FAMILIES = (
    ("X", "title", (2, 4, 8)),
    ("Y", "abstract", (3, 5)),
    ("Z", "venue", (3, 5)),
)


def _scheme_with_depth(depth: int) -> BlockingScheme:
    """Table II's scheme truncated to at most ``depth`` sub-functions."""
    families = {}
    for family, attribute, lengths in _FAMILIES:
        kept = lengths[: depth + 1]
        families[family] = [
            prefix_function(family, level, attribute, length)
            for level, length in enumerate(kept, start=1)
        ]
    return BlockingScheme(families=families)


def test_blocking_depth_ablation(
    benchmark, citeseer_dataset, citeseer_cached_matcher, report
):
    def run_ablation():
        runs = {}
        for depth in (0, 1, 2):
            config = citeseer_config(
                matcher=citeseer_cached_matcher, scheme=_scheme_with_depth(depth)
            )
            runs[depth] = ExperimentRun(
                RunSpec(
                    citeseer_dataset, config,
                    machines=MACHINES, label=f"depth={depth}",
                )
            ).run()
        return runs

    runs = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    horizon = min(run.total_time for run in runs.values())
    rows = [
        [
            f"N(X1)={depth}",
            f"{run.curve.area_under(horizon):.3f}",
            f"{run.final_recall:.3f}",
            f"{run.total_time:,.0f}",
        ]
        for depth, run in runs.items()
    ]
    report(
        format_table(
            ["variant", "recall AUC", "final recall", "total time"],
            rows,
            title="ablation — progressive blocking depth",
        )
    )

    auc = {d: run.curve.area_under(horizon) for d, run in runs.items()}
    assert auc[2] >= auc[0] - 0.02, "deep blocking must not hurt progressiveness"
    # All depths converge to comparable final recall: the hierarchy changes
    # WHEN pairs surface, the root full-resolution still catches them.
    finals = [run.final_recall for run in runs.values()]
    assert max(finals) - min(finals) < 0.08
    benchmark.extra_info["auc_by_depth"] = {d: round(v, 4) for d, v in auc.items()}
