"""Fault-tolerance benchmark: progressive recall under injected faults.

Two paper-adjacent questions, answered on the FIG8-scale citeseer
workload and recorded in ``BENCH_fault_tolerance.json``:

1. **Graceful degradation** — sweep seeded crash rates (0%..20%) and
   sample the recall-vs-time curve at fractions of the *clean* run's end
   time.  Re-executed attempts reproduce identical intermediate data, so
   final recall never changes; faults only delay when duplicates arrive.

2. **Speculative execution** — a pinned straggler scenario (one slot
   running 8x slow) with speculation off versus on.  The paper's Hadoop
   cluster relies on speculative execution for exactly this case; the
   acceptance bar here is a *strict* makespan reduction.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import citeseer_config
from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce import FaultPlan, RetryPolicy, SpeculationConfig

import pytest

pytestmark = pytest.mark.bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fault_tolerance.json"

MACHINES = 10
FAULT_RATES = [0.0, 0.05, 0.1, 0.2]
FRACTIONS = [0.25, 0.5, 0.75, 1.0]

#: Generous retry budget: at 20% per-attempt crash rate a few tasks need
#: many attempts, and the benchmark measures degradation, not aborts.
RETRY = RetryPolicy(max_attempts=100, backoff_base=1.0)

#: The straggler scenario: slot 0 of every phase pool runs 8x slow.
SLOWDOWNS = {0: 8.0}
SPECULATION = SpeculationConfig(enabled=True, threshold=1.5)


def _run(dataset, matcher, faults=None):
    spec = RunSpec(
        dataset,
        citeseer_config(matcher=matcher),
        machines=MACHINES,
        faults=faults,
    )
    return ExperimentRun(spec).run()


def _fault_counters(run):
    jobs = (
        [run.result.job1, run.result.job2]
        if hasattr(run.result, "job2")
        else [run.result.job]
    )
    totals = {}
    for job in jobs:
        for key, value in job.counters.as_flat_dict().items():
            if key.startswith("fault."):
                totals[key] = totals.get(key, 0) + value
    return totals


def test_fault_tolerance_bench(citeseer_dataset, citeseer_cached_matcher, report):
    clean = _run(citeseer_dataset, citeseer_cached_matcher)

    # -- graceful degradation sweep ------------------------------------
    sweep = []
    for rate in FAULT_RATES:
        faults = (
            FaultPlan(seed=1, fault_rate=rate, retry=RETRY) if rate else None
        )
        run = _run(citeseer_dataset, citeseer_cached_matcher, faults)
        entry = {
            "fault_rate": rate,
            "total_time": run.total_time,
            "final_recall": run.final_recall,
            "recall_at_clean_fractions": {
                str(f): run.curve.recall_at(f * clean.total_time)
                for f in FRACTIONS
            },
            "fault_counters": _fault_counters(run),
        }
        sweep.append(entry)

        # Faults delay duplicates but never lose them.
        assert run.final_recall == clean.final_recall
        assert run.total_time >= clean.total_time

    # Degradation is graceful, not a cliff: even at the highest rate the
    # curve at the clean run's end time stays close to the clean recall.
    worst = sweep[-1]["recall_at_clean_fractions"]["1.0"]
    assert worst >= 0.8 * clean.final_recall

    # -- straggler scenario: speculation off vs on ---------------------
    no_spec = _run(
        citeseer_dataset,
        citeseer_cached_matcher,
        FaultPlan(slot_slowdowns=SLOWDOWNS),
    )
    with_spec = _run(
        citeseer_dataset,
        citeseer_cached_matcher,
        FaultPlan(slot_slowdowns=SLOWDOWNS, speculation=SPECULATION),
    )

    # Acceptance: speculation strictly reduces makespan on stragglers.
    assert with_spec.total_time < no_spec.total_time
    assert with_spec.final_recall == no_spec.final_recall == clean.final_recall
    spec_counters = _fault_counters(with_spec)
    assert (
        spec_counters.get("fault.map_speculative_wins", 0)
        + spec_counters.get("fault.reduce_speculative_wins", 0)
        > 0
    )

    straggler = {
        "slot_slowdowns": {str(k): v for k, v in SLOWDOWNS.items()},
        "clean_total_time": clean.total_time,
        "no_speculation_total_time": no_spec.total_time,
        "speculation_total_time": with_spec.total_time,
        "speedup": no_spec.total_time / with_spec.total_time,
        "speculation_counters": spec_counters,
    }

    payload = {
        "bench": "fault_tolerance",
        "note": (
            "Seeded crash-rate sweep (recall sampled at fractions of the "
            "clean run's end time) plus a pinned straggler scenario "
            "showing speculative execution strictly reducing makespan. "
            f"citeseer scale {len(citeseer_dataset.entities)}, "
            f"{MACHINES} machines."
        ),
        "fault_rate_sweep": sweep,
        "straggler_scenario": straggler,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["fault tolerance (citeseer, 10 machines)"]
    lines.append(f"  clean: total {clean.total_time:10.1f}  recall {clean.final_recall:.3f}")
    for entry in sweep[1:]:
        at_clean_end = entry["recall_at_clean_fractions"]["1.0"]
        lines.append(
            f"  rate {entry['fault_rate']:4.2f}: total {entry['total_time']:10.1f}"
            f"  recall@clean-end {at_clean_end:.3f}"
        )
    lines.append(
        f"  straggler 8x: no-spec {no_spec.total_time:10.1f}"
        f"  spec {with_spec.total_time:10.1f}"
        f"  ({straggler['speedup']:.1f}x faster)"
    )
    report("\n".join(lines) + f"\n  wrote {BENCH_PATH.name}")
