"""Figure 9: our tree scheduler versus NoSplit and LPT, varying machines.

The paper compares the three tree-schedule generators (block schedules are
identical — utility order) at μ = 10, 15, 20 machines.

Expected shape (paper): our algorithm's curve is on top; the tree-split
mechanism is the difference between ours and NoSplit, and the gap grows
with the number of machines (more tasks are starved when a hot overflowed
tree cannot be split).  At simulator scale NoSplit and LPT are close to
each other (the paper's dataset has many more trees per task; see
EXPERIMENTS.md), so the asserted claim is ours ≥ both.
"""

from __future__ import annotations

import pytest

from repro.core import citeseer_config
from repro.evaluation import ExperimentRun, RunSpec, format_curves, sample_times

pytestmark = pytest.mark.bench

MACHINE_COUNTS = [10, 15, 20]


@pytest.mark.parametrize("machines", MACHINE_COUNTS)
def test_fig9(benchmark, machines, citeseer_dataset, citeseer_cached_matcher, report):
    config = citeseer_config(matcher=citeseer_cached_matcher)

    def run_subfigure():
        return {
            strategy: ExperimentRun(
                RunSpec(
                    citeseer_dataset,
                    config,
                    machines=machines,
                    strategy=strategy,
                    label=label,
                )
            ).run()
            for strategy, label in (
                ("ours", "Our Algorithm"),
                ("nosplit", "NoSplit"),
                ("lpt", "LPT"),
            )
        }

    runs = benchmark.pedantic(run_subfigure, rounds=1, iterations=1)
    horizon = min(run.total_time for run in runs.values())
    times = sample_times(horizon, points=10)
    report(
        format_curves(
            list(runs.values()),
            times,
            title=f"fig9 — tree schedulers, μ={machines}",
        )
    )

    ours = runs["ours"]
    # Our scheduler leads both baselines over the bulk of the horizon.
    late = [t for t in times if t >= horizon * 0.3]
    for name in ("nosplit", "lpt"):
        other = runs[name]
        wins = sum(
            1
            for t in late
            if ours.curve.recall_at(t) >= other.curve.recall_at(t) - 0.02
        )
        assert wins >= len(late) - 1, f"ours must not trail {name}"
    # The split mechanism buys a strictly earlier finish than NoSplit.
    assert ours.total_time <= runs["nosplit"].total_time + 1e-6
    benchmark.extra_info["aur_ours"] = round(ours.curve.area_under(horizon), 4)
    benchmark.extra_info["aur_nosplit"] = round(
        runs["nosplit"].curve.area_under(horizon), 4
    )
    benchmark.extra_info["aur_lpt"] = round(runs["lpt"].curve.area_under(horizon), 4)
