"""Related-work comparison: ours versus multi-pass MR Sorted Neighborhood.

Section VII positions our approach against fixed parallel ER algorithms
such as the MapReduce SN implementations of [Kolb et al. '12]: "these
algorithms implement a fixed ER algorithm and need to run to completion
before they can produce results."

Expected shape: MRSN's recall is a late step function (results appear when
its reduce tasks complete, pass by pass) while our curve rises from the
start; our recall-curve area dominates over the common horizon.  MRSN's
*final* recall can be competitive — global sorting is a strong blocking
method — which is exactly why the comparison is about progressiveness,
not endpoints.
"""

from __future__ import annotations

import pytest

from repro.baselines import MrsnConfig, MultiPassMRSN
from repro.blocking import citeseer_scheme
from repro.core import citeseer_config
from repro.evaluation import (
    CurveRun,
    ExperimentRun,
    RunSpec,
    format_curves,
    recall_curve,
    sample_times,
)
from repro.mapreduce import Cluster

pytestmark = pytest.mark.bench

MACHINES = 10


def test_related_mrsn(benchmark, citeseer_dataset, citeseer_cached_matcher, report):
    def run_comparison():
        ours = ExperimentRun(
            RunSpec(
                citeseer_dataset,
                citeseer_config(matcher=citeseer_cached_matcher),
                machines=MACHINES,
                label="Our Approach",
            )
        ).run()
        config = MrsnConfig(
            scheme=citeseer_scheme(), matcher=citeseer_cached_matcher, window=15
        )
        mrsn_result = MultiPassMRSN(config, Cluster(MACHINES)).run(
            citeseer_dataset
        )
        mrsn = CurveRun(
            label="Multi-pass MR-SN",
            curve=recall_curve(
                mrsn_result.duplicate_events,
                citeseer_dataset,
                end_time=mrsn_result.total_time,
            ),
            result=mrsn_result,
        )
        return ours, mrsn

    ours, mrsn = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    horizon = max(ours.total_time, mrsn.total_time)
    times = sample_times(horizon, points=10)
    report(
        format_curves(
            [ours, mrsn], times, title=f"ours vs multi-pass MR-SN (μ={MACHINES})"
        )
    )

    common = min(ours.total_time, mrsn.total_time)
    assert ours.curve.area_under(common) > mrsn.curve.area_under(common), (
        "progressiveness must beat run-to-completion SN"
    )
    # MRSN produces nothing before its first pass's reduce tasks finish.
    first_pass_end = mrsn.result.jobs[0].end_time
    earliest_mrsn = mrsn.curve.times[0] if mrsn.curve.times else float("inf")
    earliest_ours = ours.curve.times[0]
    assert earliest_ours < earliest_mrsn
    benchmark.extra_info["auc_ours"] = round(ours.curve.area_under(common), 4)
    benchmark.extra_info["auc_mrsn"] = round(mrsn.curve.area_under(common), 4)
