"""Ablation: duplicate-estimation accuracy (Section VI-A4).

The progressive schedule is only as good as the per-block duplicate
estimates behind its utility values.  Three estimators:

* **oracle** — exact covered-duplicate counts from the ground truth (the
  upper bound on what estimation can deliver);
* **learned** — the paper's size-fraction probability model fitted on a
  10% training sample;
* **uniform** — one global probability, erasing the size-dependence.

Expected shape: oracle ≥ learned ≥ uniform in early-recall area; all three
converge to the same final recall (estimation only reorders work).
"""

from __future__ import annotations

import pytest

from repro.core import citeseer_config
from repro.evaluation import ExperimentRun, RunSpec, format_table

pytestmark = pytest.mark.bench

MACHINES = 10


def test_estimation_ablation(
    benchmark, citeseer_dataset, citeseer_cached_matcher, report
):
    def run_ablation():
        runs = {}
        for kind in ("oracle", "learned", "uniform"):
            config = citeseer_config(
                matcher=citeseer_cached_matcher, estimator=kind
            )
            runs[kind] = ExperimentRun(
                RunSpec(citeseer_dataset, config, machines=MACHINES, label=kind)
            ).run()
        return runs

    runs = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    horizon = min(run.total_time for run in runs.values())
    auc = {kind: run.curve.area_under(horizon) for kind, run in runs.items()}
    rows = [
        [kind, f"{auc[kind]:.3f}", f"{run.final_recall:.3f}", f"{run.total_time:,.0f}"]
        for kind, run in runs.items()
    ]
    report(
        format_table(
            ["estimator", "recall AUC", "final recall", "total time"],
            rows,
            title="ablation — duplicate estimation accuracy",
        )
    )

    assert auc["oracle"] >= auc["learned"] - 0.03, "oracle should lead learned"
    assert auc["learned"] >= auc["uniform"] - 0.03, "learned should lead uniform"
    finals = [run.final_recall for run in runs.values()]
    assert max(finals) - min(finals) < 0.05, "estimation only reorders work"
    benchmark.extra_info["auc"] = {k: round(v, 4) for k, v in auc.items()}
