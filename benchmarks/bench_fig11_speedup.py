"""Figure 11: recall speedup of our approach versus cluster size.

The paper runs OL-Books on μ = 5..25 machines and reports, for recall
levels 0.1..0.9, the ratio between the time the 5-machine run needs to
reach that recall and the time the μ-machine run needs.

Expected shape (paper): speedup grows with μ, and higher recall levels
speed up better than lower ones — the constant Job-1 + schedule-generation
overhead dominates the early part of every run and does not shrink with
the cluster.

The sweep runs on the serial backend by default; set ``BENCH_BACKEND=process``
(and optionally ``BENCH_WORKERS=n``) to drive it through the process pool —
the curves are bit-identical either way, only wall-clock changes.  Worker
counts are clamped to the CPU affinity mask and both values are recorded.
"""

from __future__ import annotations

import os

import pytest

from repro.core import books_config
from repro.evaluation import ExperimentRun, RunSpec, format_table, recall_speedup

pytestmark = pytest.mark.bench

MACHINE_COUNTS = [5, 10, 15, 20, 25]
RECALL_LEVELS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


def _bench_backend():
    """(backend, requested workers, effective workers) from the env,
    with the worker count clamped to the CPU affinity mask."""
    backend = os.environ.get("BENCH_BACKEND", "serial")
    requested = int(os.environ.get("BENCH_WORKERS", "4"))
    if hasattr(os, "sched_getaffinity"):
        cpus = len(os.sched_getaffinity(0))
    else:
        cpus = os.cpu_count() or 1
    return backend, requested, max(1, min(requested, cpus))


def test_fig11(benchmark, books_dataset, books_cached_matcher, report):
    config = books_config(matcher=books_cached_matcher)
    backend, requested_workers, workers = _bench_backend()

    def run_sweep():
        return {
            machines: ExperimentRun(
                RunSpec(
                    books_dataset,
                    config,
                    machines=machines,
                    backend=backend,
                    workers=workers,
                )
            ).run().curve
            for machines in MACHINE_COUNTS
        }

    curves = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base = curves[MACHINE_COUNTS[0]]
    # Only recall levels every run actually reaches are comparable (the
    # matcher ceiling caps final recall just above 0.9 at this scale).
    reachable = min(curve.final_recall for curve in curves.values())
    levels = [r for r in RECALL_LEVELS if r <= reachable]

    rows = []
    speedups = {}
    for recall in levels:
        row = [f"{recall:.1f}"]
        for machines in MACHINE_COUNTS[1:]:
            s = recall_speedup(base, curves[machines], recall)
            speedups[(recall, machines)] = s
            row.append("n/a" if s is None else f"{s:.2f}")
        rows.append(row)
    report(
        format_table(
            ["recall"] + [f"μ={m}" for m in MACHINE_COUNTS[1:]],
            rows,
            title="fig11 — recall speedup relative to 5 machines",
        )
    )

    # High recall levels scale better than low ones (the paper's claim).
    top = max(MACHINE_COUNTS)
    highest_level = max(levels)
    high = speedups[(highest_level, top)]
    low = speedups[(levels[0], top)]
    assert high is not None and low is not None
    assert high >= low, "high recall must speed up at least as well as low"
    # Adding machines helps at high recall.
    mid = speedups[(highest_level, 15)]
    assert mid is not None and mid > 1.0
    benchmark.extra_info["speedup_high_recall_max_machines"] = round(high, 3)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["workers_requested"] = requested_workers
    benchmark.extra_info["workers"] = workers
