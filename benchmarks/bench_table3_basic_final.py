"""Table III: final recall and total execution time of Basic across the
popcorn thresholds and the two window sizes.

Expected shape (paper): within a window size, a more conservative (smaller)
threshold yields both higher final recall and higher total time, strictly
monotonically; the threshold-free "F" rows match the most conservative
threshold; w = 15 reaches recall at least as high as w = 5 at higher cost.
"""

from __future__ import annotations

import pytest

from repro.baselines import BasicConfig
from repro.blocking import citeseer_scheme
from repro.evaluation import ExperimentRun, RunSpec, format_table
from repro.mechanisms import SortedNeighborHint

pytestmark = pytest.mark.bench

MACHINES = 10
THRESHOLDS = [0.1, 0.07, 0.04, 0.01, 0.007, 0.004, 0.001, 0.00001, None]


def test_table3(benchmark, citeseer_dataset, citeseer_cached_matcher, report):
    def run_table():
        results = {}
        for window in (5, 15):
            for threshold in THRESHOLDS:
                config = BasicConfig(
                    scheme=citeseer_scheme(),
                    matcher=citeseer_cached_matcher,
                    mechanism=SortedNeighborHint(),
                    window=window,
                    popcorn_threshold=threshold,
                )
                results[(window, threshold)] = ExperimentRun(
                    RunSpec(citeseer_dataset, config, machines=MACHINES)
                ).run()
        return results

    results = benchmark.pedantic(run_table, rounds=1, iterations=1)

    rows = []
    for threshold in THRESHOLDS:
        label = "F" if threshold is None else str(threshold)
        rows.append(
            [
                label,
                f"{results[(5, threshold)].final_recall:.2f}",
                f"{results[(15, threshold)].final_recall:.2f}",
                f"{results[(5, threshold)].total_time:,.0f}",
                f"{results[(15, threshold)].total_time:,.0f}",
            ]
        )
    report(
        format_table(
            ["thresh.", "recall w=5", "recall w=15", "time w=5", "time w=15"],
            rows,
            title="Table III — final recall and total execution time for Basic",
        )
    )

    # Monotonicity claims, per window size.
    for window in (5, 15):
        ordered = [results[(window, t)] for t in THRESHOLDS]
        recalls = [r.final_recall for r in ordered]
        times = [r.total_time for r in ordered]
        assert all(
            recalls[i] <= recalls[i + 1] + 1e-9 for i in range(len(recalls) - 1)
        ), f"recall must not decrease as the threshold tightens (w={window})"
        assert all(
            times[i] <= times[i + 1] + 1e-9 for i in range(len(times) - 1)
        ), f"time must not decrease as the threshold tightens (w={window})"
    # The F column equals the most conservative threshold's behaviour.
    for window in (5, 15):
        assert results[(window, None)].final_recall == pytest.approx(
            results[(window, 0.00001)].final_recall, abs=0.02
        )
    # The wider window reaches at least the same recall at higher cost.
    assert (
        results[(15, None)].final_recall >= results[(5, None)].final_recall - 1e-9
    )
    assert results[(15, None)].total_time > results[(5, None)].total_time
