"""Tests for the engine's combiner support, failure injection, and the
slot pool's cost validation."""

import math

import pytest

from repro.mapreduce import Cluster, Combiner, MapReduceJob, Mapper, Reducer, SlotPool


class _WordMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(1.0)
        context.write((key, sum(values)))


class _SumCombiner(Combiner):
    def combine(self, key, values):
        return [sum(values)]


def _job(combiner=None):
    return MapReduceJob(
        _WordMapper, _SumReducer, combiner=combiner, name="wordcount"
    )


class TestCombiner:
    def test_results_unchanged(self):
        lines = ["a b a a", "b c a", "a a"] * 4
        plain = Cluster(2).run_job(_job(), lines)
        combined = Cluster(2).run_job(_job(_SumCombiner()), lines)
        assert sorted(plain.output) == sorted(combined.output)

    def test_shuffle_volume_reduced(self):
        lines = ["a a a a a a a a"] * 8
        plain = Cluster(2).run_job(_job(), lines)
        combined = Cluster(2).run_job(_job(_SumCombiner()), lines)
        assert combined.counters.get("engine", "map_emitted") < plain.counters.get(
            "engine", "map_emitted"
        )
        assert combined.counters.get(
            "engine", "combine_output"
        ) < combined.counters.get("engine", "combine_input")

    def test_combiner_may_expand_values(self):
        class Splitter(Combiner):
            def combine(self, key, values):
                return [sum(values), 0]  # associative: the 0s are harmless

        lines = ["x x", "x"]
        result = Cluster(1).run_job(_job(Splitter()), lines)
        assert dict(result.output) == {"x": 3}


class TestSlotPoolCostGuard:
    """`SlotPool.schedule` validates cost: zero is a legitimate empty-split
    task, but negative and non-finite costs are scheduling-model bugs that
    previously produced silently corrupt timelines."""

    @pytest.mark.parametrize("cost", [-1.0, -1e-9, float("nan"), float("inf")])
    def test_rejects_negative_and_nonfinite_cost(self, cost):
        pool = SlotPool(2, 0.0)
        with pytest.raises(ValueError):
            pool.schedule(cost)

    def test_zero_cost_task_is_a_zero_length_attempt(self):
        """Empty input splits produce zero-cost map tasks (like Hadoop on
        an empty split): they occupy a placement but no time."""
        pool = SlotPool(1, 3.0)
        start, end, slot = pool.schedule(0.0)
        assert (start, end, slot) == (3.0, 3.0, 0)
        assert pool.makespan == 3.0

    def test_rejected_cost_leaves_pool_state_intact(self):
        pool = SlotPool(1, 0.0)
        with pytest.raises(ValueError):
            pool.schedule(float("nan"))
        # The failed call must not have consumed the slot.
        start, end, slot = pool.schedule(2.0)
        assert (start, end, slot) == (0.0, 2.0, 0)

    def test_empty_input_job_still_runs(self):
        """End to end: an empty input yields zero-cost map tasks, which the
        guard must keep accepting."""
        result = Cluster(2).run_job(_job(), [])
        assert result.output == []
        assert result.end_time == 0.0

    def test_math_isfinite_contract(self):
        # The guard uses math.isfinite: document the accepted domain.
        assert math.isfinite(0.0) and math.isfinite(1e300)
        pool = SlotPool(1, 0.0)
        assert pool.schedule(1e300)[2] == 0


class TestFailureInjection:
    def test_output_identical_under_failures(self):
        lines = ["a b", "b c", "c d"]
        clean = Cluster(2).run_job(_job(), lines)
        failed = Cluster(2).run_job(
            _job(), lines, map_failures={0: 2}, reduce_failures={1: 1}
        )
        assert sorted(clean.output) == sorted(failed.output)
        assert sorted(
            (e.kind, e.payload) for e in clean.events
        ) == sorted((e.kind, e.payload) for e in failed.events)

    def test_failures_stretch_the_timeline(self):
        lines = [f"w{i}" for i in range(8)]
        clean = Cluster(1).run_job(_job(), lines)
        failed = Cluster(1).run_job(_job(), lines, map_failures={0: 3})
        assert failed.end_time > clean.end_time

    def test_retries_counted(self):
        result = Cluster(1).run_job(
            _job(), ["a b"], map_failures={0: 2}, reduce_failures={0: 1}
        )
        assert result.counters.get("engine", "map_retries") == 2
        assert result.counters.get("engine", "reduce_retries") == 1

    def test_reduce_failure_delays_events_and_files(self):
        class EventReducer(Reducer):
            def reduce(self, key, values, context):
                context.charge(5.0)
                context.record_event("tick", key)
                context.write(key)

        job = MapReduceJob(_WordMapper, EventReducer, alpha=2.0)
        clean = Cluster(1).run_job(job, ["a"], num_reduce_tasks=1)
        job2 = MapReduceJob(_WordMapper, EventReducer, alpha=2.0)
        failed = Cluster(1).run_job(
            job2, ["a"], num_reduce_tasks=1, reduce_failures={0: 1}
        )
        clean_event = [e for e in clean.events if e.kind == "tick"][0]
        failed_event = [e for e in failed.events if e.kind == "tick"][0]
        assert failed_event.time > clean_event.time
        assert min(f.close_time for f in failed.output_files) > min(
            f.close_time for f in clean.output_files
        )

    def test_end_to_end_recall_survives_failures(
        self, citeseer_small, citeseer_cfg
    ):
        """The progressive pipeline is failure-oblivious: a re-executed
        reduce task reproduces exactly the same duplicates, later."""
        from repro.core.driver import ProgressiveER
        from repro.mapreduce import Cluster

        clean = ProgressiveER(citeseer_cfg, Cluster(2)).run(citeseer_small)
        er = ProgressiveER(citeseer_cfg, Cluster(2))
        # Run Job 1 + schedule normally, then re-run Job 2 with failures by
        # reaching through the public cluster API.
        assert clean.found_pairs  # sanity
        # Full-pipeline failure runs are covered at the engine level; here
        # we assert determinism of the clean path (prerequisite for the
        # retry model to be sound).
        again = ProgressiveER(citeseer_cfg, Cluster(2)).run(citeseer_small)
        assert again.found_pairs == clean.found_pairs
