"""Unit tests for the dataset profiler."""

import pytest

from repro.data import Dataset, Entity, make_citeseer
from repro.data.profile import (
    format_profile,
    profile_attribute,
    profile_dataset,
    profile_prefix_blocking,
    suggest_blocking_order,
)


def _dataset():
    entities = [
        Entity(id=0, attrs={"name": "The Graph", "state": "AZ"}),
        Entity(id=1, attrs={"name": "the grape", "state": "AZ"}),
        Entity(id=2, attrs={"name": "thin ice", "state": "LA"}),
        Entity(id=3, attrs={"name": "a map"}),
        Entity(id=4, attrs={"name": "a mop", "state": "LA"}),
        Entity(id=5, attrs={"state": "HI"}),
    ]
    return Dataset(entities=entities, name="toy")


class TestAttributeProfile:
    def test_missing_rate(self):
        profile = profile_attribute(_dataset(), "state")
        assert profile.present == 5
        assert profile.missing_rate == pytest.approx(1 / 6)

    def test_distinct_normalized(self):
        profile = profile_attribute(_dataset(), "name")
        # "The Graph" normalizes to "the graph": 5 distinct values.
        assert profile.distinct == 5

    def test_mean_length(self):
        profile = profile_attribute(_dataset(), "state")
        assert profile.mean_length == pytest.approx(2.0)

    def test_fully_missing_attribute(self):
        profile = profile_attribute(_dataset(), "bogus")
        assert profile.present == 0
        assert profile.missing_rate == 1.0
        assert profile.mean_length == 0.0


class TestPrefixBlockingProfile:
    def test_blocks_and_largest(self):
        blocking = profile_prefix_blocking(_dataset(), "name", 2)
        # Prefix-2 groups: "th" x3, "a " x2 -> 2 blocks, largest 3.
        assert blocking.num_blocks == 2
        assert blocking.largest_block == 3
        assert blocking.largest_share == pytest.approx(3 / 5)
        assert blocking.comparison_pairs == 3 + 1

    def test_singletons_excluded(self):
        blocking = profile_prefix_blocking(_dataset(), "name", 20)
        assert blocking.num_blocks == 0
        assert blocking.largest_share == 0.0

    def test_length_validation(self):
        with pytest.raises(ValueError):
            profile_prefix_blocking(_dataset(), "name", 0)


class TestDatasetProfile:
    def test_covers_all_attributes(self):
        profile = profile_dataset(_dataset(), prefix_lengths=(2,))
        assert {a.name for a in profile.attributes} == {"name", "state"}
        assert len(profile.blocking) == 2

    def test_attribute_lookup(self):
        profile = profile_dataset(_dataset())
        assert profile.attribute("name").present == 5
        with pytest.raises(KeyError):
            profile.attribute("missing")

    def test_format_renders_all_sections(self):
        text = format_profile(profile_dataset(_dataset(), prefix_lengths=(2,)))
        assert "name" in text and "state" in text
        assert "name.sub(0, 2)" in text

    def test_suggestion_prefers_title_over_venue_on_citeseer(self):
        dataset = make_citeseer(800, seed=3)
        profile = profile_dataset(dataset, prefix_lengths=(3,))
        order = suggest_blocking_order(profile, length=3)
        # Table II's dominance order puts title (X) above venue (Z); the
        # heuristic must agree: many small title blocks beat few huge
        # venue blocks.
        assert order.index("title") < order.index("venue")
