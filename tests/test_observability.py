"""Unit tests for the observability layer: tracer, exporters, metrics."""

from __future__ import annotations

import json

import pytest

from repro.mapreduce import Counters
from repro.observability import (
    CHROME_PHASES,
    SCHEDULER_TRACK,
    MetricsRegistry,
    Span,
    TS_SCALE,
    Tracer,
    chrome_trace_events,
    format_trace_summary,
    trace_records,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)


def _sample_tracer() -> Tracer:
    """A tiny hand-built trace: one run, one job, two slots."""
    tracer = Tracer()
    tracer.begin_run("demo")
    tracer.record_span("wordcount", "job", 0.0, 20.0, job="wordcount")
    tracer.record_span("map", "phase", 0.0, 8.0, job="wordcount")
    tracer.record_span("reduce", "phase", 8.0, 20.0, job="wordcount")
    tracer.record_span(
        "map-0", "task", 0.0, 8.0, job="wordcount", track=1, task=0, phase="map"
    )
    tracer.record_span(
        "reduce-0", "task", 8.0, 20.0, job="wordcount", track=1, task=0, phase="reduce"
    )
    tracer.record_span(
        "resolve:X1:a", "block", 9.0, 15.0, job="wordcount", track=1,
        task=0, duplicates=3,
    )
    tracer.record_instant(
        "flush-0.0", "flush", 15.0, job="wordcount", track=1, task=0
    )
    return tracer


class TestTracer:
    def test_record_and_query(self):
        tracer = _sample_tracer()
        assert len(tracer) == 7  # six spans + one instant
        assert tracer.jobs() == [("demo", "wordcount")]
        assert len(tracer.spans_of("demo", "wordcount")) == 6
        tasks = tracer.spans_of("demo", "wordcount", category="task")
        assert [s.name for s in tasks] == ["map-0", "reduce-0"]

    def test_run_label_applies_from_begin_run(self):
        tracer = Tracer()
        tracer.record_span("early", "job", 0.0, 1.0, job="j")
        tracer.begin_run("second")
        tracer.record_span("late", "job", 0.0, 1.0, job="j")
        assert [s.run for s in tracer.spans] == ["", "second"]
        assert tracer.jobs() == [("", "j"), ("second", "j")]

    def test_span_args_sorted_and_queryable(self):
        tracer = Tracer()
        tracer.record_span("s", "block", 0.0, 1.0, job="j", zeta=1, alpha=2)
        span = tracer.spans[0]
        assert span.args == (("alpha", 2), ("zeta", 1))
        assert span.arg("zeta") == 1
        assert span.arg("missing", 42) == 42
        assert span.duration == pytest.approx(1.0)

    def test_span_set_is_order_independent(self):
        a, b = Tracer(), Tracer()
        a.record_span("x", "task", 0.0, 1.0, job="j")
        a.record_span("y", "task", 1.0, 2.0, job="j")
        b.record_span("y", "task", 1.0, 2.0, job="j")
        b.record_span("x", "task", 0.0, 1.0, job="j")
        assert a.span_set() == b.span_set()


class TestChromeExport:
    def test_export_validates(self):
        events = chrome_trace_events(_sample_tracer())
        validate_chrome_trace(events)  # must not raise
        assert {e["ph"] for e in events} <= set(CHROME_PHASES)

    def test_scheduler_lane_has_nested_b_e_pairs(self):
        events = chrome_trace_events(_sample_tracer())
        lane = [
            e["ph"]
            for e in events
            if e["tid"] == SCHEDULER_TRACK and e["ph"] in ("B", "E")
        ]
        # job opens, two phases open/close in order, job closes
        assert lane == ["B", "B", "E", "B", "E", "E"]

    def test_task_spans_become_complete_events(self):
        events = chrome_trace_events(_sample_tracer())
        x_events = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in x_events}
        assert {"map-0", "reduce-0", "resolve:X1:a"} <= names
        block = next(e for e in x_events if e["name"] == "resolve:X1:a")
        assert block["ts"] == pytest.approx(9.0 * TS_SCALE)
        assert block["dur"] == pytest.approx(6.0 * TS_SCALE)
        assert block["args"]["duplicates"] == 3

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_tracer(), str(path))
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)
        assert loaded == chrome_trace_events(_sample_tracer())


class TestChromeValidation:
    def test_rejects_non_array(self):
        with pytest.raises(ValueError, match="JSON array"):
            validate_chrome_trace({"not": "a list"})

    def test_rejects_non_object_event(self):
        with pytest.raises(ValueError, match="not an object"):
            validate_chrome_trace(["bare string"])

    def test_rejects_missing_required_key(self):
        with pytest.raises(ValueError, match="required key"):
            validate_chrome_trace([{"name": "x", "ph": "X", "pid": 0, "tid": 0}])

    def test_rejects_unknown_phase_letter(self):
        event = {"name": "x", "ph": "Q", "pid": 0, "tid": 0, "ts": 0.0}
        with pytest.raises(ValueError, match="phase letter"):
            validate_chrome_trace([event])

    def test_rejects_x_without_dur(self):
        event = {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace([event])

    def test_rejects_unbalanced_end(self):
        event = {"name": "x", "ph": "E", "pid": 0, "tid": 0, "ts": 0.0}
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace([event])

    def test_rejects_unclosed_begin(self):
        event = {"name": "x", "ph": "B", "pid": 0, "tid": 0, "ts": 0.0}
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace([event])


class TestJsonlExport:
    def test_records_cover_spans_then_instants(self):
        records = list(trace_records(_sample_tracer()))
        assert [r["type"] for r in records] == ["span"] * 6 + ["instant"]
        assert records[0]["name"] == "wordcount"
        assert records[-1]["name"] == "flush-0.0"
        assert all(r["run"] == "demo" for r in records)

    def test_write_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(_sample_tracer(), str(path))
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == list(
            trace_records(_sample_tracer())
        )


class TestTraceSummary:
    def test_summary_shows_phases_and_block_counts(self):
        text = format_trace_summary(_sample_tracer())
        assert "demo:wordcount" in text
        assert "map" in text and "reduce" in text
        assert "blocks    1" in text
        assert "dups    3" in text

    def test_empty_tracer(self):
        assert format_trace_summary(Tracer()) == "(empty trace)"

    def test_rejects_unreadable_width(self):
        with pytest.raises(ValueError):
            format_trace_summary(_sample_tracer(), width=4)


class TestMetricsRegistry:
    def test_snapshot_flattens_counters(self):
        counters = Counters()
        counters.increment("engine", "map_records", 7)
        counters.increment("driver", "duplicates", 2)
        registry = MetricsRegistry()
        registry.snapshot("job/map", counters, backend="serial")
        assert len(registry) == 1
        snap = registry.snapshots[0]
        assert snap.scope == "job/map"
        assert snap.get("engine.map_records") == 7
        assert snap.get("driver.duplicates") == 2
        assert snap.get("absent") == 0
        assert snap.as_dict() == {
            "scope": "job/map",
            "counters": {"driver.duplicates": 2, "engine.map_records": 7},
            "backend": "serial",
        }

    def test_snapshot_accepts_flat_mapping(self):
        registry = MetricsRegistry()
        registry.snapshot("matcher", {"matcher.cache_hits": 5})
        assert registry.snapshots[0].get("matcher.cache_hits") == 5

    def test_begin_run_prefixes_scope(self):
        registry = MetricsRegistry()
        registry.begin_run("ours[lpt]")
        registry.snapshot("job/map")
        assert registry.snapshots[0].scope == "ours[lpt]:job/map"
        assert registry.scoped("job/map") == [registry.snapshots[0]]
        assert registry.scoped("job/reduce") == []

    def test_write_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.snapshot("a", {"x.y": 1}, note="n")
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        assert json.loads(path.read_text()) == registry.as_dict()


class TestEndToEndExport:
    """A real (small) run exports a valid Chrome trace with full coverage."""

    def test_progressive_run_trace_is_perfetto_loadable(
        self, citeseer_small, citeseer_cfg, tmp_path
    ):
        from repro.evaluation import ExperimentRun, RunSpec

        tracer = Tracer()
        metrics = MetricsRegistry()
        run = ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_cfg, machines=3,
                tracer=tracer, metrics=metrics,
            )
        ).run()

        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        events = json.loads(path.read_text())
        validate_chrome_trace(events)

        x_names = {e["name"] for e in events if e["ph"] == "X"}
        assert "schedule-generation" in x_names
        assert any(name.startswith("resolve:") for name in x_names)
        assert any(name.startswith("stats:") for name in x_names)
        # Both jobs appear as named processes.
        process_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names == {
            f"{run.label}:progressive-blocking-statistics",
            f"{run.label}:progressive-resolution",
        }
        # Per-phase engine snapshots plus the matcher snapshot.
        scopes = {s.scope for s in metrics.snapshots}
        assert f"{run.label}:progressive-resolution/reduce" in scopes
        assert f"{run.label}:matcher" in scopes
