"""Tests for remaining evaluation paths: io helpers, CurveRun, sampling."""

import pytest

from repro.data import Dataset, Entity
from repro.evaluation import CurveRun, recall_curve, sample_times
from repro.mapreduce import (
    Cluster,
    MapReduceJob,
    Mapper,
    Reducer,
    file_timeline,
    results_available_at,
)
from repro.mapreduce.types import Event


class _Identity(Mapper):
    def map(self, record, context):
        context.emit(record % 2, record)


class _Writer(Reducer):
    def reduce(self, key, values, context):
        for value in values:
            context.charge(1.0)
            context.write(value)


@pytest.fixture()
def flushing_job():
    job = MapReduceJob(_Identity, _Writer, alpha=3.0)
    return Cluster(1).run_job(job, list(range(12)), num_reduce_tasks=2)


class TestIoHelpers:
    def test_file_timeline_sorted(self, flushing_job):
        files = file_timeline(flushing_job)
        closes = [f.close_time for f in files]
        assert closes == sorted(closes)

    def test_nothing_available_before_first_close(self, flushing_job):
        first_close = file_timeline(flushing_job)[0].close_time
        assert results_available_at(flushing_job, first_close - 1e-6) == []

    def test_everything_available_at_end(self, flushing_job):
        available = results_available_at(flushing_job, flushing_job.end_time)
        assert sorted(available) == list(range(12))

    def test_availability_strictly_after_write_time(self, flushing_job):
        """A record is not visible until its file closes — the consumer
        semantics of Section III-B."""
        files = file_timeline(flushing_job)
        total = 0
        for f in files:
            visible = results_available_at(flushing_job, f.close_time)
            total += len(f.records)
            assert len(visible) >= total - len(f.records)


class TestCurveRun:
    def _run(self):
        ds = Dataset(
            entities=[Entity(id=i, attrs={}) for i in range(4)],
            clusters={0: 0, 1: 0, 2: 1, 3: 1},
        )
        events = [Event(time=5.0, kind="duplicate", payload=(0, 1))]
        curve = recall_curve(events, ds, end_time=20.0)
        return CurveRun(label="x", curve=curve, result="raw")

    def test_properties_delegate_to_curve(self):
        run = self._run()
        assert run.final_recall == pytest.approx(0.5)
        assert run.total_time == 20.0
        assert run.result == "raw"


class TestSampleTimes:
    def test_last_point_is_end(self):
        assert sample_times(50.0, points=5)[-1] == 50.0

    def test_points_are_increasing(self):
        times = sample_times(123.0, points=7)
        assert times == sorted(times)
        assert all(t > 0 for t in times)
