"""Unit tests for responsible trees: Cov / Uncov via inclusion-exclusion.

The key test verifies the paper's IE formula (computed from the Job-1
overlap statistics) against a brute-force per-pair computation on the same
data — they must agree exactly.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import (
    BlockingScheme,
    build_forests,
    citeseer_scheme,
    prefix_function,
)
from repro.data.dataset import Dataset
from repro.data.entity import Entity
from repro.core.responsibility import (
    compute_coverage,
    covered_pairs,
    shared_entities,
    uncovered_pairs,
)
from repro.core.statistics import run_statistics_job
from repro.data.entity import pairs_count
from repro.mapreduce import Cluster


def _brute_force_uncovered(signatures):
    """Count pairs sharing at least one (non-None) dominating key."""
    count = 0
    for a, b in itertools.combinations(signatures, 2):
        if any(ka is not None and ka == kb for ka, kb in zip(a, b)):
            count += 1
    return count


def _histogram(signatures):
    histogram = {}
    for sig in signatures:
        histogram[sig] = histogram.get(sig, 0) + 1
    return histogram


class TestUncoveredPairs:
    def test_no_dominating_families(self):
        assert uncovered_pairs({(): 10}, 0) == 0

    def test_all_share_one_key(self):
        histogram = {("k",): 5}
        assert uncovered_pairs(histogram, 1) == pairs_count(5)

    def test_disjoint_keys_share_nothing(self):
        histogram = {("a",): 2, ("b",): 3}
        assert uncovered_pairs(histogram, 1) == pairs_count(2) + pairs_count(3)

    def test_none_keys_never_share(self):
        histogram = {(None,): 4}
        assert uncovered_pairs(histogram, 1) == 0

    def test_paper_figure4_example(self):
        # Figure 4: |Y1| = 30, overlapping X-blocks of 10 and 20 entities.
        # Uncov(Y1) = Pairs(10) + Pairs(20) = 45 + 190 = 235.
        histogram = {("x1",): 10, ("x2",): 20}
        assert uncovered_pairs(histogram, 1) == 235

    def test_two_families_inclusion_exclusion(self):
        # Both entities share the X key AND the Y key: the pair must be
        # counted once, not twice.
        histogram = {("x", "y"): 3}
        assert uncovered_pairs(histogram, 2) == pairs_count(3)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([None, "a", "b", "c"]),
                st.sampled_from([None, "p", "q"]),
            ),
            min_size=0,
            max_size=25,
        )
    )
    @settings(max_examples=120)
    def test_matches_brute_force_two_families(self, signatures):
        assert uncovered_pairs(_histogram(signatures), 2) == _brute_force_uncovered(
            signatures
        )

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([None, "a", "b"]),
                st.sampled_from([None, "p", "q"]),
                st.sampled_from([None, "u", "v", "w"]),
            ),
            min_size=0,
            max_size=20,
        )
    )
    @settings(max_examples=80)
    def test_matches_brute_force_three_families(self, signatures):
        assert uncovered_pairs(_histogram(signatures), 3) == _brute_force_uncovered(
            signatures
        )


class TestCoverage:
    def test_covered_plus_uncovered_is_total(self):
        histogram = {("a",): 3, ("b",): 2, (None,): 1}
        size = 6
        cov = covered_pairs(size, histogram, 1)
        unc = uncovered_pairs(histogram, 1)
        assert cov + unc == pairs_count(size)

    def test_coverage_on_real_statistics(self, citeseer_small):
        scheme = citeseer_scheme()
        _, stats, _ = run_statistics_job(Cluster(2), citeseer_small, scheme)
        coverage = compute_coverage(stats)
        dataset = citeseer_small
        mains = {f: scheme.main_function(f) for f in scheme.family_order}
        forests = build_forests(dataset, scheme)
        # Verify a sample of blocks against brute force on memberships.
        rng = random.Random(0)
        blocks = [b for forest in forests.values() for b in forest.blocks()]
        for block in rng.sample(blocks, min(25, len(blocks))):
            dominating = scheme.family_order[: scheme.index_of(block.family) - 1]
            signatures = [
                tuple(mains[f].key_of(dataset.entity(eid)) for f in dominating)
                for eid in block.entity_ids
            ]
            expected = pairs_count(block.size) - _brute_force_uncovered(signatures)
            assert coverage[block.uid] == expected

    def test_coverage_non_negative_and_bounded(self, citeseer_small):
        scheme = citeseer_scheme()
        _, stats, _ = run_statistics_job(Cluster(2), citeseer_small, scheme)
        coverage = compute_coverage(stats)
        for uid, block in stats.blocks.items():
            assert 0 <= coverage[uid] <= pairs_count(block.size)

    def test_most_dominating_family_fully_covered(self, citeseer_small):
        scheme = citeseer_scheme()
        _, stats, _ = run_statistics_job(Cluster(2), citeseer_small, scheme)
        coverage = compute_coverage(stats)
        for uid, block in stats.blocks.items():
            if block.family == "X":
                assert coverage[uid] == pairs_count(block.size)


class TestSharedEntities:
    def test_marginal_count(self):
        histogram = {("a", "p"): 2, ("a", "q"): 3, ("b", "p"): 4}
        assert shared_entities(histogram, 0, "a") == 5
        assert shared_entities(histogram, 1, "p") == 6
        assert shared_entities(histogram, 0, "zz") == 0


def _two_family_scheme(order=("X", "Y")):
    """A minimal two-family scheme; ``order`` controls dominance ≻_F."""
    functions = {
        "X": [prefix_function("X", 1, "a", 2)],
        "Y": [prefix_function("Y", 1, "b", 2)],
    }
    return BlockingScheme(families={f: functions[f] for f in order})


def _mini_dataset():
    """Three entities: 0 and 1 co-blocked under both families, 2 only
    under Y — the smallest input where dominance order changes coverage."""
    return Dataset(
        entities=[
            Entity(0, {"a": "xx1", "b": "yy1"}),
            Entity(1, {"a": "xx2", "b": "yy2"}),
            Entity(2, {"a": "qq1", "b": "yy3"}),
        ],
        clusters={0: 0, 1: 0, 2: 1},
        name="mini",
    )


class TestUncovEdgeCases:
    """Backfill: degenerate overlap chains the IE formula must survive."""

    def test_empty_histogram(self):
        for num_dominating in range(4):
            assert uncovered_pairs({}, num_dominating) == 0

    def test_all_none_chain_counts_nothing(self):
        # Entities present in no dominating family at all: every subset
        # projection hits a None and is excluded, so Uncov is exactly 0.
        histogram = {(None, None, None): 7}
        assert uncovered_pairs(histogram, 3) == 0

    def test_partially_empty_chain(self):
        # Two entities sharing only the second dominating family: the
        # singleton {1} contributes Pairs(2); every subset containing
        # family 0 projects onto a None and is excluded.
        histogram = {(None, "p"): 2}
        assert uncovered_pairs(histogram, 2) == pairs_count(2)

    def test_disjoint_chains_do_not_interact(self):
        # Each entity group overlaps a different dominating family; no
        # pair is double-counted, no inclusion-exclusion term survives
        # beyond the singletons.
        histogram = {("a", None): 2, (None, "p"): 3}
        assert uncovered_pairs(histogram, 2) == pairs_count(2) + pairs_count(3)

    def test_covered_with_empty_histogram_is_total(self):
        assert covered_pairs(5, {}, 2) == pairs_count(5)


class TestDominanceOrdering:
    """Backfill: the family order *is* the dominance order ≻_F."""

    def test_single_function_forest_is_fully_covered(self):
        # One family means no dominating families anywhere: every block
        # covers all its pairs.
        scheme = BlockingScheme(families={"X": [prefix_function("X", 1, "a", 2)]})
        _, stats, _ = run_statistics_job(Cluster(2), _mini_dataset(), scheme)
        coverage = compute_coverage(stats)
        assert coverage
        for uid, block in stats.blocks.items():
            assert coverage[uid] == pairs_count(block.size)

    def test_dominating_family_claims_shared_pair(self):
        # X ≻ Y: the (0, 1) pair belongs to X's tree; Y1:yy keeps only
        # the pairs involving entity 2.
        _, stats, _ = run_statistics_job(
            Cluster(2), _mini_dataset(), _two_family_scheme(("X", "Y"))
        )
        coverage = compute_coverage(stats)
        assert coverage["X1:xx"] == pairs_count(2)
        assert coverage["Y1:yy"] == pairs_count(3) - pairs_count(2)

    def test_reversed_order_flips_responsibility(self):
        # Y ≻ X: the same pair now belongs to Y's tree and X1:xx covers
        # nothing — responsibility is asymmetric by construction.
        _, stats, _ = run_statistics_job(
            Cluster(2), _mini_dataset(), _two_family_scheme(("Y", "X"))
        )
        coverage = compute_coverage(stats)
        assert coverage["Y1:yy"] == pairs_count(3)
        assert coverage["X1:xx"] == 0

    def test_every_pair_claimed_exactly_once(self):
        # Summing Cov over all blocks counts each co-blocked pair once
        # regardless of dominance direction (here blocks within a family
        # are disjoint, so no within-family double counting either).
        expected = 3  # the distinct co-blocked pairs (0,1), (0,2), (1,2)
        for order in (("X", "Y"), ("Y", "X")):
            _, stats, _ = run_statistics_job(
                Cluster(2), _mini_dataset(), _two_family_scheme(order)
            )
            coverage = compute_coverage(stats)
            assert sum(coverage.values()) == expected
