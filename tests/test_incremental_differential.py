"""The differential oracle for the incremental service.

N entities submitted in k batches must produce the identical final
found-pair set as one batch run — across serial and process backends,
with and without a fault plan, under every balance strategy.  Comparison
counts must match too (the candidate predicate is partition-invariant, so
slicing the stream never changes *what* is compared, only *when*).
"""

from __future__ import annotations

import pytest

from repro.core import citeseer_config
from repro.core.balance import BALANCE_STRATEGIES
from repro.data import make_citeseer
from repro.mapreduce import FaultPlan, RetryPolicy, SpeculationConfig
from repro.service import ResolverService

MACHINES = 3


@pytest.fixture(scope="module")
def dataset():
    return make_citeseer(240, seed=11)


@pytest.fixture(scope="module")
def reference(dataset):
    """The one-shot run every incremental cell must reproduce."""
    service = ResolverService(citeseer_config(), machines=MACHINES)
    service.submit(dataset.entities)
    return service


def incremental(dataset, k, **kwargs):
    kwargs.setdefault("machines", MACHINES)
    service = ResolverService(citeseer_config(), **kwargs)
    n = len(dataset.entities)
    for i in range(k):
        service.submit(dataset.entities[i * n // k : (i + 1) * n // k])
    return service


def fault_plan():
    return FaultPlan(
        seed=5,
        fault_rate=0.15,
        straggler_rate=0.2,
        straggler_factor=3.0,
        retry=RetryPolicy(),
        speculation=SpeculationConfig(enabled=True),
    )


class TestBatchCountInvariance:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_k_batches_equal_one_shot(self, dataset, reference, k):
        service = incremental(dataset, k)
        assert service.found_pairs == reference.found_pairs
        assert service.total_comparisons == reference.total_comparisons

    def test_one_entity_at_a_time_prefix(self, dataset):
        """Fully serial arrival over a prefix equals the prefix batch run."""
        prefix = dataset.entities[:60]
        drip = ResolverService(citeseer_config(), machines=MACHINES)
        for entity in prefix:
            drip.submit([entity])
        batch = ResolverService(citeseer_config(), machines=MACHINES)
        batch.submit(prefix)
        assert drip.found_pairs == batch.found_pairs
        assert drip.total_comparisons == batch.total_comparisons


class TestBackendParity:
    def test_process_backend_matches_serial(self, dataset, reference):
        service = incremental(dataset, 3, backend="process", workers=2)
        assert service.found_pairs == reference.found_pairs
        serial = incremental(dataset, 3)
        # Bit-identical virtual time, not just equal outputs.
        assert service.clock == serial.clock
        assert [r.end_time for r in service.receipts] == [
            r.end_time for r in serial.receipts
        ]


class TestFaultParity:
    def test_faults_stretch_time_but_not_output(self, dataset, reference):
        faulty = incremental(dataset, 3, faults=fault_plan())
        clean = incremental(dataset, 3)
        assert faulty.found_pairs == reference.found_pairs
        assert faulty.total_comparisons == clean.total_comparisons
        assert faulty.clock > clean.clock

    def test_faulty_process_equals_faulty_serial(self, dataset):
        serial = incremental(dataset, 3, faults=fault_plan())
        process = incremental(
            dataset, 3, faults=fault_plan(), backend="process", workers=2
        )
        assert serial.found_pairs == process.found_pairs
        assert serial.clock == process.clock


class TestBalanceParity:
    @pytest.mark.parametrize("balance", BALANCE_STRATEGIES)
    def test_every_strategy_resolves_the_same_pairs(
        self, dataset, reference, balance
    ):
        service = incremental(dataset, 4, balance=balance)
        assert service.found_pairs == reference.found_pairs
        assert service.total_comparisons == reference.total_comparisons


class TestDeltaEfficiency:
    def test_delta_comparisons_shrink_with_batch_size(self, dataset):
        """A small batch against a warm store costs a fraction of the
        one-shot resolve — the property BENCH_incremental.json quantifies."""
        warm = ResolverService(citeseer_config(), machines=MACHINES)
        warm.submit(dataset.entities[:220])
        delta = warm.submit(dataset.entities[220:])
        full = ResolverService(citeseer_config(), machines=MACHINES)
        receipt = full.submit(dataset.entities)
        assert warm.found_pairs == full.found_pairs
        assert delta.comparisons < receipt.comparisons / 2
