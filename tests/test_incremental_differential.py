"""The differential oracle for the incremental service.

N entities submitted in k batches must produce the identical final
found-pair set as one batch run — across serial and process backends,
with and without a fault plan, under every balance strategy, and in both
resolution scenarios (dirty single-source dedup and clean-clean linkage
over the two-source store).  Comparison counts must match too (the
candidate predicate — including the linkage mode's cross-source rule —
is a pure function of the pair, so slicing the stream never changes
*what* is compared, only *when*).
"""

from __future__ import annotations

import pytest

from repro.core import citeseer_config, linkage_config
from repro.core.balance import BALANCE_STRATEGIES
from repro.data import make_citeseer, make_linkage
from repro.mapreduce import FaultPlan, RetryPolicy, SpeculationConfig
from repro.service import ResolverService

MACHINES = 3

#: scenario -> (dataset maker, config factory).  ``dirty`` is the classic
#: single-source dedup; ``linkage`` streams the two-source store through
#: the same service with cross-source-only candidates.
SCENARIOS = {
    "dirty": (make_citeseer, citeseer_config),
    "linkage": (make_linkage, linkage_config),
}


@pytest.fixture(scope="module", params=sorted(SCENARIOS))
def scenario(request):
    return request.param


@pytest.fixture(scope="module")
def config_factory(scenario):
    return SCENARIOS[scenario][1]


@pytest.fixture(scope="module")
def dataset(scenario):
    maker, _ = SCENARIOS[scenario]
    return maker(240, seed=11)


@pytest.fixture(scope="module")
def reference(config_factory, dataset):
    """The one-shot run every incremental cell must reproduce."""
    service = ResolverService(config_factory(), machines=MACHINES)
    service.submit(dataset.entities)
    return service


def incremental(config_factory, dataset, k, **kwargs):
    kwargs.setdefault("machines", MACHINES)
    service = ResolverService(config_factory(), **kwargs)
    n = len(dataset.entities)
    for i in range(k):
        service.submit(dataset.entities[i * n // k : (i + 1) * n // k])
    return service


def fault_plan():
    return FaultPlan(
        seed=5,
        fault_rate=0.15,
        straggler_rate=0.2,
        straggler_factor=3.0,
        retry=RetryPolicy(),
        speculation=SpeculationConfig(enabled=True),
    )


class TestBatchCountInvariance:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_k_batches_equal_one_shot(self, config_factory, dataset, reference, k):
        service = incremental(config_factory, dataset, k)
        assert service.found_pairs == reference.found_pairs
        assert service.total_comparisons == reference.total_comparisons

    def test_one_entity_at_a_time_prefix(self, config_factory, dataset):
        """Fully serial arrival over a prefix equals the prefix batch run."""
        prefix = dataset.entities[:60]
        drip = ResolverService(config_factory(), machines=MACHINES)
        for entity in prefix:
            drip.submit([entity])
        batch = ResolverService(config_factory(), machines=MACHINES)
        batch.submit(prefix)
        assert drip.found_pairs == batch.found_pairs
        assert drip.total_comparisons == batch.total_comparisons


class TestBackendParity:
    def test_process_backend_matches_serial(self, config_factory, dataset, reference):
        service = incremental(config_factory, dataset, 3, backend="process", workers=2)
        assert service.found_pairs == reference.found_pairs
        serial = incremental(config_factory, dataset, 3)
        # Bit-identical virtual time, not just equal outputs.
        assert service.clock == serial.clock
        assert [r.end_time for r in service.receipts] == [
            r.end_time for r in serial.receipts
        ]


class TestFaultParity:
    def test_faults_stretch_time_but_not_output(
        self, config_factory, dataset, reference
    ):
        faulty = incremental(config_factory, dataset, 3, faults=fault_plan())
        clean = incremental(config_factory, dataset, 3)
        assert faulty.found_pairs == reference.found_pairs
        assert faulty.total_comparisons == clean.total_comparisons
        assert faulty.clock > clean.clock

    def test_faulty_process_equals_faulty_serial(self, config_factory, dataset):
        serial = incremental(config_factory, dataset, 3, faults=fault_plan())
        process = incremental(
            config_factory, dataset, 3, faults=fault_plan(),
            backend="process", workers=2,
        )
        assert serial.found_pairs == process.found_pairs
        assert serial.clock == process.clock


class TestBalanceParity:
    @pytest.mark.parametrize("balance", BALANCE_STRATEGIES)
    def test_every_strategy_resolves_the_same_pairs(
        self, config_factory, dataset, reference, balance
    ):
        service = incremental(config_factory, dataset, 4, balance=balance)
        assert service.found_pairs == reference.found_pairs
        assert service.total_comparisons == reference.total_comparisons


class TestDeltaEfficiency:
    def test_delta_comparisons_shrink_with_batch_size(self, config_factory, dataset):
        """A small batch against a warm store costs a fraction of the
        one-shot resolve — the property BENCH_incremental.json quantifies."""
        warm = ResolverService(config_factory(), machines=MACHINES)
        warm.submit(dataset.entities[:220])
        delta = warm.submit(dataset.entities[220:])
        full = ResolverService(config_factory(), machines=MACHINES)
        receipt = full.submit(dataset.entities)
        assert warm.found_pairs == full.found_pairs
        assert delta.comparisons < receipt.comparisons / 2


class TestLinkageStream:
    """Linkage-specific properties of the incremental path."""

    @pytest.fixture(scope="class")
    def linkage_dataset(self):
        return make_linkage(240, seed=11)

    def test_streamed_pairs_are_all_cross_source(self, linkage_dataset):
        service = incremental(linkage_config, linkage_dataset, 4)
        source_of = {e.id: e.source for e in linkage_dataset.entities}
        assert service.found_pairs
        for a, b in service.found_pairs:
            assert source_of[a] != source_of[b]

    def test_snapshot_restore_preserves_sources_mid_stream(self, linkage_dataset):
        """Restoring between batches must keep source tags (and therefore
        the cross-source predicate) intact."""
        entities = linkage_dataset.entities
        half = len(entities) // 2
        first = ResolverService(linkage_config(), machines=MACHINES)
        first.submit(entities[:half])
        restored = ResolverService.restore(
            first.snapshot(), linkage_config(), machines=MACHINES
        )
        restored.submit(entities[half:])
        uninterrupted = ResolverService(linkage_config(), machines=MACHINES)
        uninterrupted.submit(entities[:half])
        uninterrupted.submit(entities[half:])
        assert restored.found_pairs == uninterrupted.found_pairs
        assert restored.total_comparisons == uninterrupted.total_comparisons

    def test_linkage_fingerprint_differs_from_dirty(self, linkage_dataset):
        """A linkage snapshot must not restore under a dirty config: the
        candidate predicate changed, so the stored verdicts are not
        reusable."""
        service = ResolverService(linkage_config(), machines=MACHINES)
        service.submit(linkage_dataset.entities[:40])
        snapshot = service.snapshot()
        with pytest.raises(ValueError):
            ResolverService.restore(
                snapshot, citeseer_config(), machines=MACHINES
            )
