"""Unit tests for the weighted-sum resolve/match function."""

import pytest

from repro.data import Entity
from repro.similarity.matchers import (
    MIN_COST_FACTOR,
    AttributeRule,
    WeightedMatcher,
    books_matcher,
    citeseer_matcher,
)


def _e(eid, **attrs):
    return Entity(id=eid, attrs={k: str(v) for k, v in attrs.items()})


class TestAttributeRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AttributeRule("a", weight=0.0)
        with pytest.raises(ValueError):
            AttributeRule("a", weight=1.0, comparator="bogus")

    def test_exact_comparator(self):
        rule = AttributeRule("year", weight=1.0, comparator="exact")
        assert rule.similarity(_e(1, year=1999), _e(2, year=1999)) == 1.0
        assert rule.similarity(_e(1, year=1999), _e(2, year=2000)) == 0.0

    def test_max_chars_truncation(self):
        rule = AttributeRule("t", weight=1.0, max_chars=3)
        # Identical in the first 3 chars -> similarity 1 despite long tails.
        assert rule.similarity(_e(1, t="abcXXXX"), _e(2, t="abcYYYY")) == 1.0

    def test_both_missing_returns_none(self):
        rule = AttributeRule("t", weight=1.0)
        assert rule.similarity(_e(1), _e(2)) is None

    def test_one_missing_scores_zero(self):
        rule = AttributeRule("t", weight=1.0)
        assert rule.similarity(_e(1, t="x"), _e(2)) == 0.0

    def test_jaro_winkler_comparator(self):
        rule = AttributeRule("t", weight=1.0, comparator="jaro_winkler")
        assert rule.similarity(_e(1, t="martha"), _e(2, t="marhta")) == pytest.approx(
            0.961111, abs=1e-5
        )


class TestWeightedMatcher:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedMatcher([], threshold=0.5)
        with pytest.raises(ValueError):
            WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.0)

    def test_weighted_sum(self):
        matcher = WeightedMatcher(
            [
                AttributeRule("a", weight=3.0, comparator="exact"),
                AttributeRule("b", weight=1.0, comparator="exact"),
            ],
            threshold=0.5,
        )
        e1 = _e(1, a="x", b="y")
        e2 = _e(2, a="x", b="z")
        assert matcher.similarity(e1, e2) == pytest.approx(0.75)
        assert matcher.is_match(e1, e2)

    def test_missing_attribute_renormalizes(self):
        matcher = WeightedMatcher(
            [
                AttributeRule("a", weight=1.0, comparator="exact"),
                AttributeRule("b", weight=1.0, comparator="exact"),
            ],
            threshold=0.9,
        )
        # "b" missing on both sides: only "a" counts, so a perfect "a" wins.
        assert matcher.similarity(_e(1, a="x"), _e(2, a="x")) == 1.0

    def test_all_missing_scores_zero(self):
        matcher = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5)
        assert matcher.similarity(_e(1), _e(2)) == 0.0

    def test_cache_returns_same_values(self):
        cached = WeightedMatcher(
            [AttributeRule("a", 1.0)], threshold=0.5, cache=True
        )
        plain = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5)
        e1, e2 = _e(1, a="hello"), _e(2, a="hallo")
        assert cached.similarity(e1, e2) == plain.similarity(e1, e2)
        assert cached.similarity(e2, e1) == plain.similarity(e1, e2)  # hits cache

    def test_clear_cache(self):
        matcher = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5, cache=True)
        matcher.similarity(_e(1, a="x"), _e(2, a="y"))
        assert matcher._cache
        matcher.clear_cache()
        assert not matcher._cache


class TestCostFactor:
    def test_reference_length_costs_one(self):
        matcher = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5)
        value = "x" * 40
        assert matcher.comparison_cost_factor(
            _e(1, a=value), _e(2, a=value)
        ) == pytest.approx(1.0)

    def test_longer_strings_cost_more(self):
        matcher = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5)
        short = matcher.comparison_cost_factor(_e(1, a="ab"), _e(2, a="cd"))
        long = matcher.comparison_cost_factor(_e(1, a="x" * 200), _e(2, a="y" * 200))
        assert long > short

    def test_exact_only_matcher_costs_minimum(self):
        matcher = WeightedMatcher(
            [AttributeRule("a", 1.0, comparator="exact")], threshold=0.5
        )
        assert matcher.comparison_cost_factor(_e(1, a="x"), _e(2, a="y")) == MIN_COST_FACTOR


class TestPresets:
    def test_citeseer_matcher_attributes(self):
        matcher = citeseer_matcher()
        assert [r.attribute for r in matcher.rules] == ["title", "abstract", "venue"]
        abstract_rule = matcher.rules[1]
        assert abstract_rule.max_chars == 350  # the paper's <=350-char rule

    def test_books_matcher_has_eight_rules(self):
        matcher = books_matcher()
        assert len(matcher.rules) == 8
        comparators = {r.comparator for r in matcher.rules}
        assert comparators == {"edit", "exact"}
