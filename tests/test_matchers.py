"""Unit tests for the weighted-sum resolve/match function."""

import pytest

from repro.data import Entity
from repro.similarity.matchers import (
    MIN_COST_FACTOR,
    AttributeRule,
    WeightedMatcher,
    books_matcher,
    citeseer_matcher,
    clear_similarity_cache,
    similarity_cache_counters,
)


def _e(eid, **attrs):
    return Entity(id=eid, attrs={k: str(v) for k, v in attrs.items()})


class TestAttributeRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AttributeRule("a", weight=0.0)
        with pytest.raises(ValueError):
            AttributeRule("a", weight=1.0, comparator="bogus")

    def test_exact_comparator(self):
        rule = AttributeRule("year", weight=1.0, comparator="exact")
        assert rule.similarity(_e(1, year=1999), _e(2, year=1999)) == 1.0
        assert rule.similarity(_e(1, year=1999), _e(2, year=2000)) == 0.0

    def test_max_chars_truncation(self):
        rule = AttributeRule("t", weight=1.0, max_chars=3)
        # Identical in the first 3 chars -> similarity 1 despite long tails.
        assert rule.similarity(_e(1, t="abcXXXX"), _e(2, t="abcYYYY")) == 1.0

    def test_both_missing_returns_none(self):
        rule = AttributeRule("t", weight=1.0)
        assert rule.similarity(_e(1), _e(2)) is None

    def test_one_missing_scores_zero(self):
        rule = AttributeRule("t", weight=1.0)
        assert rule.similarity(_e(1, t="x"), _e(2)) == 0.0

    def test_jaro_winkler_comparator(self):
        rule = AttributeRule("t", weight=1.0, comparator="jaro_winkler")
        assert rule.similarity(_e(1, t="martha"), _e(2, t="marhta")) == pytest.approx(
            0.961111, abs=1e-5
        )


class TestWeightedMatcher:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedMatcher([], threshold=0.5)
        with pytest.raises(ValueError):
            WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.0)

    def test_weighted_sum(self):
        matcher = WeightedMatcher(
            [
                AttributeRule("a", weight=3.0, comparator="exact"),
                AttributeRule("b", weight=1.0, comparator="exact"),
            ],
            threshold=0.5,
        )
        e1 = _e(1, a="x", b="y")
        e2 = _e(2, a="x", b="z")
        assert matcher.similarity(e1, e2) == pytest.approx(0.75)
        assert matcher.is_match(e1, e2)

    def test_missing_attribute_renormalizes(self):
        matcher = WeightedMatcher(
            [
                AttributeRule("a", weight=1.0, comparator="exact"),
                AttributeRule("b", weight=1.0, comparator="exact"),
            ],
            threshold=0.9,
        )
        # "b" missing on both sides: only "a" counts, so a perfect "a" wins.
        assert matcher.similarity(_e(1, a="x"), _e(2, a="x")) == 1.0

    def test_all_missing_scores_zero(self):
        matcher = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5)
        assert matcher.similarity(_e(1), _e(2)) == 0.0

    def test_cache_returns_same_values(self):
        cached = WeightedMatcher(
            [AttributeRule("a", 1.0)], threshold=0.5, cache=True
        )
        plain = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5)
        e1, e2 = _e(1, a="hello"), _e(2, a="hallo")
        assert cached.similarity(e1, e2) == plain.similarity(e1, e2)
        assert cached.similarity(e2, e1) == plain.similarity(e1, e2)  # hits cache

    def test_clear_cache(self):
        matcher = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5, cache=True)
        matcher.similarity(_e(1, a="x"), _e(2, a="y"))
        assert matcher._cache
        matcher.clear_cache()
        assert not matcher._cache


class TestCostFactor:
    def test_reference_length_costs_one(self):
        matcher = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5)
        value = "x" * 40
        assert matcher.comparison_cost_factor(
            _e(1, a=value), _e(2, a=value)
        ) == pytest.approx(1.0)

    def test_longer_strings_cost_more(self):
        matcher = WeightedMatcher([AttributeRule("a", 1.0)], threshold=0.5)
        short = matcher.comparison_cost_factor(_e(1, a="ab"), _e(2, a="cd"))
        long = matcher.comparison_cost_factor(_e(1, a="x" * 200), _e(2, a="y" * 200))
        assert long > short

    def test_exact_only_matcher_costs_minimum(self):
        matcher = WeightedMatcher(
            [AttributeRule("a", 1.0, comparator="exact")], threshold=0.5
        )
        assert matcher.comparison_cost_factor(_e(1, a="x"), _e(2, a="y")) == MIN_COST_FACTOR


class TestPresets:
    def test_citeseer_matcher_attributes(self):
        matcher = citeseer_matcher()
        assert [r.attribute for r in matcher.rules] == ["title", "abstract", "venue"]
        abstract_rule = matcher.rules[1]
        assert abstract_rule.max_chars == 350  # the paper's <=350-char rule

    def test_books_matcher_has_eight_rules(self):
        matcher = books_matcher()
        assert len(matcher.rules) == 8
        comparators = {r.comparator for r in matcher.rules}
        assert comparators == {"edit", "exact"}


class TestSimilarityMemoCache:
    """The (comparator, v1, v2) memo skips wall-clock work only: scores and
    charged virtual cost are identical with a cold or warm cache."""

    def _pairs(self, n=30):
        import random

        from repro.data import make_books

        dataset = make_books(200, seed=5)
        rng = random.Random(9)
        return [tuple(rng.sample(dataset.entities, 2)) for _ in range(n)]

    def test_cached_and_uncached_scores_identical(self):
        matcher = books_matcher()
        pairs = self._pairs()
        clear_similarity_cache()
        cold = [matcher.similarity(a, b) for a, b in pairs]
        warm = [matcher.similarity(a, b) for a, b in pairs]  # all memo hits
        assert cold == warm
        clear_similarity_cache()
        recomputed = [matcher.similarity(a, b) for a, b in pairs]
        assert recomputed == cold

    def test_cached_and_uncached_cost_identical(self):
        matcher = books_matcher()
        pairs = self._pairs()
        clear_similarity_cache()
        cold = [matcher.comparison_cost_factor(a, b) for a, b in pairs]
        for a, b in pairs:
            matcher.similarity(a, b)  # warm the memo
        warm = [matcher.comparison_cost_factor(a, b) for a, b in pairs]
        assert cold == warm  # cost is derived from lengths, never the cache

    def test_hit_counter_surfaced_through_counters(self):
        clear_similarity_cache()
        matcher = citeseer_matcher()
        a, b = self._pairs(1)[0]
        matcher.similarity(a, b)
        before = similarity_cache_counters()
        assert before.get("matcher", "cache_misses") > 0
        matcher.similarity(a, b)
        after = similarity_cache_counters()
        assert after.get("matcher", "cache_hits") > before.get(
            "matcher", "cache_hits"
        )
        assert after.get("matcher", "cache_misses") == before.get(
            "matcher", "cache_misses"
        )

    def test_memo_keys_include_comparator(self):
        edit = AttributeRule("t", weight=1.0, comparator="edit")
        jw = AttributeRule("t", weight=1.0, comparator="jaro_winkler")
        e1, e2 = _e(1, t="dixon"), _e(2, t="dicksonx")
        assert edit.similarity(e1, e2) != jw.similarity(e1, e2)


class TestBoundedMatch:
    """Cheap-comparator-first short-circuiting never changes the decision."""

    def test_agrees_with_full_similarity_on_random_pairs(self):
        import random

        from repro.data import make_books, make_people
        from repro.similarity.matchers import people_matcher

        for maker, matcher in (
            (make_books, books_matcher()),
            (make_people, people_matcher()),
        ):
            dataset = maker(300, seed=13)
            rng = random.Random(17)
            pairs = [tuple(rng.sample(dataset.entities, 2)) for _ in range(150)]
            # Seed some true duplicate pairs so both outcomes are exercised.
            for eid, cluster in list(dataset.clusters.items())[:50]:
                peers = [
                    e
                    for e in dataset.entities
                    if dataset.clusters[e.id] == cluster and e.id != eid
                ]
                if peers:
                    entity = next(e for e in dataset.entities if e.id == eid)
                    pairs.append((entity, peers[0]))
            decisions = [matcher.is_match(a, b) for a, b in pairs]
            expected = [matcher.similarity(a, b) >= matcher.threshold for a, b in pairs]
            assert decisions == expected
            assert any(expected), "want at least one matching pair in the sample"

    def test_evaluation_order_is_cheapest_first(self):
        matcher = books_matcher()
        ranks = []
        from repro.similarity.matchers import _COMPARATOR_RANK

        for index in matcher._eval_order:
            ranks.append(_COMPARATOR_RANK[matcher.rules[index].comparator])
        assert ranks == sorted(ranks)
