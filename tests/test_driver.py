"""End-to-end tests for the two-job progressive pipeline."""

from collections import Counter

import pytest

import repro.core.driver as driver_module
from repro.core import ProgressiveER
from repro.data import pair_key
from repro.mapreduce import Cluster
from repro.evaluation import recall_curve
from repro.mapreduce import results_available_at
from repro.mechanisms import base as mechanisms_base


@pytest.fixture(scope="module")
def progressive_run(request):
    dataset = request.getfixturevalue("citeseer_small")
    matcher = request.getfixturevalue("shared_citeseer_matcher")
    from repro.core import citeseer_config

    config = citeseer_config(matcher=matcher)
    result = ProgressiveER(config, Cluster(3)).run(dataset)
    return dataset, result


class TestEndToEnd:
    def test_finds_most_duplicates(self, progressive_run):
        dataset, result = progressive_run
        recall = len(result.found_pairs & dataset.true_pairs) / dataset.num_true_pairs
        assert recall > 0.8

    def test_high_precision(self, progressive_run):
        dataset, result = progressive_run
        found = result.found_pairs
        precision = len(found & dataset.true_pairs) / len(found)
        assert precision > 0.9

    def test_job2_starts_after_job1(self, progressive_run):
        _, result = progressive_run
        assert result.job2.start_time == result.job1.end_time
        assert result.total_time == result.job2.end_time

    def test_events_deduplicated_and_ordered(self, progressive_run):
        _, result = progressive_run
        pairs = [e.payload for e in result.duplicate_events]
        assert len(pairs) == len(set(pairs))
        times = [e.time for e in result.duplicate_events]
        assert times == sorted(times)

    def test_events_within_job2_window(self, progressive_run):
        _, result = progressive_run
        for event in result.duplicate_events:
            assert result.job2.map_phase_end <= event.time <= result.job2.end_time

    def test_output_files_flush_incrementally(self, progressive_run):
        _, result = progressive_run
        assert len(result.job2.output_files) > result.job2.counters.get(
            "engine", "reduce_groups"
        ) * 0 + 1
        half = results_available_at(result.job2, result.total_time / 2)
        full = results_available_at(result.job2, result.total_time)
        assert len(half) <= len(full)
        assert set(full) == result.found_pairs

    def test_map_setup_charges_schedule_generation(self, progressive_run):
        _, result = progressive_run
        generation = result.schedule.generation_cost
        assert all(task.cost >= generation for task in result.job2.map_tasks)


class TestRedundancyFreedom:
    def test_no_pair_resolved_twice_globally(self, citeseer_small, citeseer_cfg):
        """The paper's Section V guarantee: across ALL reduce tasks and ALL
        blocks, each entity pair is resolved at most once."""
        resolved = Counter()
        original = mechanisms_base.resolve_block

        def counting(entities, mechanism, **kwargs):
            inner = kwargs.get("on_resolved")

            def wrapper(e1, e2, is_dup):
                resolved[pair_key(e1.id, e2.id)] += 1
                if inner is not None:
                    inner(e1, e2, is_dup)

            kwargs["on_resolved"] = wrapper
            return original(entities, mechanism, **kwargs)

        driver_module.resolve_block = counting
        try:
            result = ProgressiveER(citeseer_cfg, Cluster(3)).run(citeseer_small)
        finally:
            driver_module.resolve_block = original
        assert resolved, "expected at least one resolution"
        over_resolved = {p: c for p, c in resolved.items() if c > 1}
        assert not over_resolved
        # Every reported duplicate corresponds to one real resolution.
        assert set(result.found_pairs) <= set(resolved)


class TestDeterminism:
    def test_same_seed_same_events(self, citeseer_small, citeseer_cfg):
        r1 = ProgressiveER(citeseer_cfg, Cluster(2), seed=5).run(citeseer_small)
        r2 = ProgressiveER(citeseer_cfg, Cluster(2), seed=5).run(citeseer_small)
        assert [(e.time, e.payload) for e in r1.duplicate_events] == [
            (e.time, e.payload) for e in r2.duplicate_events
        ]


class TestEstimatorVariants:
    @pytest.mark.parametrize("kind", ["learned", "oracle", "uniform"])
    def test_all_estimators_run(self, citeseer_small, shared_citeseer_matcher, kind):
        from repro.core import citeseer_config

        config = citeseer_config(matcher=shared_citeseer_matcher, estimator=kind)
        result = ProgressiveER(config, Cluster(2)).run(citeseer_small)
        recall = len(result.found_pairs & citeseer_small.true_pairs)
        assert recall > 0


class TestSchedulerStrategies:
    @pytest.mark.parametrize("strategy", ["ours", "nosplit", "lpt"])
    def test_all_strategies_reach_same_final_recall(
        self, citeseer_small, citeseer_cfg, strategy
    ):
        result = ProgressiveER(
            citeseer_cfg, Cluster(3), strategy=strategy
        ).run(citeseer_small)
        curve = recall_curve(
            result.duplicate_events, citeseer_small, end_time=result.total_time
        )
        # The strategies change WHEN pairs are found, never WHETHER.
        assert curve.final_recall > 0.8
