"""Tests for schedule / result JSON serialization."""

import pytest

from repro.core import ProgressiveER, citeseer_config
from repro.core.serialize import (
    events_from_dict,
    events_to_dict,
    load_events,
    load_schedule,
    save_events,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.mapreduce import Cluster
from repro.evaluation import recall_curve


@pytest.fixture(scope="module")
def run_result(request):
    dataset = request.getfixturevalue("citeseer_small")
    matcher = request.getfixturevalue("shared_citeseer_matcher")
    config = citeseer_config(matcher=matcher)
    return dataset, ProgressiveER(config, Cluster(2)).run(dataset)


class TestScheduleRoundTrip:
    def test_dict_round_trip_preserves_everything(self, run_result):
        _, result = run_result
        original = result.schedule
        restored = schedule_from_dict(schedule_to_dict(original))

        assert restored.num_tasks == original.num_tasks
        assert restored.assignment == original.assignment
        assert restored.block_order == original.block_order
        assert restored.dominance == original.dominance
        assert restored.sequence == original.sequence
        assert restored.sequence_stride == original.sequence_stride
        assert restored.cost_vector == original.cost_vector
        assert restored.weights == original.weights
        assert restored.generation_cost == original.generation_cost
        assert restored.main_tree == original.main_tree
        assert restored.split_roots == original.split_roots
        assert set(restored.trees) == set(original.trees)
        assert restored.tree_of_block == original.tree_of_block

    def test_tree_structure_preserved(self, run_result):
        _, result = run_result
        restored = schedule_from_dict(schedule_to_dict(result.schedule))
        for uid, block in result.schedule.blocks.items():
            other = restored.blocks[uid]
            assert other.size == block.size
            assert [c.uid for c in other.children] == [c.uid for c in block.children]
            parent_uid = block.parent.uid if block.parent else None
            other_parent = other.parent.uid if other.parent else None
            assert other_parent == parent_uid

    def test_estimates_preserved(self, run_result):
        _, result = run_result
        restored = schedule_from_dict(schedule_to_dict(result.schedule))
        for uid in result.schedule.blocks:
            a = result.schedule.estimates[uid]
            b = restored.estimates[uid]
            assert (a.cov, a.dup, a.cost, a.util, a.full, a.th, a.window) == (
                b.cov, b.dup, b.cost, b.util, b.full, b.th, b.window
            )

    def test_file_round_trip(self, run_result, tmp_path):
        _, result = run_result
        path = tmp_path / "schedule.json"
        save_schedule(result.schedule, path)
        restored = load_schedule(path)
        assert restored.assignment == result.schedule.assignment

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            schedule_from_dict({"format": 999})

    def test_restored_schedule_is_runnable(
        self, run_result, shared_citeseer_matcher
    ):
        """A deserialized schedule drives Job 2 to identical results —
        the deployment scenario: generate once, ship as JSON, execute."""
        from repro.core.statistics import run_statistics_job

        dataset, result = run_result
        restored = schedule_from_dict(schedule_to_dict(result.schedule))
        config = citeseer_config(matcher=shared_citeseer_matcher)
        er = ProgressiveER(config, Cluster(2))
        annotated, _, job1 = run_statistics_job(
            er.cluster, dataset, config.scheme
        )
        job2 = er._run_resolution_job(annotated, restored, job1.end_time)
        found = {e.payload for e in job2.events if e.kind == "duplicate"}
        assert found == result.found_pairs


class TestEventArchive:
    def test_round_trip(self, run_result):
        dataset, result = run_result
        data = events_to_dict(result.duplicate_events, total_time=result.total_time)
        events, total = events_from_dict(data)
        assert total == result.total_time
        assert [(e.time, e.payload) for e in events] == [
            (e.time, e.payload) for e in result.duplicate_events
        ]

    def test_file_round_trip_and_curve_equality(self, run_result, tmp_path):
        dataset, result = run_result
        path = tmp_path / "events.json"
        save_events(result.duplicate_events, result.total_time, path)
        events, total = load_events(path)
        original = recall_curve(result.duplicate_events, dataset, end_time=result.total_time)
        restored = recall_curve(events, dataset, end_time=total)
        assert restored.times == original.times
        assert restored.recalls == original.recalls

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            events_from_dict({"format": -1})
