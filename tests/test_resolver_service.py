"""Unit tests for the incremental ResolverService and its delta machinery."""

from __future__ import annotations

import json

import pytest

from repro.core import citeseer_config, skewed_config
from repro.data import Entity, make_citeseer, make_skewed
from repro.service import ResolverService
from repro.service.delta import block_weight, matching_families, plan_delta
from repro.service.resolver import SNAPSHOT_FORMAT, config_fingerprint
from repro.service.store import EntityStore, route_label


@pytest.fixture(scope="module")
def dataset():
    return make_citeseer(300, seed=3)


@pytest.fixture(scope="module")
def config():
    return citeseer_config()


def make_service(config, **kwargs):
    kwargs.setdefault("machines", 3)
    return ResolverService(config, **kwargs)


class TestEntityStore:
    def test_annotate_covers_every_family(self, dataset, config):
        store = EntityStore(config.scheme)
        keys = store.annotate(dataset.entities[0])
        assert list(keys) == config.scheme.family_order

    def test_admit_files_members_per_route(self, config):
        store = EntityStore(config.scheme)
        entity = Entity(1, {"title": "Query Optimization", "venue": "VLDB"})
        store.admit([(entity, store.annotate(entity))], batch=1)
        assert 1 in store
        assert len(store) == 1
        keys = store.get(1).keys
        for family, key in keys.items():
            if key is not None:
                assert store.members((family, key)) == [1]

    def test_double_admission_rejected(self, config):
        store = EntityStore(config.scheme)
        entity = Entity(7, {"title": "t"})
        annotated = [(entity, store.annotate(entity))]
        store.admit(annotated, batch=1)
        with pytest.raises(ValueError, match="already admitted"):
            store.admit(annotated, batch=2)


class TestDeltaPlanning:
    def test_block_weight_counts_fresh_pairs(self):
        # ids 1,3 old; 5,9 new: fresh pairs are every pair minus (1,3).
        members = [(1, False), (3, False), (5, True), (9, True)]
        weights = block_weight(members)
        assert sum(weights) == 6 - 1
        assert weights[0] == 0  # first anchor has no partners

    def test_matching_families_in_dominance_order(self):
        a = {"X": "ab", "Y": None, "Z": "zz"}
        b = {"X": "ab", "Y": "yy", "Z": "zz"}
        assert matching_families(a, b, ("X", "Y", "Z")) == ["X", "Z"]
        assert matching_families(a, b, ("Z", "Y", "X")) == ["Z", "X"]

    def test_slack_keeps_whole_blocks(self):
        affected = {("X", "aa"): [(1, True), (2, False), (3, False)]}
        plan = plan_delta(affected, num_reduce_tasks=4, balance="slack")
        label = route_label(("X", "aa"))
        assert plan.routes[label] == (label,)
        assert not plan.shards
        assert plan.planned[label] == 2

    def test_blocksplit_shards_oversized_blocks(self):
        big = [(i, True) for i in range(40)]
        small = [(100, True), (101, False)]
        affected = {("X", "big"): big, ("X", "sm"): small}
        plan = plan_delta(affected, num_reduce_tasks=4, balance="blocksplit")
        big_label = route_label(("X", "big"))
        assert len(plan.routes[big_label]) > 1
        # Shards tile the anchor range [1, 40) without overlap.
        ranges = sorted(plan.shards[s] for s in plan.routes[big_label])
        assert ranges[0][0] == 1 and ranges[-1][1] == 40
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        # Shard loads add up to the whole block's load.
        assert sum(plan.planned[s] for s in plan.routes[big_label]) == sum(
            block_weight(big)
        )


class TestSubmit:
    def test_receipt_accounts_for_the_batch(self, dataset, config):
        service = make_service(config)
        receipt = service.submit(dataset.entities[:100])
        assert receipt.batch == 1
        assert receipt.added == 100
        assert receipt.affected_blocks > 0
        assert receipt.comparisons > 0
        assert receipt.duplicates == len(receipt.pairs)
        assert receipt.end_time > receipt.start_time == 0.0
        assert service.total_entities == 100

    def test_virtual_time_chains_across_batches(self, dataset, config):
        service = make_service(config)
        first = service.submit(dataset.entities[:100])
        second = service.submit(dataset.entities[100:200])
        assert second.start_time == first.end_time
        assert service.clock == second.end_time

    def test_duplicate_id_within_batch_rejected(self, config):
        service = make_service(config)
        with pytest.raises(ValueError, match="twice"):
            service.submit([Entity(1, {"title": "a"}), Entity(1, {"title": "b"})])

    def test_resubmitted_id_rejected(self, config):
        service = make_service(config)
        service.submit([Entity(1, {"title": "some title here"})])
        with pytest.raises(ValueError, match="already submitted"):
            service.submit([Entity(1, {"title": "another"})])

    def test_non_entity_rejected(self, config):
        service = make_service(config)
        with pytest.raises(TypeError, match="Entity"):
            service.submit([{"id": 1, "title": "a dict"}])

    def test_basic_config_rejected(self, dataset, config):
        from repro.baselines import BasicConfig
        from repro.mechanisms import PSNM

        basic = BasicConfig(
            scheme=config.scheme, matcher=config.matcher, mechanism=PSNM()
        )
        with pytest.raises(TypeError, match="ApproachConfig"):
            ResolverService(basic)

    def test_empty_batch_is_a_noop(self, config):
        service = make_service(config)
        receipt = service.submit([])
        assert receipt.added == 0
        assert receipt.comparisons == 0
        assert receipt.end_time == receipt.start_time
        assert service.clock == 0.0

    def test_unblocked_singleton_runs_no_job(self, config):
        service = make_service(config)
        receipt = service.submit([Entity(1, {"title": "unique title xq"})])
        assert receipt.affected_blocks == 0
        assert receipt.comparisons == 0


class TestPairStream:
    def test_seqs_are_contiguous_and_monotone(self, dataset, config):
        service = make_service(config)
        for start in range(0, 300, 100):
            service.submit(dataset.entities[start : start + 100])
        events = service.pairs()
        assert [e.seq for e in events] == list(range(1, len(events) + 1))
        times = [e.time for e in events]
        assert times == sorted(times)
        batches = [e.batch for e in events]
        assert batches == sorted(batches)

    def test_since_cursor_streams_only_news(self, dataset, config):
        service = make_service(config)
        first = service.submit(dataset.entities[:150])
        cursor = first.last_seq
        second = service.submit(dataset.entities[150:300])
        fresh = service.pairs(since=cursor)
        assert [e.pair for e in fresh] == list(second.pairs)
        assert service.pairs(since=service.pairs()[-1].seq) == []

    def test_negative_cursor_rejected(self, config):
        with pytest.raises(ValueError, match=">= 0"):
            make_service(config).pairs(since=-1)


class TestClusterOf:
    def test_found_pair_members_share_a_cluster(self, dataset, config):
        service = make_service(config)
        service.submit(dataset.entities)
        a, b = next(iter(service.found_pairs))
        cluster = service.cluster_of(a)
        assert a in cluster and b in cluster
        assert cluster == service.cluster_of(b)
        assert cluster == tuple(sorted(cluster))

    def test_isolated_entity_is_a_singleton(self, config):
        service = make_service(config)
        service.submit([Entity(5, {"title": "completely unique xyzzy"})])
        assert service.cluster_of(5) == (5,)

    def test_unknown_entity_raises(self, config):
        with pytest.raises(KeyError, match="never submitted"):
            make_service(config).cluster_of(123)


class TestSnapshotRestore:
    def test_round_trip_through_json(self, dataset, config):
        service = make_service(config)
        for start in range(0, 300, 150):
            service.submit(dataset.entities[start : start + 150])
        blob = json.dumps(service.snapshot())
        restored = ResolverService.restore(
            json.loads(blob), citeseer_config(), machines=3
        )
        assert restored.found_pairs == service.found_pairs
        assert restored.clock == service.clock
        assert restored.total_entities == service.total_entities
        assert restored.total_comparisons == service.total_comparisons
        assert [e.pair for e in restored.pairs()] == [
            e.pair for e in service.pairs()
        ]

    def test_restored_service_keeps_resolving(self, dataset, config):
        service = make_service(config)
        service.submit(dataset.entities[:200])
        restored = ResolverService.restore(
            service.snapshot(), citeseer_config(), machines=3
        )
        service.submit(dataset.entities[200:300])
        restored.submit(dataset.entities[200:300])
        assert restored.found_pairs == service.found_pairs
        assert restored.clock == service.clock

    def test_unknown_format_rejected(self, config):
        with pytest.raises(ValueError, match="snapshot format"):
            ResolverService.restore({"format": SNAPSHOT_FORMAT + 1}, config)

    def test_mismatched_config_rejected(self, dataset, config):
        service = make_service(config)
        service.submit(dataset.entities[:50])
        snapshot = service.snapshot()
        with pytest.raises(ValueError, match="different blocking scheme"):
            ResolverService.restore(snapshot, skewed_config())

    def test_fingerprint_tracks_min_family_matches(self, config):
        assert config_fingerprint(config, 1) != config_fingerprint(config, 2)


class TestSkewedSingleFamily:
    """min_family_matches clamps so one-family schemes still resolve."""

    def test_single_family_scheme_finds_pairs(self):
        dataset = make_skewed(150, seed=3)
        service = ResolverService(skewed_config(), machines=3)
        assert service.min_family_matches == 1
        service.submit(dataset.entities)
        assert len(service.found_pairs) > 0
