"""Unit tests for the entity model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.entity import Entity, entity_pair_key, pair_key, pairs_count


class TestEntity:
    def test_get_returns_value(self):
        e = Entity(id=1, attrs={"title": "on graphs"})
        assert e.get("title") == "on graphs"

    def test_get_missing_returns_empty(self):
        e = Entity(id=1, attrs={})
        assert e.get("title") == ""

    def test_get_missing_custom_default(self):
        e = Entity(id=1, attrs={})
        assert e.get("title", "n/a") == "n/a"

    def test_equality_is_by_id(self):
        assert Entity(id=1, attrs={"a": "x"}) == Entity(id=1, attrs={"a": "y"})
        assert Entity(id=1, attrs={}) != Entity(id=2, attrs={})

    def test_hash_is_by_id(self):
        entities = {Entity(id=1, attrs={"a": "x"}), Entity(id=1, attrs={"a": "y"})}
        assert len(entities) == 1

    def test_not_equal_to_other_types(self):
        assert Entity(id=1, attrs={}) != "entity"


class TestPairKey:
    def test_orders_ids(self):
        assert pair_key(7, 3) == (3, 7)
        assert pair_key(3, 7) == (3, 7)

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            pair_key(4, 4)

    def test_entity_pair_key(self):
        e1, e2 = Entity(id=9, attrs={}), Entity(id=2, attrs={})
        assert entity_pair_key(e1, e2) == (2, 9)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_symmetric(self, a, b):
        if a == b:
            return
        assert pair_key(a, b) == pair_key(b, a)


class TestPairsCount:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 0), (2, 1), (3, 3), (4, 6), (10, 45), (100, 4950)]
    )
    def test_known_values(self, n, expected):
        assert pairs_count(n) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pairs_count(-1)

    @given(st.integers(0, 2000))
    def test_matches_combinatorial_definition(self, n):
        assert pairs_count(n) == n * (n - 1) // 2

    @given(st.integers(1, 2000))
    def test_recurrence(self, n):
        # Pairs(n) = Pairs(n-1) + (n-1): each new entity pairs with all others.
        assert pairs_count(n) == pairs_count(n - 1) + (n - 1)
