"""Cross-scenario differential matrix: the pin for linkage + meta-blocking.

The oracle runs the full scenario grid

    {dirty, linkage} x {off, bf} x {serial, process}
                     x {slack, pairrange} x {clean, faulty}

once per module (32 pipeline runs on small datasets) and asserts the
properties that make the two new subsystems safe to compose with
everything that already exists:

* **Backend determinism.**  Within every (scenario, metablock, balance,
  fault) cell, serial and process backends produce bit-identical recall
  curves — virtual clocks, not just found-pair sets, must agree.
* **Placement/fault invariance.**  Within every (scenario, metablock)
  pair, found-pair sets are identical across balance strategies and
  fault plans: meta-blocking changes *which* pairs are candidates, but
  balance and faults still change only where and when work runs.
* **Linkage purity.**  In the linkage scenario every found pair is
  cross-source — the clean-clean predicate holds through blocking,
  scheduling, balancing, sharding and fault retries alike.
* **Meta-blocking containment.**  ``bf`` output is a subset of ``off``
  output within each scenario, with pair recall >= 0.95, and the run
  carries the pruning summary in its Job 2 counters.  ``wnp`` — whose
  subset property is structural (pruned pairs consume DistinctBudget) —
  is pinned on serial cells on top of the grid.

Grid sizes are deliberately small; scale lives in the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.core import books_config, linkage_config
from repro.data import make_books, make_linkage
from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce import FaultPlan, RetryPolicy, SpeculationConfig
from repro.similarity import books_matcher, linkage_matcher

MACHINES = 3
BACKENDS = ("serial", "process")
BALANCES = ("slack", "pairrange")
METABLOCKS = ("off", "bf")
SCENARIOS = ("dirty", "linkage")
FAULT_PLANS = {
    "clean": None,
    "faulty": FaultPlan(
        seed=23,
        fault_rate=0.15,
        straggler_rate=0.2,
        straggler_factor=2.5,
        retry=RetryPolicy(),
        speculation=SpeculationConfig(enabled=True),
    ),
}

#: ceil(0.8 * 3) = 3 keeps every block of a 3-family scheme, so the
#: default ratio is a no-op there; 0.5 keeps 2 of 3 and actually prunes.
BF_RATIO = 0.5


@pytest.fixture(scope="module")
def datasets():
    return {
        "dirty": make_books(300, seed=11),
        "linkage": make_linkage(300, seed=13),
    }


@pytest.fixture(scope="module")
def configs():
    # Dedicated caching matchers: the id-keyed caches of the session-wide
    # shared matchers are only valid against their own dataset.
    return {
        "dirty": books_config(
            matcher=books_matcher(cache=True), metablock_ratio=BF_RATIO
        ),
        "linkage": linkage_config(
            matcher=linkage_matcher(cache=True), metablock_ratio=BF_RATIO
        ),
    }


@pytest.fixture(scope="module")
def grid(datasets, configs):
    """The full 32-cell scenario matrix, computed once per module."""
    runs = {}
    for scenario in SCENARIOS:
        for metablock in METABLOCKS:
            for backend in BACKENDS:
                for balance in BALANCES:
                    for fault_name, plan in FAULT_PLANS.items():
                        spec = RunSpec(
                            datasets[scenario],
                            configs[scenario],
                            machines=MACHINES,
                            balance=balance,
                            backend=backend,
                            workers=2,
                            faults=plan,
                            metablock=metablock,
                        )
                        cell = (scenario, metablock, backend, balance, fault_name)
                        runs[cell] = ExperimentRun(spec).run()
    return runs


@pytest.fixture(scope="module")
def wnp_runs(datasets, configs):
    """Serial wnp runs per scenario (structural-subset pin on top of
    the grid; the grid itself covers off and bf)."""
    runs = {}
    for scenario in SCENARIOS:
        spec = RunSpec(
            datasets[scenario],
            configs[scenario],
            machines=MACHINES,
            metablock="wnp",
        )
        runs[scenario] = ExperimentRun(spec).run()
    return runs


class TestGridShape:
    def test_grid_is_complete(self, grid):
        expected = (
            len(SCENARIOS) * len(METABLOCKS) * len(BACKENDS)
            * len(BALANCES) * len(FAULT_PLANS)
        )
        assert len(grid) == expected == 32

    def test_no_cell_is_vacuous(self, grid):
        for cell, run in grid.items():
            assert run.found_pairs, f"cell {cell} found nothing"


class TestBackendDeterminism:
    def test_recall_curves_bit_identical_across_backends(self, grid):
        for scenario in SCENARIOS:
            for metablock in METABLOCKS:
                for balance in BALANCES:
                    for fault_name in FAULT_PLANS:
                        serial = grid[(scenario, metablock, "serial", balance, fault_name)]
                        process = grid[(scenario, metablock, "process", balance, fault_name)]
                        cell = (scenario, metablock, balance, fault_name)
                        assert serial.curve.times == process.curve.times, cell
                        assert serial.curve.recalls == process.curve.recalls, cell
                        assert serial.total_time == process.total_time, cell

    def test_duplicate_event_streams_match_across_backends(self, grid):
        for scenario in SCENARIOS:
            for metablock in METABLOCKS:
                for balance in BALANCES:
                    for fault_name in FAULT_PLANS:
                        serial = grid[(scenario, metablock, "serial", balance, fault_name)]
                        process = grid[(scenario, metablock, "process", balance, fault_name)]
                        assert [
                            (e.time, e.payload) for e in serial.duplicate_events
                        ] == [(e.time, e.payload) for e in process.duplicate_events]


class TestPlacementAndFaultInvariance:
    def test_found_pairs_identical_across_balance_and_faults(self, grid):
        for scenario in SCENARIOS:
            for metablock in METABLOCKS:
                reference = grid[
                    (scenario, metablock, "serial", "slack", "clean")
                ].found_pairs
                for backend in BACKENDS:
                    for balance in BALANCES:
                        for fault_name in FAULT_PLANS:
                            cell = (scenario, metablock, backend, balance, fault_name)
                            assert grid[cell].found_pairs == reference, (
                                f"output diverged in {cell}"
                            )

    def test_faults_only_stretch_timelines(self, grid):
        for scenario in SCENARIOS:
            for metablock in METABLOCKS:
                for balance in BALANCES:
                    clean = grid[(scenario, metablock, "serial", balance, "clean")]
                    faulty = grid[(scenario, metablock, "serial", balance, "faulty")]
                    assert faulty.total_time >= clean.total_time


class TestLinkagePurity:
    def test_every_found_pair_is_cross_source(self, grid, datasets):
        source_of = {e.id: e.source for e in datasets["linkage"].entities}
        for cell, run in grid.items():
            if cell[0] != "linkage":
                continue
            for a, b in run.found_pairs:
                assert source_of[a] != source_of[b], (
                    f"same-source pair ({a}, {b}) escaped in {cell}"
                )

    def test_linkage_sources_are_tagged(self, datasets):
        sources = {e.source for e in datasets["linkage"].entities}
        assert sources == {"a", "b"}

    def test_dirty_entities_are_untagged(self, datasets):
        assert all(e.source is None for e in datasets["dirty"].entities)

    def test_linkage_recall_is_high(self, grid):
        run = grid[("linkage", "off", "serial", "slack", "clean")]
        assert run.final_recall >= 0.9

    def test_linkage_comparisons_skip_same_source(self, grid):
        flat = grid[
            ("linkage", "off", "serial", "slack", "clean")
        ].result.job2.counters.as_flat_dict()
        assert flat.get("resolve.pairs_filtered", 0) > 0


class TestMetablockContainment:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_bf_output_is_a_subset_of_off(self, grid, scenario):
        off = grid[(scenario, "off", "serial", "slack", "clean")].found_pairs
        bf = grid[(scenario, "bf", "serial", "slack", "clean")].found_pairs
        assert bf <= off

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_bf_pair_recall_at_least_95_percent(self, grid, scenario):
        off = grid[(scenario, "off", "serial", "slack", "clean")].found_pairs
        bf = grid[(scenario, "bf", "serial", "slack", "clean")].found_pairs
        assert len(bf) >= 0.95 * len(off), (
            f"{scenario}: bf kept {len(bf)}/{len(off)} pairs"
        )

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_bf_actually_prunes(self, grid, scenario):
        plan = grid[(scenario, "bf", "serial", "slack", "clean")].result.metablock
        assert plan is not None and plan.mode == "bf"
        assert plan.memberships_kept < plan.memberships_total
        assert plan.pairs_kept < plan.pairs_total

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_wnp_output_is_a_subset_of_off(self, grid, wnp_runs, scenario):
        off = grid[(scenario, "off", "serial", "slack", "clean")].found_pairs
        assert wnp_runs[scenario].found_pairs <= off

    def test_off_runs_carry_no_metablock_plan(self, grid):
        run = grid[("dirty", "off", "serial", "slack", "clean")]
        assert run.result.metablock is None

    def test_metablock_counters_surface_in_job_counters(self, grid):
        flat = grid[
            ("dirty", "bf", "serial", "slack", "clean")
        ].result.job2.counters.as_flat_dict()
        assert flat.get("metablock.memberships_pruned", 0) > 0
        assert flat.get("metablock.pairs_pruned", 0) > 0

    def test_metablock_runs_are_labeled(self, grid):
        assert grid[("dirty", "bf", "serial", "slack", "clean")].label == "ours[ours+bf]"
        assert grid[("dirty", "off", "serial", "slack", "clean")].label == "ours[ours]"
