"""Unit tests for evaluation metrics: recall curves, Qty (Equation 1),
speedup, and precision."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset, Entity
from repro.evaluation.metrics import (
    RecallCurve,
    pair_precision,
    quality,
    recall_curve,
    recall_speedup,
)
from repro.mapreduce.types import Event


def _dataset():
    entities = [Entity(id=i, attrs={}) for i in range(6)]
    clusters = {0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2}  # pairs: (0,1),(2,3),(4,5)
    return Dataset(entities=entities, clusters=clusters)


def _event(time, pair):
    return Event(time=time, kind="duplicate", payload=pair)


class TestRecallCurve:
    def test_step_function(self):
        ds = _dataset()
        events = [_event(10.0, (0, 1)), _event(20.0, (2, 3))]
        curve = recall_curve(events, ds, end_time=30.0)
        assert curve.recall_at(5.0) == 0.0
        assert curve.recall_at(10.0) == pytest.approx(1 / 3)
        assert curve.recall_at(15.0) == pytest.approx(1 / 3)
        assert curve.recall_at(25.0) == pytest.approx(2 / 3)
        assert curve.final_recall == pytest.approx(2 / 3)

    def test_false_positives_ignored(self):
        ds = _dataset()
        events = [_event(1.0, (0, 2)), _event(2.0, (0, 1))]  # (0,2) is not true
        curve = recall_curve(events, ds)
        assert curve.final_recall == pytest.approx(1 / 3)

    def test_repeated_pairs_counted_once(self):
        ds = _dataset()
        events = [_event(1.0, (0, 1)), _event(2.0, (0, 1))]
        curve = recall_curve(events, ds)
        assert curve.final_recall == pytest.approx(1 / 3)

    def test_time_to(self):
        ds = _dataset()
        events = [_event(10.0, (0, 1)), _event(20.0, (2, 3))]
        curve = recall_curve(events, ds)
        assert curve.time_to(0.3) == 10.0
        assert curve.time_to(0.5) == 20.0
        assert curve.time_to(0.9) is None

    def test_requires_ground_truth(self):
        ds = Dataset(entities=[Entity(id=0, attrs={})])
        with pytest.raises(ValueError):
            recall_curve([], ds)

    def test_sample(self):
        ds = _dataset()
        curve = recall_curve([_event(10.0, (0, 1))], ds, end_time=20.0)
        assert curve.sample([5.0, 15.0]) == [(5.0, 0.0), (15.0, pytest.approx(1 / 3))]

    def test_area_under_increases_with_earlier_discovery(self):
        ds = _dataset()
        early = recall_curve([_event(1.0, (0, 1))], ds, end_time=10.0)
        late = recall_curve([_event(9.0, (0, 1))], ds, end_time=10.0)
        assert early.area_under() > late.area_under()

    def test_area_under_bounds(self):
        ds = _dataset()
        curve = recall_curve(
            [_event(0.0, (0, 1)), _event(0.0, (2, 3)), _event(0.0, (4, 5))],
            ds,
            end_time=10.0,
        )
        assert curve.area_under() == pytest.approx(1.0)

    @given(st.lists(st.floats(0.1, 100.0), min_size=0, max_size=3, unique=True))
    @settings(max_examples=40)
    def test_recalls_monotone(self, times):
        ds = _dataset()
        pairs = [(0, 1), (2, 3), (4, 5)]
        events = [_event(t, p) for t, p in zip(sorted(times), pairs)]
        curve = recall_curve(events, ds, end_time=200.0)
        assert curve.recalls == sorted(curve.recalls)


class TestQuality:
    def test_equation_one_hand_computed(self):
        ds = _dataset()  # N = 3
        events = [_event(5.0, (0, 1)), _event(15.0, (2, 3)), _event(50.0, (4, 5))]
        cost_samples = [10.0, 20.0, 30.0]
        # Intervals: (0,10] -> 1 pair, (10,20] -> 1 pair, (20,30] -> 0; the
        # 50.0 event falls outside every sample.
        weighting = lambda i, k: 1.0 - i / k  # 1.0, 2/3, 1/3
        expected = (1.0 * 1 + (2 / 3) * 1 + (1 / 3) * 0) / 3
        assert quality(events, ds, cost_samples, weighting) == pytest.approx(expected)

    def test_earlier_results_score_higher(self):
        ds = _dataset()
        cost_samples = [10.0, 20.0, 30.0]
        weighting = lambda i, k: (k - i) / k
        early = quality([_event(5.0, (0, 1))], ds, cost_samples, weighting)
        late = quality([_event(25.0, (0, 1))], ds, cost_samples, weighting)
        assert early > late

    def test_unsorted_cost_samples_rejected(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            quality([], ds, [20.0, 10.0], lambda i, k: 1.0)

    def test_perfect_early_result_scores_one(self):
        ds = _dataset()
        events = [_event(1.0, p) for p in [(0, 1), (2, 3), (4, 5)]]
        score = quality(events, ds, [10.0], lambda i, k: 1.0)
        assert score == pytest.approx(1.0)

    def test_no_ground_truth_returns_zero(self):
        ds = Dataset(entities=[Entity(id=0, attrs={})])
        assert quality([], ds, [1.0], lambda i, k: 1.0) == 0.0


class TestSpeedup:
    def _curve(self, times):
        ds = _dataset()
        pairs = [(0, 1), (2, 3), (4, 5)]
        events = [_event(t, p) for t, p in zip(times, pairs)]
        return recall_curve(events, ds, end_time=max(times) + 1)

    def test_speedup_ratio(self):
        slow = self._curve([10.0, 20.0, 30.0])
        fast = self._curve([5.0, 10.0, 15.0])
        assert recall_speedup(slow, fast, 0.3) == pytest.approx(2.0)
        assert recall_speedup(slow, fast, 0.9) == pytest.approx(2.0)

    def test_unreachable_recall_gives_none(self):
        slow = self._curve([10.0])
        fast = self._curve([5.0, 6.0])
        assert recall_speedup(slow, fast, 0.5) is None


class TestPrecision:
    def test_precision(self):
        ds = _dataset()
        assert pair_precision({(0, 1), (0, 2)}, ds) == pytest.approx(0.5)

    def test_empty_found_is_perfect(self):
        assert pair_precision(set(), _dataset()) == 1.0
