"""Property tests for the edit-distance kernels and threshold propagation.

Three kernels can answer a distance query — the scalar ``_full_dp``, the
bit-parallel ``_myers_dp`` and the band-limited ``_banded_dp`` — and the
dispatcher in :func:`repro.similarity.edit_distance.levenshtein` picks
between them per call.  They must be interchangeable: every kernel agrees
with the reference DP on arbitrary unicode inputs, including empty strings
and bounds that land exactly on the true distance (the banded kernel's
boundary case).

Threshold propagation (:meth:`WeightedMatcher._bounded_match` deriving a
per-rule similarity floor and bounding the kernel with it) is a pure
optimization: on random matcher configurations and entity pairs, the
propagated ``is_match`` must equal the unbounded weighted-sum decision.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Entity
from repro.similarity import AttributeRule, WeightedMatcher, levenshtein
from repro.similarity.edit_distance import _banded_dp, _full_dp, _myers_dp

#: Unicode-heavy but collision-prone alphabet: small enough that random
#: strings share substrings (exercising the prefix/suffix stripping and
#: the band's early exit), plus multibyte and astral characters.
ALPHABET = "abcdé日本語🙂 "

short_text = st.text(alphabet=ALPHABET, max_size=24)
nonempty_text = st.text(alphabet=ALPHABET, min_size=1, max_size=24)


def reference_distance(a: str, b: str) -> int:
    """Textbook full-matrix Levenshtein, the oracle for every kernel."""
    rows = [list(range(len(b) + 1))]
    for i, ca in enumerate(a, start=1):
        row = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            row.append(min(rows[i - 1][j] + 1, row[j - 1] + 1, rows[i - 1][j - 1] + cost))
        rows.append(row)
    return rows[len(a)][len(b)]


class TestKernelAgreement:
    @given(a=short_text, b=short_text)
    def test_levenshtein_matches_reference(self, a, b):
        assert levenshtein(a, b) == reference_distance(a, b)

    @given(a=nonempty_text, b=nonempty_text)
    def test_myers_matches_full_dp(self, a, b):
        assert _myers_dp(a, b) == _full_dp(a, b) == reference_distance(a, b)

    @given(a=short_text, b=short_text, delta=st.integers(min_value=-2, max_value=3))
    def test_bounded_levenshtein_clamps_at_bound(self, a, b, delta):
        # Draw bounds clustered around the true distance so the
        # bound-equal-to-distance boundary is hit constantly.
        true = reference_distance(a, b)
        bound = max(0, true + delta)
        got = levenshtein(a, b, max_distance=bound)
        if true <= bound:
            assert got == true
        else:
            assert got == bound + 1

    @given(a=nonempty_text, b=nonempty_text, bound=st.integers(min_value=0, max_value=30))
    def test_banded_matches_reference_within_preconditions(self, a, b, bound):
        # _banded_dp's contract (enforced by the dispatcher): a is the
        # shorter string, the bound covers the length difference, and the
        # band is narrower than a row (else Myers is used).
        if len(a) > len(b):
            a, b = b, a
        if len(b) - len(a) > bound or 2 * bound + 1 >= len(a):
            return
        true = reference_distance(a, b)
        got = _banded_dp(a, b, bound)
        assert got == (true if true <= bound else bound + 1)

    @given(b=short_text, bound=st.integers(min_value=0, max_value=5))
    def test_empty_string_edges(self, b, bound):
        assert levenshtein("", b) == len(b)
        got = levenshtein("", b, max_distance=bound)
        assert got == (len(b) if len(b) <= bound else bound + 1)


# ---------------------------------------------------------------------------
# Threshold propagation never flips a decision
# ---------------------------------------------------------------------------

_ATTRS = ("title", "venue", "year")

rule_strategy = st.tuples(
    st.sampled_from(_ATTRS),
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    st.sampled_from(["edit", "exact", "edit"]),  # edit-heavy on purpose
)

entity_values = st.lists(
    st.text(alphabet=ALPHABET, max_size=20), min_size=3, max_size=3
)


@st.composite
def matcher_configs(draw):
    raw = draw(st.lists(rule_strategy, min_size=1, max_size=4))
    # One rule per attribute at most (duplicate attributes are legal but
    # make the test harder to read); keep the first of each.
    rules = []
    seen = set()
    for attribute, weight, comparator in raw:
        if attribute in seen:
            continue
        seen.add(attribute)
        rules.append(AttributeRule(attribute, weight=weight, comparator=comparator))
    threshold = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    return WeightedMatcher(rules, threshold)


def _entity(idx: int, values) -> Entity:
    return Entity(id=f"e{idx}", attrs=dict(zip(_ATTRS, values)))


class TestThresholdPropagation:
    @settings(max_examples=200)
    @given(
        matcher=matcher_configs(),
        v1=entity_values,
        v2=entity_values,
        mutate=st.booleans(),
    )
    def test_is_match_equals_unbounded_decision(self, matcher, v1, v2, mutate):
        if mutate:
            # Near-duplicates stress the boundary region where propagation
            # floors sit closest to the actual similarities.
            v2 = [value[:-1] if value else value for value in v1]
        e1, e2 = _entity(0, v1), _entity(1, v2)
        bounded = matcher.is_match(e1, e2)
        unbounded = matcher.similarity(e1, e2) >= matcher.threshold
        assert bounded == unbounded
