"""Property suite: random batch partitions never change the resolved state.

Hypothesis draws random partitions (and permutations) of a dataset into
batch sequences; every draw must reproduce the one-shot found-pair set
and the same cluster membership, and the pair stream must stay monotone.
A second property drives the serial/process backends with the same random
partition and asserts bit-identical virtual clocks.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import citeseer_config
from repro.data import make_citeseer
from repro.service import ResolverService

DATASET = make_citeseer(120, seed=19)
MACHINES = 2

_reference_cache = {}


def reference():
    """One-shot resolve of DATASET (computed once per process)."""
    if "service" not in _reference_cache:
        service = ResolverService(citeseer_config(), machines=MACHINES)
        service.submit(DATASET.entities)
        _reference_cache["service"] = service
    return _reference_cache["service"]


@st.composite
def batch_partitions(draw, max_batches: int = 6, shuffle: bool = True):
    """A random ordered partition of DATASET's entities into batches."""
    entities = list(DATASET.entities)
    if shuffle:
        entities = draw(st.permutations(entities))
    n = len(entities)
    k = draw(st.integers(min_value=1, max_value=max_batches))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n),
                min_size=k - 1,
                max_size=k - 1,
            )
        )
    )
    bounds = [0] + cuts + [n]
    return [
        entities[lo:hi] for lo, hi in zip(bounds, bounds[1:])
    ]


def run_batches(batches, **kwargs):
    kwargs.setdefault("machines", MACHINES)
    service = ResolverService(citeseer_config(), **kwargs)
    for batch in batches:
        service.submit(batch)
    return service


@given(batches=batch_partitions())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_partition_reproduces_the_one_shot_pair_set(batches):
    service = run_batches(batches)
    assert service.found_pairs == reference().found_pairs
    assert service.total_comparisons == reference().total_comparisons


@given(batches=batch_partitions())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_cluster_membership_is_partition_invariant(batches):
    service = run_batches(batches)
    assert service.clusters() == reference().clusters()
    # Spot-check the point query agrees with the bulk view.
    for cluster in service.clusters()[:5]:
        assert service.cluster_of(cluster[0]) == tuple(cluster)


@given(batches=batch_partitions())
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_pair_stream_is_monotone_and_receipts_tile_it(batches):
    service = run_batches(batches)
    events = service.pairs()
    assert [e.seq for e in events] == list(range(1, len(events) + 1))
    assert [e.time for e in events] == sorted(e.time for e in events)
    tiled = [pair for receipt in service.receipts for pair in receipt.pairs]
    assert tiled == [e.pair for e in events]


@given(batches=batch_partitions(max_batches=3, shuffle=False))
@settings(deadline=None, max_examples=8, suppress_health_check=[HealthCheck.too_slow])
def test_backends_agree_on_random_partitions(batches):
    serial = run_batches(batches)
    process = run_batches(batches, backend="process", workers=2)
    assert serial.found_pairs == process.found_pairs
    assert serial.clock == process.clock
