"""Unit and property tests for token / q-gram similarity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import Entity
from repro.similarity import (
    AttributeRule,
    jaccard,
    qgram_jaccard,
    qgrams,
    token_jaccard,
    word_tokens,
)

words = st.text(alphabet="abcdef ", min_size=0, max_size=30)


class TestWordTokens:
    def test_splits_and_lowercases(self):
        assert word_tokens("The Quick  Fox") == {"the", "quick", "fox"}

    def test_empty(self):
        assert word_tokens("") == frozenset()


class TestQgrams:
    def test_padded_bigrams(self):
        grams = qgrams("ab", q=2)
        assert grams == {"\x00a", "ab", "b\x00"}

    def test_unpadded(self):
        assert qgrams("abc", q=2, pad=False) == {"ab", "bc"}

    def test_short_string(self):
        assert qgrams("a", q=3, pad=False) == {"a"}

    def test_q_validation(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    @given(words, st.integers(1, 4))
    def test_gram_count_bounded(self, text, q):
        assert len(qgrams(text, q)) <= max(1, len(text) + q - 1)


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_half(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)


class TestStringSimilarities:
    def test_token_jaccard_order_insensitive(self):
        assert token_jaccard("john lopez", "lopez john") == 1.0

    def test_qgram_robust_to_single_typo(self):
        sim = qgram_jaccard("charles andrews", "gharles andrews")
        assert sim > 0.7

    @given(words, words)
    def test_ranges_and_symmetry(self, a, b):
        for fn in (token_jaccard, qgram_jaccard):
            s = fn(a, b)
            assert 0.0 <= s <= 1.0
            assert s == pytest.approx(fn(b, a))

    @given(words)
    def test_identity(self, a):
        assert token_jaccard(a, a) == 1.0
        assert qgram_jaccard(a, a) == 1.0


class TestMatcherIntegration:
    def test_token_jaccard_comparator(self):
        rule = AttributeRule("authors", weight=1.0, comparator="token_jaccard")
        e1 = Entity(id=0, attrs={"authors": "mary gibson, john smith"})
        e2 = Entity(id=1, attrs={"authors": "john smith, mary gibson"})
        assert rule.similarity(e1, e2) == 1.0

    def test_qgram_comparator(self):
        rule = AttributeRule("title", weight=1.0, comparator="qgram")
        e1 = Entity(id=0, attrs={"title": "progressive er"})
        e2 = Entity(id=1, attrs={"title": "progresive er"})
        assert rule.similarity(e1, e2) > 0.7

    def test_token_rules_do_not_inflate_cost(self):
        from repro.similarity import WeightedMatcher
        from repro.similarity.matchers import MIN_COST_FACTOR

        matcher = WeightedMatcher(
            [AttributeRule("a", 1.0, comparator="token_jaccard")], threshold=0.5
        )
        e1 = Entity(id=0, attrs={"a": "x" * 500})
        e2 = Entity(id=1, attrs={"a": "y" * 500})
        assert matcher.comparison_cost_factor(e1, e2) == MIN_COST_FACTOR
