"""Tests built on the paper's own running examples (Table I, Figure 4)."""

import pytest

from repro.blocking import BlockingScheme, build_forests, prefix_function
from repro.core.responsibility import uncovered_pairs
from repro.core.statistics import run_statistics_job
from repro.data.entity import pairs_count
from repro.mapreduce import Cluster


def _toy_scheme():
    """Table I's functions: X1 = first two name characters, Y1 = state."""
    return BlockingScheme(
        families={
            "X": [prefix_function("X", 1, "name", 2)],
            "Y": [prefix_function("Y", 1, "state", 2)],
        }
    )


class TestTableOne:
    def test_x1_blocks(self, toy_people_dataset):
        """X1 groups the toy people by the first two name characters.
        Table I: X1 has five blocks; after pruning singletons the pruned
        ones are mary(1)/william(1)/gharles(1)."""
        forests = build_forests(toy_people_dataset, _toy_scheme())
        x_blocks = {root.key: set(root.entity_ids) for root in forests["X"].roots}
        assert x_blocks == {
            "jo": {1, 2, 3, 9},   # John x3 + Joey
            "ch": {4, 7},         # Charles + Chloe
        }

    def test_y1_blocks(self, toy_people_dataset):
        """Y1 groups by state: HI {1,2}, AZ {3,6,7,8}, LA {4,5,9}."""
        forests = build_forests(toy_people_dataset, _toy_scheme())
        y_blocks = {root.key: set(root.entity_ids) for root in forests["Y"].roots}
        assert y_blocks == {
            "hi": {1, 2},
            "az": {3, 6, 7, 8},
            "la": {4, 5, 9},
        }

    def test_x1_spreads_the_charles_pair(self, toy_people_dataset):
        """The paper's motivating flaw: X1 separates <e4, e5> because of the
        Charles/Gharles typo; Y1 (state) reunites them."""
        forests = build_forests(toy_people_dataset, _toy_scheme())
        for root in forests["X"].roots:
            assert not {4, 5} <= set(root.entity_ids)
        la = next(r for r in forests["Y"].roots if r.key == "la")
        assert {4, 5} <= set(la.entity_ids)

    def test_y_overlap_statistics(self, toy_people_dataset):
        """Y blocks must report how their entities overlap X main blocks."""
        _, stats, _ = run_statistics_job(
            Cluster(1), toy_people_dataset, _toy_scheme()
        )
        hi = stats.overlaps["Y1:hi"]
        # e1, e2 are both in X block "jo".
        assert hi == {("jo",): 2}
        assert uncovered_pairs(hi, 1) == 1  # the <e1, e2> pair
        la = stats.overlaps["Y1:la"]
        # e4 -> "ch", e5 -> "gh" (pruned from X but the key remains),
        # e9 -> "jo".
        assert la == {("ch",): 1, ("gh",): 1, ("jo",): 1}
        assert uncovered_pairs(la, 1) == 0


class TestFigureFourNumbers:
    def test_uncov_y1_from_figure4(self):
        """Figure 4's caption: |Y1| = 30 with X-overlaps of 10 and 20 ->
        Uncov(Y1) = Pairs(10) + Pairs(20) = 235, Cov = Pairs(30) - 235."""
        histogram = {("x1",): 10, ("x2",): 20}
        uncov = uncovered_pairs(histogram, 1)
        assert uncov == 235
        assert pairs_count(30) - uncov == 200
