"""The parallel runtime's plumbing: slim wire format, per-job worker
generations, pull-based work stealing, shared-memory transport, the
adaptive serial floor, and worker stat deltas.

Cross-backend *result* parity lives in ``test_executor_parity.py``; these
tests pin the mechanisms that make the process backend affordable — the
payload encoding must be lossless and compact, a job must fork at most one
worker generation, bulk bytes must move through shared memory (descriptors
only on the queues), small phases must stay in-process, and worker-side
matcher-cache statistics must ride home in the payloads.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import citeseer_config
from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce import (
    Cluster,
    Counters,
    MapReduceJob,
    Mapper,
    ParallelExecutor,
    Reducer,
    SerialExecutor,
    make_executor,
)
from repro.mapreduce import wire
from repro.mapreduce.executors import MapTaskPayload, ReduceTaskPayload
from repro.mapreduce.types import Event, OutputFile, SpanFragment
from repro.observability import MetricsRegistry, format_perf_report

from test_executor_parity import job_fingerprint


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


def _sample_map_payload() -> MapTaskPayload:
    counters = Counters()
    counters.increment("engine", "map_records", 7)
    return MapTaskPayload(
        task_id=3,
        cost=12.5,
        events=[Event(time=1.0, kind="emit", payload={"key": "a", "n": 1})],
        emitted=[("alpha", 1), ("beta", 2)],
        counters=counters,
        num_records=7,
        combine_input=4,
        combine_output=2,
        spans=[SpanFragment(name="map[3]", category="task", start=0.0, end=12.5, args=(("phase", "map"),))],
        stat_deltas=(("matcher", "cache_misses", 5),),
    )


def _sample_reduce_payload() -> ReduceTaskPayload:
    counters = Counters()
    counters.increment("engine", "reduce_groups", 2)
    return ReduceTaskPayload(
        task_id=1,
        cost=9.25,
        events=[Event(time=0.5, kind="group", payload="alpha")],
        written=[("alpha", 3), ("beta", 2)],
        files=[OutputFile(task_id=1, index=0, close_time=9.25, records=(("alpha", 3),))],
        counters=counters,
        num_groups=2,
        num_records=5,
        spans=[],
        stat_deltas=(("matcher", "cache_hits", 2),),
    )


def _payload_fields(payload) -> tuple:
    return (
        payload.task_id,
        payload.cost,
        [(e.time, e.kind, repr(e.payload)) for e in payload.events],
        payload.counters.as_dict(),
        payload.num_records,
        payload.spans,
        payload.stat_deltas,
    )


class TestWireFormat:
    def test_map_payload_round_trip(self):
        payload = _sample_map_payload()
        decoded = wire.decode_map_payload(wire.encode_map_payload(payload))
        assert _payload_fields(decoded) == _payload_fields(payload)
        assert decoded.emitted == payload.emitted
        assert decoded.combine_input == payload.combine_input
        assert decoded.combine_output == payload.combine_output

    def test_reduce_payload_round_trip(self):
        payload = _sample_reduce_payload()
        decoded = wire.decode_reduce_payload(wire.encode_reduce_payload(payload))
        assert _payload_fields(decoded) == _payload_fields(payload)
        assert decoded.written == payload.written
        assert decoded.files == payload.files
        assert decoded.num_groups == payload.num_groups

    def test_records_round_trip(self):
        records = [("key-%d" % i, {"attr": "value %d" % i}) for i in range(50)]
        assert wire.decode_records(wire.encode_records(records)) == records

    def test_small_blobs_skip_compression(self):
        blob = wire.encode_records([("k", 1)])
        assert blob[:1] == b"\x00"

    def test_redundant_payloads_compress(self):
        # ER payloads repeat attribute text constantly; zlib must engage
        # above the threshold and beat the plain pickle by a wide margin.
        records = [("the same blocking key", "the same attribute value")] * 500
        blob = wire.encode_records(records)
        raw = len(pickle.dumps(tuple(records)))
        assert blob[:1] == b"\x01"
        assert len(blob) * 3 < raw

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError):
            wire.decode_records(b"\x7fgarbage")

    def test_raw_pickle_size_is_plain_pickle(self):
        payload = _sample_map_payload()
        assert wire.raw_pickle_size(payload) == len(pickle.dumps(payload))


# ---------------------------------------------------------------------------
# Pool lifecycle / chunking / serial floor
# ---------------------------------------------------------------------------


class _WordMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(0.5 * len(values))
        context.write((key, sum(values)))


_LINES = ["alpha beta gamma delta"] * 64


def _job():
    return MapReduceJob(_WordMapper, _SumReducer, alpha=1.0)


class TestPoolLifecycle:
    def test_forced_fan_out_matches_serial(self):
        serial = Cluster(3).run_job(_job(), _LINES)
        executor = ParallelExecutor(2, serial_floor=0.0, profile_wire=True)
        parallel = Cluster(3, executor=executor).run_job(_job(), _LINES)
        assert job_fingerprint(serial) == job_fingerprint(parallel)
        assert executor.stats["pool_forks"] == 1
        assert executor.stats["tasks_fanned"] > 0
        assert executor.stats.get("tasks_inline", 0) == 0
        assert executor.stats["ipc_payload_bytes"] > 0
        assert executor.stats["ipc_input_bytes"] > 0

    def test_one_fork_per_job_not_per_phase(self):
        executor = ParallelExecutor(2, serial_floor=0.0)
        cluster = Cluster(3, executor=executor)
        jobs = 3
        for _ in range(jobs):
            cluster.run_job(_job(), _LINES)
        assert executor.stats["pool_forks"] == jobs

    def test_serial_floor_keeps_small_phases_inline(self):
        executor = ParallelExecutor(2, serial_floor=1e9)
        serial = Cluster(3).run_job(_job(), _LINES)
        inline = Cluster(3, executor=executor).run_job(_job(), _LINES)
        assert job_fingerprint(serial) == job_fingerprint(inline)
        assert executor.stats.get("pool_forks", 0) == 0
        assert executor.stats.get("tasks_fanned", 0) == 0
        assert executor.stats["tasks_inline"] > 0

    def test_below_floor_job_never_forks(self):
        # The pool is lazy: a job whose phases all stay inline must not
        # pay for a fork at begin_job.
        executor = ParallelExecutor(2, serial_floor=1e9)
        Cluster(2, executor=executor).run_job(_job(), _LINES[:4])
        assert executor.stats.get("pool_forks", 0) == 0

    def test_work_stealing_queue_counters(self):
        executor = ParallelExecutor(2, serial_floor=0.0)
        Cluster(8, executor=executor).run_job(_job(), _LINES)
        stats = executor.stats
        assert stats["tasks_fanned"] > 0
        # Steals are tasks that landed off their round-robin worker; they
        # can never exceed the tasks that were dispatched at all.
        assert 0 <= stats.get("steal_tasks", 0) <= stats["tasks_fanned"]
        # Workers block on the shared queue between pulls; the counter must
        # exist even when the phases drain instantly.
        assert stats.get("worker_idle_ms", 0) >= 0

    def test_shared_memory_carries_bulk_bytes(self):
        executor = ParallelExecutor(2, serial_floor=0.0)
        if not executor.use_shared_memory:
            pytest.skip("platform without usable shared memory")
        Cluster(8, executor=executor).run_job(_job(), _LINES)
        stats = executor.stats
        # Worker arenas plus one reduce-input segment per fanned reduce.
        assert stats["shm_segments"] >= 3
        assert stats["shm_input_bytes"] > 0
        assert stats["shm_payload_bytes"] > 0
        # The queues carry descriptors only: far fewer bytes than the wire
        # blobs that moved through shared memory.
        assert stats["ipc_payload_bytes"] < stats["payload_wire_bytes"]

    def test_shared_memory_off_is_bit_identical(self):
        shm = ParallelExecutor(2, serial_floor=0.0, use_shared_memory=True)
        inline = ParallelExecutor(2, serial_floor=0.0, use_shared_memory=False)
        a = Cluster(3, executor=shm).run_job(_job(), _LINES)
        b = Cluster(3, executor=inline).run_job(_job(), _LINES)
        assert job_fingerprint(a) == job_fingerprint(b)
        assert inline.stats.get("shm_segments", 0) == 0
        # Inline transport pays the blob bytes on the queue instead.
        assert inline.stats["ipc_payload_bytes"] >= inline.stats["payload_wire_bytes"]

    def test_drain_stats_resets_phase_window(self):
        executor = ParallelExecutor(2, serial_floor=0.0)
        Cluster(3, executor=executor).run_job(_job(), _LINES)
        executor.drain_stats()  # engine already drained per phase
        assert executor.drain_stats() == {}
        # Cumulative view survives draining.
        assert executor.stats["pool_forks"] == 1


# ---------------------------------------------------------------------------
# Driver metrics + worker stat deltas
# ---------------------------------------------------------------------------


class TestDriverMetrics:
    @pytest.mark.parametrize("executor_factory", [
        SerialExecutor,
        lambda: ParallelExecutor(2, serial_floor=0.0, profile_wire=True),
    ])
    def test_matcher_deltas_reach_phase_snapshots(
        self, citeseer_small, executor_factory
    ):
        # Both backends must report comparable matcher traffic: worker
        # processes ship their cache deltas home inside the payloads.  A
        # fresh (uncached) matcher per run keeps the comparisons from being
        # absorbed by a pair cache warmed in an earlier parametrization.
        metrics = MetricsRegistry()
        ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_config(), machines=4,
                executor=executor_factory(), metrics=metrics,
            )
        ).run()
        resolution = [
            s for s in metrics.snapshots
            if s.scope.endswith("resolution/reduce")
        ]
        assert resolution
        assert resolution[-1].get("matcher.cache_misses") > 0

    def test_phase_snapshots_carry_driver_counters_and_wall(self):
        metrics = MetricsRegistry()
        executor = ParallelExecutor(2, serial_floor=0.0, profile_wire=True)
        cluster = Cluster(3, executor=executor, metrics=metrics)
        cluster.run_job(_job(), _LINES)
        by_scope = {s.scope: s for s in metrics.snapshots}
        map_snap = by_scope["job/map"]
        reduce_snap = by_scope["job/reduce"]
        assert map_snap.get("driver.tasks_fanned") > 0
        assert map_snap.get("driver.pool_forks") == 1
        assert reduce_snap.get("driver.ipc_payload_bytes") > 0
        assert reduce_snap.get("driver.ipc_payload_raw_bytes") > 0
        for snap in (map_snap, reduce_snap):
            extra = dict(snap.extra)
            assert extra["backend"] == "process"
            assert extra["wall_seconds"] >= 0.0

    def test_perf_report_renders_phase_table(self):
        metrics = MetricsRegistry()
        executor = ParallelExecutor(2, serial_floor=0.0, profile_wire=True)
        Cluster(3, executor=executor, metrics=metrics).run_job(_job(), _LINES)
        report = format_perf_report(metrics)
        assert "pool forks: 1" in report
        assert "job/map" in report
        assert "payload wire bytes" in report

    def test_perf_report_without_snapshots(self):
        assert "no phase snapshots" in format_perf_report(MetricsRegistry())

    def test_make_executor_profile_wire(self):
        executor = make_executor("process", 2, profile_wire=True)
        assert executor.profile_wire is True
        assert make_executor("process", 2).profile_wire is False
