"""Unit and property tests for union-find / transitive closure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.clustering import UnionFind, transitive_closure


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind()
        assert uf.find(1) != uf.find(2)

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert uf.find(1) == uf.find(2)

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert not uf.union(1, 2)

    def test_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.find(1) == uf.find(3)

    def test_groups_exclude_singletons(self):
        uf = UnionFind()
        uf.find(9)
        uf.union(1, 2)
        assert uf.groups() == [[1, 2]]


class TestTransitiveClosure:
    def test_chains_merge(self):
        clusters = transitive_closure([(1, 2), (2, 3), (5, 6)])
        assert clusters == [[1, 2, 3], [5, 6]]

    def test_empty(self):
        assert transitive_closure([]) == []

    def test_paper_model_clusters_are_disjoint(self):
        clusters = transitive_closure([(1, 2), (3, 4), (2, 3), (7, 8)])
        seen = set()
        for group in clusters:
            assert not (seen & set(group))
            seen |= set(group)

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=60,
        )
    )
    def test_every_pair_ends_up_in_one_cluster(self, pairs):
        clusters = transitive_closure(pairs)
        membership = {}
        for index, group in enumerate(clusters):
            for item in group:
                membership[item] = index
        for a, b in pairs:
            assert membership[a] == membership[b]

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(
                lambda p: p[0] != p[1]
            ),
            max_size=40,
        )
    )
    def test_deterministic_and_sorted(self, pairs):
        a = transitive_closure(pairs)
        b = transitive_closure(pairs)
        assert a == b
        for group in a:
            assert group == sorted(group)
