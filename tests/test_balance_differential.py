"""Differential oracle for the load-balancing subsystem.

Every balance strategy × execution backend × fault plan must resolve the
*same* duplicate pairs: placement and sharding change only where and when
work runs, never its logical output.  The oracle runs the full grid on a
skewed workload (one hub block holding most of the dataset) and asserts:

* found-pair sets are identical across all strategy × backend × fault
  cells;
* recall curves are bit-identical across backends within each
  (strategy, fault) cell — backends must not even reorder virtual time;
* fault injection is output-invariant under every strategy;
* final recall per virtual-time checkpoint is identical across strategies
  (strategies legitimately shift the *timing* of discoveries — that is
  the whole point — but the curve must end at the same recall, and each
  strategy's own curve must be reproducible bit-for-bit).

The grid also pins the non-vacuousness of the tentpole: ``blocksplit``
must actually shard the hub block and beat ``slack``'s reduce-phase
makespan on this workload, and the global ``pairrange`` must shard the
hub too and beat its deprecated tree-granularity alias
``pairrange-tree`` (which cannot split a block).
"""

from __future__ import annotations

import pytest

from repro.core import skewed_config
from repro.core.balance import BALANCE_STRATEGIES, SHARD_SEP
from repro.core.driver import ProgressiveER
from repro.core.serialize import schedule_from_dict, schedule_to_dict
from repro.data.skewed import make_skewed
from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce import Cluster, FaultPlan, RetryPolicy, SpeculationConfig
from repro.similarity import citeseer_matcher

MACHINES = 3  # 6 reduce tasks
BACKENDS = ("serial", "process")
FAULT_PLANS = {
    "clean": None,
    "faulty": FaultPlan(
        seed=99,
        fault_rate=0.15,
        straggler_rate=0.2,
        straggler_factor=2.5,
        retry=RetryPolicy(),
        speculation=SpeculationConfig(enabled=True),
    ),
}


@pytest.fixture(scope="module")
def skewed_dataset():
    return make_skewed(420, seed=5, hub_fraction=0.6)


@pytest.fixture(scope="module")
def skewed_matcher():
    # A dedicated caching matcher: the id-keyed cache of the session-wide
    # shared matchers is only valid against their own dataset.
    return citeseer_matcher(cache=True)


@pytest.fixture(scope="module")
def skewed_cfg(skewed_matcher):
    return skewed_config(matcher=skewed_matcher)


@pytest.fixture(scope="module")
def grid(skewed_dataset, skewed_cfg):
    """All strategy × backend × fault runs, computed once per module."""
    runs = {}
    for balance in BALANCE_STRATEGIES:
        for backend in BACKENDS:
            for fault_name, plan in FAULT_PLANS.items():
                spec = RunSpec(
                    skewed_dataset,
                    skewed_cfg,
                    machines=MACHINES,
                    balance=balance,
                    backend=backend,
                    workers=2,
                    faults=plan,
                )
                runs[(balance, backend, fault_name)] = ExperimentRun(spec).run()
    return runs


class TestDifferentialOracle:
    def test_grid_is_complete(self, grid):
        assert len(grid) == len(BALANCE_STRATEGIES) * len(BACKENDS) * len(FAULT_PLANS)

    def test_found_pairs_identical_across_all_cells(self, grid):
        reference = grid[("slack", "serial", "clean")].found_pairs
        assert reference, "oracle is vacuous: the reference run found nothing"
        for cell, run in grid.items():
            assert run.found_pairs == reference, f"output diverged in {cell}"

    def test_recall_curves_bit_identical_across_backends(self, grid):
        for balance in BALANCE_STRATEGIES:
            for fault_name in FAULT_PLANS:
                serial = grid[(balance, "serial", fault_name)]
                process = grid[(balance, "process", fault_name)]
                assert serial.curve.times == process.curve.times
                assert serial.curve.recalls == process.curve.recalls
                assert serial.total_time == process.total_time

    def test_fault_injection_is_output_invariant(self, grid):
        for balance in BALANCE_STRATEGIES:
            clean = grid[(balance, "serial", "clean")]
            faulty = grid[(balance, "serial", "faulty")]
            assert faulty.found_pairs == clean.found_pairs
            # A faulty timeline can only stretch, never shrink.
            assert faulty.total_time >= clean.total_time

    def test_final_recall_identical_across_strategies(self, grid):
        reference = grid[("slack", "serial", "clean")].final_recall
        assert reference > 0
        for cell, run in grid.items():
            assert run.final_recall == reference, cell

    def test_duplicate_event_multisets_match_within_cells(self, grid):
        """Backends must agree on *when* each pair is found, not just which."""
        for balance in BALANCE_STRATEGIES:
            for fault_name in FAULT_PLANS:
                serial = grid[(balance, "serial", fault_name)]
                process = grid[(balance, "process", fault_name)]
                assert [
                    (e.time, e.payload) for e in serial.duplicate_events
                ] == [(e.time, e.payload) for e in process.duplicate_events]


class TestBlocksplitEffectiveness:
    def test_blocksplit_shards_the_hub(self, grid):
        plan = grid[("blocksplit", "serial", "clean")].result.balance
        assert plan.shards, "skewed workload did not trigger any split"
        assert plan.split_blocks
        covered = {shard.block_uid for shard in plan.shards}
        assert covered == set(plan.split_blocks)

    def test_blocksplit_beats_slack_makespan(self, grid):
        slack = grid[("slack", "serial", "clean")]
        blocksplit = grid[("blocksplit", "serial", "clean")]

        def reduce_span(run):
            job2 = run.result.job2
            return job2.end_time - job2.map_phase_end

        assert reduce_span(blocksplit) < reduce_span(slack)
        plan = blocksplit.result.balance
        assert plan.after.max < plan.before.max
        assert plan.after.max_over_mean < plan.before.max_over_mean

    def test_shards_are_actually_resolved(self, grid):
        counters = grid[("blocksplit", "serial", "clean")].result.job2.counters
        flat = counters.as_flat_dict()
        assert flat.get("driver.shards_resolved", 0) > 0

    def test_balance_counters_surface_in_job_counters(self, grid):
        for balance in BALANCE_STRATEGIES:
            flat = grid[(balance, "serial", "clean")].result.job2.counters.as_flat_dict()
            assert "balance.gini_before_milli" in flat
            assert "balance.planned_makespan_after_milli" in flat
            assert flat["balance.shards"] == (
                len(grid[(balance, "serial", "clean")].result.balance.shards)
            )

    def test_slack_leaves_schedule_untouched(self, grid):
        run = grid[("slack", "serial", "clean")]
        schedule = run.result.schedule
        assert not schedule.shards
        plan = run.result.balance
        assert plan.before == plan.after
        assert plan.moved_trees == 0


class TestGlobalPairrangeEffectiveness:
    def test_pairrange_shards_the_hub(self, grid):
        plan = grid[("pairrange", "serial", "clean")].result.balance
        assert plan.shards, "global cuts never landed inside the hub block"
        assert plan.split_blocks
        covered = {shard.block_uid for shard in plan.shards}
        assert covered == set(plan.split_blocks)

    def test_pairrange_beats_tree_granularity(self, grid):
        """The global enumeration must beat the deprecated whole-tree
        variant decisively on the hub workload: pairrange-tree cannot
        split the hub, so its reduce makespan stays hub-bound."""
        def reduce_span(run):
            job2 = run.result.job2
            return job2.end_time - job2.map_phase_end

        tree = reduce_span(grid[("pairrange-tree", "serial", "clean")])
        global_ = reduce_span(grid[("pairrange", "serial", "clean")])
        assert global_ * 1.3 <= tree

    def test_pairrange_improves_planned_skew(self, grid):
        plan = grid[("pairrange", "serial", "clean")].result.balance
        assert plan.after.max < plan.before.max
        assert plan.after.max_over_mean < plan.before.max_over_mean

    def test_pairrange_tree_never_creates_shards(self, grid):
        run = grid[("pairrange-tree", "serial", "clean")]
        assert not run.result.schedule.shards
        assert not run.result.balance.shards

    def test_pairrange_rejects_block_routing(self, skewed_cfg):
        config = skewed_config(matcher=skewed_cfg.matcher, routing="block")
        with pytest.raises(ValueError, match="pairrange"):
            ProgressiveER(config, Cluster(MACHINES), balance="pairrange")


class TestScheduleIntegrity:
    def test_blocksplit_schedule_round_trips_through_json(self, grid):
        schedule = grid[("blocksplit", "serial", "clean")].result.schedule
        clone = schedule_from_dict(schedule_to_dict(schedule))
        assert clone.assignment == schedule.assignment
        assert clone.block_order == schedule.block_order
        assert clone.shards == schedule.shards
        assert clone.sequence_stride == schedule.sequence_stride

    def test_shard_keys_never_collide_with_block_uids(self, grid):
        schedule = grid[("blocksplit", "serial", "clean")].result.schedule
        for key, shard in schedule.shards.items():
            assert SHARD_SEP in key
            assert key not in schedule.tree_of_block
            assert shard.block_uid in schedule.tree_of_block

    def test_blocksplit_rejects_block_routing(self, skewed_cfg, skewed_dataset):
        config = skewed_config(matcher=skewed_cfg.matcher, routing="block")
        with pytest.raises(ValueError, match="blocksplit"):
            ProgressiveER(config, Cluster(MACHINES), balance="blocksplit")

    def test_unknown_strategy_rejected(self, skewed_cfg, skewed_dataset):
        er = ProgressiveER(skewed_cfg, Cluster(MACHINES), balance="bogus")
        with pytest.raises(ValueError, match="bogus"):
            er.run(skewed_dataset)
