"""The batched similarity kernels must be invisible except in wall-clock.

``BatchMatcher`` re-implements ``WeightedMatcher``'s decision, similarity
and cost-factor paths rule-major over whole pair batches.  Nothing here is
allowed to drift: the property suite pins batch ≡ scalar on random matcher
configurations (every comparator, truncation, missing/empty attributes,
cached and uncached) and random entity batches; the ``resolve_block``
differential pins the full driver loop — stats, duplicate callbacks, charge
sequences and stop points — against the scalar reference path; the guard
test proves the hot path never falls back to per-pair ``is_match`` /
``comparison_cost_factor`` calls; and the end-to-end differential pins
found-pair sets and progressive curves across {scalar, batch} × {serial,
process} × {slack, blocksplit}, plus shared-memory vs inline-pickle
transport, on the golden books fixture.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.mechanisms.base as mechanisms_base
from repro.core import books_config
from repro.data import Entity
from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce import CostModel, ParallelExecutor
from repro.mechanisms import SortedNeighborHint, block_sort_key, resolve_block
from repro.similarity import (
    AttributeRule,
    BatchMatcher,
    WeightedMatcher,
    batch_cost_factors,
    batch_is_match,
    batch_similarity,
    books_matcher,
)
from repro.similarity.batch import NUMPY_MIN_PAIRS

ALPHABET = "abcdé日本語🙂 "
_ATTRS = ("title", "venue", "year")
_COMPARATORS = ("edit", "exact", "jaro_winkler", "token_jaccard", "qgram")

rule_strategy = st.tuples(
    st.sampled_from(_ATTRS),
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    st.sampled_from(_COMPARATORS),
    st.sampled_from([None, 4, 12]),
)


@st.composite
def matcher_configs(draw, cache=False):
    raw = draw(st.lists(rule_strategy, min_size=1, max_size=4))
    rules = []
    seen = set()
    for attribute, weight, comparator, max_chars in raw:
        if attribute in seen:
            continue
        seen.add(attribute)
        rules.append(
            AttributeRule(
                attribute, weight=weight, comparator=comparator, max_chars=max_chars
            )
        )
    threshold = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    return WeightedMatcher(rules, threshold, cache=cache)


@st.composite
def entity_batches(draw, min_pairs=0, max_pairs=NUMPY_MIN_PAIRS + 8):
    """A pool of entities (attributes randomly missing/empty) and a pair
    list over them, long enough to cross the numpy-path threshold."""
    pool_size = draw(st.integers(min_value=2, max_value=8))
    entities = []
    for i in range(pool_size):
        attrs = {}
        for attr in _ATTRS:
            value = draw(
                st.one_of(st.none(), st.text(alphabet=ALPHABET, max_size=16))
            )
            if value is not None:
                attrs[attr] = value
        entities.append(Entity(id=i, attrs=attrs))
    # Near-duplicates stress the threshold boundary where the bounded
    # cutoffs and edit floors sit closest to the actual similarities.
    if draw(st.booleans()) and pool_size >= 2:
        twin_attrs = {
            name: (value[:-1] if value else value)
            for name, value in entities[0].attrs.items()
        }
        entities[1] = Entity(id=1, attrs=twin_attrs)
    indices = st.integers(min_value=0, max_value=pool_size - 1)
    pairs = draw(
        st.lists(
            st.tuples(indices, indices), min_size=min_pairs, max_size=max_pairs
        )
    )
    return [(entities[i], entities[j]) for i, j in pairs]


class TestBatchScalarEquivalence:
    @settings(max_examples=150)
    @given(matcher=matcher_configs(), pairs=entity_batches())
    def test_is_match_equals_scalar(self, matcher, pairs):
        scalar = [matcher.is_match(e1, e2) for e1, e2 in pairs]
        assert batch_is_match(matcher, pairs) == scalar

    @settings(max_examples=100)
    @given(matcher=matcher_configs(), pairs=entity_batches())
    def test_is_match_without_numpy_equals_scalar(self, matcher, pairs):
        scalar = [matcher.is_match(e1, e2) for e1, e2 in pairs]
        assert batch_is_match(matcher, pairs, use_numpy=False) == scalar

    @settings(max_examples=100)
    @given(matcher=matcher_configs(cache=True), pairs=entity_batches())
    def test_cached_matcher_decisions_equal_scalar(self, matcher, pairs):
        # The batch path must populate and consult the pair cache exactly
        # like the scalar one; interleave to exercise warm-cache hits.
        assert batch_is_match(matcher, pairs) == [
            matcher.is_match(e1, e2) for e1, e2 in pairs
        ]

    @settings(max_examples=150)
    @given(matcher=matcher_configs(), pairs=entity_batches())
    def test_similarity_equals_scalar(self, matcher, pairs):
        scalar = [matcher.similarity(e1, e2) for e1, e2 in pairs]
        assert batch_similarity(matcher.rules, pairs) == scalar

    @settings(max_examples=100)
    @given(matcher=matcher_configs(), pairs=entity_batches())
    def test_cost_factors_equal_scalar(self, matcher, pairs):
        scalar = [matcher.comparison_cost_factor(e1, e2) for e1, e2 in pairs]
        assert batch_cost_factors(matcher, pairs) == scalar

    def test_empty_batch(self):
        matcher = books_matcher()
        assert batch_is_match(matcher, []) == []
        assert batch_similarity(matcher.rules, []) == []
        assert batch_cost_factors(matcher, []) == []


# ---------------------------------------------------------------------------
# resolve_block: the batched driver loop replays the scalar sequence
# ---------------------------------------------------------------------------


def _resolve(entities, matcher, batch_pairs, *, window=8, stop=None):
    charged = []
    dups = []
    resolved = []

    def charge(cost):
        charged.append(cost)
        return cost

    stats = resolve_block(
        entities,
        SortedNeighborHint(),
        window=window,
        sort_key=lambda e: block_sort_key(e, "title"),
        matcher=matcher,
        cost_model=CostModel(),
        charge=charge,
        on_duplicate=lambda a, b: dups.append((min(a.id, b.id), max(a.id, b.id))),
        on_resolved=lambda a, b, d: resolved.append(
            (min(a.id, b.id), max(a.id, b.id), d)
        ),
        stop=stop,
        batch_pairs=batch_pairs,
    )
    return stats, dups, resolved, charged


class TestResolveBlockBatching:
    def test_batched_resolution_replays_scalar_sequence(self, books_small):
        entities = books_small.entities[:120]
        scalar = _resolve(entities, books_matcher(), 1)
        for width in (2, 64, 10_000):
            batched = _resolve(entities, books_matcher(), width)
            assert batched == scalar
        assert scalar[0].comparisons > 0
        assert scalar[1]  # found some duplicates, or the test is vacuous

    def test_stop_condition_fires_at_the_same_pair(self, books_small):
        from repro.mechanisms import DistinctBudget

        entities = books_small.entities[:120]
        scalar = _resolve(entities, books_matcher(), 1, stop=DistinctBudget(25))
        batched = _resolve(entities, books_matcher(), 64, stop=DistinctBudget(25))
        assert batched == scalar
        assert not scalar[0].exhausted

    def test_hot_path_never_calls_scalar_matcher(self, books_small, monkeypatch):
        # The CI guard: reintroducing per-pair is_match/comparison_cost_factor
        # calls on the resolve hot path must fail loudly.
        entities = books_small.entities[:120]
        expected = _resolve(entities, books_matcher(), 64)

        def _banned(self, *args):
            raise AssertionError(
                "resolve_block called the scalar per-pair matcher API"
            )

        monkeypatch.setattr(WeightedMatcher, "is_match", _banned)
        monkeypatch.setattr(WeightedMatcher, "comparison_cost_factor", _banned)
        guarded = _resolve(entities, books_matcher(), 64)
        assert guarded == expected
        assert guarded[0].comparisons > 0


# ---------------------------------------------------------------------------
# End-to-end differential: {scalar, batch} × {serial, process} × balance
# ---------------------------------------------------------------------------


def _fingerprint(run):
    result = run.result
    return (
        result.total_time,
        tuple(result.duplicate_events),
        tuple(run.curve.times),
        tuple(run.curve.recalls),
    )


class TestEndToEndDifferential:
    @pytest.mark.parametrize("balance", ["slack", "blocksplit"])
    def test_scalar_batch_serial_process_identical(
        self, books_small, balance, monkeypatch
    ):
        config = books_config()

        def run(width, backend):
            monkeypatch.setattr(mechanisms_base, "DEFAULT_BATCH_PAIRS", width)
            spec = RunSpec(
                books_small, config, machines=4,
                backend=backend, workers=2, balance=balance,
            )
            return _fingerprint(ExperimentRun(spec).run())

        reference = run(1, "serial")
        assert run(64, "serial") == reference
        assert run(64, "process") == reference
        assert run(1, "process") == reference

    def test_shared_memory_parity_on_books(self, books_small):
        config = books_config()

        def run(use_shared_memory):
            executor = ParallelExecutor(
                2, serial_floor=0.0, use_shared_memory=use_shared_memory
            )
            spec = RunSpec(books_small, config, machines=4, executor=executor)
            try:
                return _fingerprint(ExperimentRun(spec).run())
            finally:
                executor.close()

        assert run(True) == run(False)
