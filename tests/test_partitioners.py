"""Edge cases for the Job-2 partitioners.

Both partitioners route by the *schedule*, not by hashing, so the
interesting failures are schedule mismatches: a tree the schedule never
assigned, and sequence values that land outside the task range (which the
engine — not the partitioner — rejects, mirroring Hadoop's partition
validation).
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.driver import SchedulePartitioner, SequencePartitioner
from repro.mapreduce import Cluster, MapReduceJob, Mapper, Reducer


def _schedule(**attrs):
    """The minimal schedule surface each partitioner reads."""
    return SimpleNamespace(**attrs)


class _EmitKey(Mapper):
    def map(self, record, context):
        context.emit(record, record)


class _Collect(Reducer):
    def reduce(self, key, values, context):
        context.write(key)


class TestSchedulePartitioner:
    def test_routes_by_assignment(self):
        partitioner = SchedulePartitioner(_schedule(assignment={"t0": 2, "t1": 0}))
        assert partitioner.partition("t0", 4) == 2
        assert partitioner.partition("t1", 4) == 0

    def test_unknown_tree_is_rejected(self):
        partitioner = SchedulePartitioner(_schedule(assignment={"t0": 0}))
        with pytest.raises(ValueError, match="no reduce-task assignment"):
            partitioner.partition("never-scheduled", 4)

    def test_out_of_range_assignment_rejected_by_engine(self):
        # A schedule built for more tasks than the job runs with: the
        # partitioner faithfully returns the stale index and the engine's
        # range check refuses it.
        partitioner = SchedulePartitioner(_schedule(assignment={"t0": 7}))
        job = MapReduceJob(_EmitKey, _Collect, partitioner=partitioner)
        with pytest.raises(ValueError, match="valid range"):
            Cluster(1).run_job(job, ["t0"], num_reduce_tasks=2)


class TestSequencePartitioner:
    def test_routes_by_stride(self):
        partitioner = SequencePartitioner(_schedule(sequence_stride=10))
        assert partitioner.partition(0, 3) == 0
        assert partitioner.partition(9, 3) == 0
        assert partitioner.partition(10, 3) == 1
        assert partitioner.partition(25, 3) == 2

    def test_single_reduce_task_gets_everything(self):
        partitioner = SequencePartitioner(_schedule(sequence_stride=100))
        assert all(partitioner.partition(sq, 1) == 0 for sq in range(100))

    def test_sequence_beyond_stride_range_rejected_by_engine(self):
        partitioner = SequencePartitioner(_schedule(sequence_stride=2))
        job = MapReduceJob(_EmitKey, _Collect, partitioner=partitioner)
        # SQ 5 // stride 2 -> task 2, but only 2 reduce tasks exist.
        with pytest.raises(ValueError, match="valid range"):
            Cluster(1).run_job(job, [5], num_reduce_tasks=2)

    def test_in_range_sequences_resolve_in_key_order(self):
        partitioner = SequencePartitioner(_schedule(sequence_stride=2))
        job = MapReduceJob(_EmitKey, _Collect, partitioner=partitioner)
        result = Cluster(1).run_job(job, [3, 0, 2, 1], num_reduce_tasks=2)
        assert list(result.reduce_tasks[0].output) == [0, 1]
        assert list(result.reduce_tasks[1].output) == [2, 3]
