"""Unit tests for the ASCII reporting helpers and the experiment harness."""

import pytest

from repro.baselines import BasicConfig
from repro.blocking import citeseer_scheme
from repro.evaluation import (
    ExperimentRun,
    RunSpec,
    format_curves,
    format_final_summary,
    format_table,
    sample_times,
)
from repro.mechanisms import SortedNeighborHint


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title(self):
        text = format_table(["h"], [["x"]], title="Table III")
        assert text.splitlines()[0] == "Table III"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestSampleTimes:
    def test_even_spacing(self):
        times = sample_times(100.0, points=4)
        assert times == [25.0, 50.0, 75.0, 100.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_times(10.0, points=0)


class TestHarness:
    def test_progressive_run_produces_labeled_curve(
        self, citeseer_small, citeseer_cfg
    ):
        run = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2)).run()
        assert run.label == "ours[ours]"
        assert run.final_recall > 0.5
        assert run.total_time > 0

    def test_basic_run_label_includes_threshold(
        self, citeseer_small, shared_citeseer_matcher
    ):
        config = BasicConfig(
            scheme=citeseer_scheme(),
            matcher=shared_citeseer_matcher,
            mechanism=SortedNeighborHint(),
            window=15,
            popcorn_threshold=0.1,
        )
        run = ExperimentRun(RunSpec(citeseer_small, config, machines=2)).run()
        assert run.label == "basic[0.1]"

    def test_format_curves_and_summary(self, citeseer_small, citeseer_cfg):
        run = ExperimentRun(
            RunSpec(citeseer_small, citeseer_cfg, machines=2, label="ours")
        ).run()
        times = sample_times(run.total_time, points=3)
        curves_text = format_curves([run], times, title="Fig")
        assert "ours" in curves_text
        assert len(curves_text.splitlines()) == 6  # title + hdr + rule + 3
        summary = format_final_summary([run])
        assert "ours" in summary
