"""White-box tests of schedule-generation internals, including the paper's
Figure 5 bucket example."""

import pytest

from repro.blocking import Block
from repro.core.config import citeseer_config
from repro.core.estimation import BlockEstimate, EstimationModel, UniformEstimator
from repro.core.schedule import (
    _bucket_widths,
    _bucketize,
    _subtree_vc,
    _utility_sorted,
)
from repro.mapreduce import CostModel


def _block(uid_key, size=10):
    return Block(family="X", level=1, key=uid_key, entity_ids=(), size_override=size)


def _model_with_costs(blocks, costs, utils=None):
    """An EstimationModel with hand-planted estimates."""
    config = citeseer_config()
    model = EstimationModel(config, CostModel(), UniformEstimator(0.1), 100)
    for i, block in enumerate(blocks):
        util = utils[i] if utils is not None else float(len(blocks) - i)
        model.estimates[block.uid] = BlockEstimate(
            cov=10.0, d=1.0, frac=1.0, th=5, window=15,
            dup=util * costs[i], cost=costs[i], util=util,
        )
    return model


class TestFigureFiveExample:
    def test_first_bucket_holds_first_six_blocks(self):
        """Figure 5: costs [5, 5, 4, 6, 4, 6, ...], C = {10, 20, 30},
        r = 3 — 'the first six blocks from the left constitute the first
        bucket of SL because they can be resolved in the first c1 * r
        units of cost' (5+5+4+6+4+6 = 30 = c1 * r)."""
        costs = [5.0, 5.0, 4.0, 6.0, 4.0, 6.0, 8.0, 7.0, 9.0]
        blocks = [_block(f"b{i}") for i in range(len(costs))]
        model = _model_with_costs(blocks, costs)
        sl = _utility_sorted(blocks, model.estimates)
        assert [b.uid for b in sl] == [b.uid for b in blocks]  # planted order
        buckets, vector, weights = _bucketize(
            sl, model, [10.0, 20.0, 30.0], [1.0, 0.6, 0.3], 3, citeseer_config()
        )
        for i in range(6):
            assert buckets[blocks[i].uid] == 0
        assert buckets[blocks[6].uid] == 1

    def test_bucket_widths(self):
        assert _bucket_widths([10.0, 20.0, 35.0]) == [10.0, 10.0, 15.0]


class TestBucketize:
    def test_auto_extension_beyond_vector(self):
        costs = [50.0, 50.0, 50.0]
        blocks = [_block(f"x{i}") for i in range(3)]
        model = _model_with_costs(blocks, costs)
        sl = _utility_sorted(blocks, model.estimates)
        buckets, vector, weights = _bucketize(
            sl, model, [10.0, 20.0], [1.0, 0.5], 1, citeseer_config()
        )
        # Total cost 150 >> c2 * r = 20: the vector must have been extended.
        assert len(vector) > 2
        assert len(weights) == len(vector)
        assert vector == sorted(vector)
        # Extension keeps weights non-increasing.
        assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))

    def test_single_cheap_block_in_first_bucket(self):
        blocks = [_block("only")]
        model = _model_with_costs(blocks, [1.0])
        buckets, _, _ = _bucketize(
            blocks, model, [10.0], [1.0], 2, citeseer_config()
        )
        assert buckets["X1:only"] == 0


class TestSubtreeVc:
    def test_vc_sums_subtree_costs_per_bucket(self):
        root = _block("r")
        child = Block(family="X", level=2, key="rc", entity_ids=(), size_override=4)
        root.add_child(child)
        model = _model_with_costs([root, child], [6.0, 4.0], utils=[1.0, 2.0])
        buckets = {"X1:r": 1, "X2:rc": 0}
        vc = _subtree_vc(root, buckets, model, 3)
        assert vc == [4.0, 6.0, 0.0]


class TestUtilitySort:
    def test_ties_break_by_uid(self):
        blocks = [_block("bb"), _block("aa")]
        model = _model_with_costs(blocks, [1.0, 1.0], utils=[2.0, 2.0])
        ranked = _utility_sorted(blocks, model.estimates)
        assert [b.uid for b in ranked] == ["X1:aa", "X1:bb"]
