"""Tests for the naive per-block routing mode (footnote 5's alternative)."""

import pytest

from repro.core import ProgressiveER, citeseer_config
from repro.mapreduce import Cluster


@pytest.fixture(scope="module")
def routing_runs(request):
    dataset = request.getfixturevalue("citeseer_small")
    matcher = request.getfixturevalue("shared_citeseer_matcher")
    runs = {}
    for routing in ("tree", "block"):
        config = citeseer_config(matcher=matcher, routing=routing)
        runs[routing] = ProgressiveER(config, Cluster(3)).run(dataset)
    return dataset, runs


class TestRoutingEquivalence:
    def test_identical_duplicate_sets(self, routing_runs):
        _, runs = routing_runs
        assert runs["tree"].found_pairs == runs["block"].found_pairs

    def test_block_routing_ships_more_records(self, routing_runs):
        """The whole point of footnote 5: per-tree emission cuts shuffle
        volume versus per-block emission."""
        _, runs = routing_runs
        tree_emitted = runs["tree"].job2.counters.get("engine", "map_emitted")
        block_emitted = runs["block"].job2.counters.get("engine", "map_emitted")
        assert block_emitted > tree_emitted

    def test_block_routing_respects_block_schedule_order(self, routing_runs):
        """Groups arrive at each reduce task in SQ order, which IS the
        block schedule — verify via the schedule's own bookkeeping."""
        _, runs = routing_runs
        schedule = runs["block"].schedule
        for task, order in enumerate(schedule.block_order):
            sqs = [schedule.sequence[uid] for uid in order]
            assert sqs == sorted(sqs)

    def test_same_reduce_task_placement(self, routing_runs):
        """A block's SQ routes to the same task its tree was assigned to."""
        _, runs = routing_runs
        schedule = runs["block"].schedule
        for uid, tree_uid in schedule.tree_of_block.items():
            task = schedule.sequence[uid] // schedule.sequence_stride
            assert task == schedule.assignment[tree_uid]

    def test_config_validates_routing(self):
        with pytest.raises(ValueError):
            citeseer_config(routing="carrier-pigeon")
