"""Property-based tests for the fault subsystem (hypothesis).

Three properties pin the determinism contract of
:mod:`repro.mapreduce.faults`:

1. **Backend parity** — for *random* fault plans, the serial and process
   backends produce bit-identical results, traces and counters (fault
   decisions replay from the seeded plan in the driver, never from
   wall-clock time).
2. **Monotonicity** — on a single wave of uniform slots (no stragglers,
   no speculation, no blacklisting), makespan is monotone non-decreasing
   in the fault rate: the failure-decision key includes the task's prior
   failure count, so failure sets are nested as the rate grows.
3. **Zero-rate identity** — any inert plan (rate 0, no slowdowns, no
   speculation) schedules byte-identically to having no plan at all.

The hypothesis profile is registered in ``conftest.py``; CI runs with
``HYPOTHESIS_PROFILE=ci`` (derandomized) so the suite cannot flake.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import (
    Cluster,
    FaultPlan,
    FaultScheduler,
    JobAbortedError,
    ParallelExecutor,
    RetryPolicy,
    SlotPool,
    SpeculationConfig,
)
from repro.observability import Tracer

from test_executor_parity import _LINES, _wordcount_job, job_fingerprint

#: Generous retry budget: the properties are about timelines, not aborts.
_PATIENT = RetryPolicy(max_attempts=1000)

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**32),
    fault_rate=st.floats(min_value=0.0, max_value=0.4),
    straggler_rate=st.floats(min_value=0.0, max_value=0.5),
    straggler_factor=st.floats(min_value=1.0, max_value=4.0),
    blacklist_after=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    retry=st.builds(
        RetryPolicy,
        max_attempts=st.just(1000),
        backoff_base=st.floats(min_value=0.0, max_value=2.0),
        backoff_factor=st.floats(min_value=1.0, max_value=3.0),
    ),
    speculation=st.builds(
        SpeculationConfig,
        enabled=st.booleans(),
        threshold=st.floats(min_value=1.1, max_value=3.0),
    ),
)

costs_lists = st.lists(
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    min_size=1,
    max_size=12,
)


class TestSchedulerProperties:
    @given(plan=fault_plans, costs=costs_lists)
    def test_scheduler_is_deterministic(self, plan, costs):
        """Two simulations of the same plan agree attempt for attempt."""
        a = FaultScheduler(plan, 3, 0.0, job="j", phase="map").run(costs)
        b = FaultScheduler(plan, 3, 0.0, job="j", phase="map").run(costs)
        assert a == b

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        costs=costs_lists,
        low=st.floats(min_value=0.0, max_value=0.5),
        high=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_makespan_monotone_in_fault_rate_single_wave(
        self, seed, costs, low, high
    ):
        """Single wave, uniform slots, no speculation: a higher fault rate
        can only push the makespan out (failure sets are nested)."""
        low, high = min(low, high), max(low, high)
        num_slots = len(costs)  # one slot per task: a single wave
        ends = []
        for rate in (low, high):
            plan = FaultPlan(seed=seed, fault_rate=rate, retry=_PATIENT)
            schedules = FaultScheduler(
                plan, num_slots, 0.0, job="j", phase="map"
            ).run(costs)
            ends.append(max((s.winning.end for s in schedules), default=0.0))
        assert ends[0] <= ends[1] + 1e-9

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        costs=costs_lists,
        slots=st.integers(min_value=1, max_value=5),
        ready=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_inert_plan_equals_slot_pool(self, seed, costs, slots, ready):
        """Zero-rate plans reproduce SlotPool's wave placement exactly."""
        plan = FaultPlan(seed=seed)  # seed varies, nothing else: inert
        schedules = FaultScheduler(
            plan, slots, ready, job="j", phase="map"
        ).run(costs)
        pool = SlotPool(slots, ready)
        for task_id, cost in enumerate(costs):
            start, end, slot = pool.schedule(cost)
            win = schedules[task_id].winning
            assert (win.start, win.end, win.slot) == (start, end, slot)
            assert len(schedules[task_id].attempts) == 1


class TestEngineProperties:
    @settings(max_examples=8, deadline=None)
    @given(plan=fault_plans)
    def test_serial_process_parity_under_random_plans(self, plan):
        """The acceptance criterion: any fixed fault seed yields
        bit-identical results, traces and counters on both backends."""
        outcomes = []
        for executor in (None, ParallelExecutor(2)):
            tracer = Tracer()
            cluster = Cluster(
                2, executor=executor, tracer=tracer, faults=plan
            )
            try:
                result = cluster.run_job(_wordcount_job(), _LINES)
            except JobAbortedError as err:
                outcomes.append(("aborted", err.phase, err.task_id, err.attempts))
            else:
                outcomes.append(
                    (job_fingerprint(result), tracer.span_set())
                )
        assert outcomes[0] == outcomes[1]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_zero_rate_plan_is_byte_identical(self, seed):
        """--fault-rate 0 reproduces today's timelines exactly, whatever
        the seed."""
        base = Cluster(2).run_job(_wordcount_job(), _LINES)
        zero = Cluster(2, faults=FaultPlan(seed=seed)).run_job(
            _wordcount_job(), _LINES
        )
        assert job_fingerprint(base) == job_fingerprint(zero)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        rate=st.floats(min_value=0.0, max_value=0.4),
    )
    def test_faulty_output_equals_clean_output(self, seed, rate):
        """Fault injection perturbs timing only — never what is computed."""
        plan = FaultPlan(seed=seed, fault_rate=rate, retry=_PATIENT)
        base = Cluster(2).run_job(_wordcount_job(), _LINES)
        faulty = Cluster(2, faults=plan).run_job(_wordcount_job(), _LINES)
        assert faulty.output == base.output
        assert faulty.end_time >= base.end_time - 1e-9
