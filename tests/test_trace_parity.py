"""Tracing is a pure observer: attaching a Tracer/MetricsRegistry must not
perturb virtual time.

The contract (see ``repro.observability.tracing``): events, counters,
output files and recall curves are bit-for-bit identical with and without
observability attached, on every execution backend — and the serial and
process backends emit the *same set* of spans, because in-task span
fragments travel inside the task payloads and are rebased by the engine.

Workloads mirror ``tests/test_executor_parity.py``: a FIG8-scale
progressive run and the Basic baseline on citeseer data.
"""

from __future__ import annotations

import pytest

from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce import (
    Cluster,
    FaultPlan,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    SpeculationConfig,
)
from repro.observability import MetricsRegistry, Tracer

from test_executor_parity import (
    _LINES,
    WORKERS,
    _wordcount_job,
    job_fingerprint,
    run_fingerprint,
)


def _run(dataset, config, *, executor, tracer=None, metrics=None, machines=10):
    spec = RunSpec(
        dataset,
        config,
        machines=machines,
        executor=executor,
        tracer=tracer,
        metrics=metrics,
    )
    return ExperimentRun(spec).run()


class TestTracingDoesNotPerturbVirtualTime:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_progressive_traced_equals_untraced(
        self, citeseer_small, citeseer_cfg, backend
    ):
        def executor():
            return (
                SerialExecutor() if backend == "serial" else ParallelExecutor(WORKERS)
            )

        plain = _run(citeseer_small, citeseer_cfg, executor=executor())
        traced = _run(
            citeseer_small,
            citeseer_cfg,
            executor=executor(),
            tracer=Tracer(),
            metrics=MetricsRegistry(),
        )
        assert run_fingerprint(plain) == run_fingerprint(traced)
        assert len(traced.tracer.spans) > 0
        assert len(traced.metrics) > 0

    def test_basic_traced_equals_untraced(self, citeseer_small, basic_cfg):
        plain = _run(citeseer_small, basic_cfg, executor=SerialExecutor())
        traced = _run(
            citeseer_small,
            basic_cfg,
            executor=SerialExecutor(),
            tracer=Tracer(),
            metrics=MetricsRegistry(),
        )
        assert run_fingerprint(plain) == run_fingerprint(traced)
        assert len(traced.tracer.spans) > 0


class TestCrossBackendTraceParity:
    def test_progressive_span_sets_identical(self, citeseer_small, citeseer_cfg):
        serial = _run(
            citeseer_small, citeseer_cfg, executor=SerialExecutor(), tracer=Tracer()
        )
        process = _run(
            citeseer_small,
            citeseer_cfg,
            executor=ParallelExecutor(WORKERS),
            tracer=Tracer(),
        )
        assert serial.tracer.span_set() == process.tracer.span_set()
        assert len(serial.tracer.spans) == len(process.tracer.spans)
        assert set(serial.tracer.instants) == set(process.tracer.instants)

    def test_basic_span_sets_identical(self, citeseer_small, basic_cfg):
        serial = _run(
            citeseer_small, basic_cfg, executor=SerialExecutor(), tracer=Tracer()
        )
        process = _run(
            citeseer_small,
            basic_cfg,
            executor=ParallelExecutor(WORKERS),
            tracer=Tracer(),
        )
        assert serial.tracer.span_set() == process.tracer.span_set()


class TestFaultTraceParity:
    """Fault-injected traces obey the same contracts as clean ones: the
    tracer never perturbs virtual time, both backends emit identical span
    sets, and an inert plan's trace is byte-identical to no plan."""

    PLAN = FaultPlan(
        seed=11,
        fault_rate=0.25,
        slot_slowdowns={1: 3.0},
        retry=RetryPolicy(max_attempts=50, backoff_base=0.25),
        speculation=SpeculationConfig(enabled=True, threshold=1.5),
    )

    def _spans(self, faults, executor=None):
        tracer = Tracer()
        result = Cluster(
            2, tracer=tracer, faults=faults, executor=executor
        ).run_job(_wordcount_job(), _LINES)
        return tracer, result

    def test_fault_span_sets_identical_across_backends(self):
        serial, _ = self._spans(self.PLAN)
        process, _ = self._spans(self.PLAN, ParallelExecutor(WORKERS))
        assert serial.span_set() == process.span_set()
        assert set(serial.instants) == set(process.instants)

    def test_inert_plan_trace_is_byte_identical(self):
        clean, _ = self._spans(None)
        inert, _ = self._spans(FaultPlan(seed=123))
        assert clean.span_set() == inert.span_set()

    def test_tracing_does_not_perturb_faulty_virtual_time(self):
        _, traced = self._spans(self.PLAN)
        untraced = Cluster(2, faults=self.PLAN).run_job(
            _wordcount_job(), _LINES
        )
        assert job_fingerprint(traced) == job_fingerprint(untraced)

    def test_fault_attempt_spans_annotated(self):
        tracer, result = self._spans(self.PLAN)
        attempts = [s for s in tracer.spans if s.category == "attempt"]
        assert attempts, "the pinned plan must produce extra attempts"
        for span in attempts:
            assert span.arg("failed") or span.arg("killed")
        flat = result.counters.as_flat_dict()
        failed_spans = sum(1 for s in attempts if s.arg("failed"))
        killed_spans = sum(1 for s in attempts if s.arg("killed"))
        assert failed_spans == flat.get("fault.map_failed_attempts", 0) + flat.get(
            "fault.reduce_failed_attempts", 0
        )
        assert killed_spans == flat.get("fault.map_killed_attempts", 0) + flat.get(
            "fault.reduce_killed_attempts", 0
        )

    def test_speculative_winner_flagged_on_task_span(self):
        plan = FaultPlan(
            slot_slowdowns={0: 10.0},
            speculation=SpeculationConfig(enabled=True, threshold=1.5),
        )
        tracer, result = self._spans(plan)
        spec_tasks = [
            s
            for s in tracer.spans
            if s.category == "task" and s.arg("speculative")
        ]
        spec_results = [
            t
            for t in result.map_tasks + result.reduce_tasks
            if t.speculative
        ]
        assert len(spec_tasks) == len(spec_results) > 0


class TestSpanCoverage:
    """The recorded hierarchy covers both jobs of the progressive pipeline."""

    @pytest.fixture(scope="class")
    def traced(self, citeseer_small, shared_citeseer_matcher):
        from repro.core import citeseer_config

        tracer = Tracer()
        run = _run(
            citeseer_small,
            citeseer_config(matcher=shared_citeseer_matcher),
            executor=SerialExecutor(),
            tracer=tracer,
            machines=3,
        )
        return run, tracer

    def test_both_jobs_present(self, traced):
        _, tracer = traced
        jobs = {job for _, job in tracer.jobs()}
        assert jobs == {"progressive-blocking-statistics", "progressive-resolution"}

    def test_every_clean_run_category_recorded(self, traced):
        _, tracer = traced
        categories = {s.category for s in tracer.spans}
        assert {"job", "phase", "task", "block", "setup"} <= categories

    def test_failed_attempts_get_attempt_spans(self):
        from repro.mapreduce import Cluster, MapReduceJob, Mapper, Reducer

        class Identity(Mapper):
            def map(self, record, context):
                context.emit(record, 1)

        class Count(Reducer):
            def reduce(self, key, values, context):
                context.charge(1.0)
                context.write((key, len(values)))

        tracer = Tracer()
        Cluster(1, tracer=tracer).run_job(
            MapReduceJob(Identity, Count, name="retry-job"),
            ["a", "b"],
            map_failures={0: 2},
        )
        attempts = [s for s in tracer.spans if s.category == "attempt"]
        assert len(attempts) == 2
        assert all(s.arg("failed") for s in attempts)
        # Failed attempts precede the successful task span on the same slot.
        task = next(
            s for s in tracer.spans if s.category == "task" and s.arg("task") == 0
            and s.arg("phase") == "map"
        )
        assert all(a.end <= task.start + 1e-9 for a in attempts)

    def test_schedule_generation_charged_in_map_setup(self, traced):
        run, tracer = traced
        label = run.label
        setups = tracer.spans_of(label, "progressive-resolution", category="setup")
        assert setups, "expected schedule-generation setup spans"
        generation = run.result.schedule.generation_cost
        for span in setups:
            assert span.name == "schedule-generation"
            assert span.duration == pytest.approx(generation)

    def test_block_spans_report_duplicates(self, traced):
        run, tracer = traced
        blocks = tracer.spans_of(run.label, "progressive-resolution", category="block")
        assert blocks
        assert sum(s.arg("duplicates", 0) for s in blocks) == len(run.found_pairs)

    def test_spans_lie_inside_their_job(self, traced):
        run, tracer = traced
        for run_label, job in tracer.jobs():
            spans = tracer.spans_of(run_label, job)
            job_span = next(s for s in spans if s.category == "job")
            for span in spans:
                assert span.start >= job_span.start - 1e-9
                assert span.end <= job_span.end + 1e-9
