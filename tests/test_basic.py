"""Unit and end-to-end tests for the Basic baseline (Section II-C)."""

import pytest

from repro.baselines import BasicConfig, BasicER
from repro.baselines.basic import _is_smallest_common_block
from repro.blocking import citeseer_scheme
from repro.mapreduce import Cluster
from repro.evaluation import recall_curve
from repro.mechanisms import SortedNeighborHint


class TestSmallestCommonBlockRule:
    def test_resolved_in_single_common_block(self):
        sig1 = ("ab", None, "xy")
        sig2 = ("ab", "cd", "zz")
        # Only position 0 is common.
        assert _is_smallest_common_block(sig1, sig2, 0)
        assert not _is_smallest_common_block(sig1, sig2, 2)

    def test_smallest_key_wins(self):
        sig = ("zz", "aa", "mm")
        # All three positions common; "aa" (position 1) is smallest.
        assert _is_smallest_common_block(sig, sig, 1)
        assert not _is_smallest_common_block(sig, sig, 0)
        assert not _is_smallest_common_block(sig, sig, 2)

    def test_tie_broken_by_function_position(self):
        sig = ("aa", "aa", "bb")
        assert _is_smallest_common_block(sig, sig, 0)
        assert not _is_smallest_common_block(sig, sig, 1)

    def test_no_common_block(self):
        assert not _is_smallest_common_block(("a", None), ("b", None), 0)

    def test_none_keys_are_not_common(self):
        assert not _is_smallest_common_block((None,), (None,), 0)


@pytest.fixture(scope="module")
def basic_runs(request):
    dataset = request.getfixturevalue("citeseer_small")
    matcher = request.getfixturevalue("shared_citeseer_matcher")
    runs = {}
    for threshold in (None, 0.1, 0.01):
        config = BasicConfig(
            scheme=citeseer_scheme(),
            matcher=matcher,
            mechanism=SortedNeighborHint(),
            window=15,
            popcorn_threshold=threshold,
        )
        runs[threshold] = BasicER(config, Cluster(3)).run(dataset)
    return dataset, runs


class TestBasicEndToEnd:
    def test_basic_f_finds_duplicates(self, basic_runs):
        dataset, runs = basic_runs
        recall = len(runs[None].found_pairs & dataset.true_pairs) / dataset.num_true_pairs
        assert recall > 0.6

    def test_popcorn_trades_recall_for_time(self, basic_runs):
        dataset, runs = basic_runs
        # Table III shape: more aggressive threshold => lower final recall
        # AND lower total time.
        recall = {
            t: len(r.found_pairs & dataset.true_pairs) for t, r in runs.items()
        }
        time = {t: r.total_time for t, r in runs.items()}
        assert recall[0.1] <= recall[0.01] <= recall[None]
        assert time[0.1] <= time[0.01] <= time[None]

    def test_no_pair_reported_twice(self, basic_runs):
        _, runs = basic_runs
        events = runs[None].duplicate_events
        pairs = [e.payload for e in events]
        assert len(pairs) == len(set(pairs))

    def test_events_inside_job_window(self, basic_runs):
        _, runs = basic_runs
        result = runs[None]
        for event in result.duplicate_events:
            assert result.job.map_phase_end <= event.time <= result.job.end_time

    def test_high_precision(self, basic_runs):
        dataset, runs = basic_runs
        found = runs[None].found_pairs
        assert len(found & dataset.true_pairs) / len(found) > 0.9

    def test_smaller_window_is_cheaper(self, citeseer_small, shared_citeseer_matcher):
        results = {}
        for window in (5, 15):
            config = BasicConfig(
                scheme=citeseer_scheme(),
                matcher=shared_citeseer_matcher,
                mechanism=SortedNeighborHint(),
                window=window,
            )
            results[window] = BasicER(config, Cluster(3)).run(citeseer_small)
        assert results[5].total_time < results[15].total_time
        assert len(results[5].found_pairs) <= len(results[15].found_pairs)
