"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.data import Dataset


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "ds.csv"
        code = main(
            ["generate", "--family", "citeseer", "--size", "120", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        loaded = Dataset.from_csv(out)
        assert len(loaded) == 120
        assert loaded.has_ground_truth
        assert "wrote 120" in capsys.readouterr().out

    def test_books_family(self, tmp_path):
        out = tmp_path / "books.csv"
        assert main(["generate", "--family", "books", "--size", "80", "--out", str(out)]) == 0
        assert len(Dataset.from_csv(out)) == 80


class TestRun:
    def test_ours_on_generated_dataset(self, capsys):
        code = main(
            ["run", "--family", "citeseer", "--size", "300", "--machines", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ours" in out
        assert "final recall" in out

    def test_basic_with_threshold(self, capsys):
        code = main(
            [
                "run", "--family", "citeseer", "--size", "300",
                "--machines", "2", "--approach", "basic", "--threshold", "0.05",
            ]
        )
        assert code == 0
        assert "basic[0.05]" in capsys.readouterr().out

    def test_run_from_csv(self, tmp_path, capsys):
        out = tmp_path / "ds.csv"
        main(["generate", "--family", "citeseer", "--size", "250", "--out", str(out)])
        code = main(
            ["run", "--dataset", str(out), "--family", "citeseer", "--machines", "2"]
        )
        assert code == 0

    @pytest.mark.parametrize("approach", ["nosplit", "lpt"])
    def test_scheduler_variants(self, approach, capsys):
        code = main(
            [
                "run", "--family", "citeseer", "--size", "300",
                "--machines", "2", "--approach", approach,
            ]
        )
        assert code == 0


class TestCompare:
    def test_table_output(self, capsys):
        code = main(
            [
                "compare", "--family", "citeseer", "--size", "300",
                "--machines", "2", "--threshold", "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ours" in out
        assert "basic[F]" in out
        assert "basic[0.05]" in out

    def test_chart_output(self, capsys):
        code = main(
            [
                "compare", "--family", "citeseer", "--size", "300",
                "--machines", "2", "--chart",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "o=ours" in out
        assert "recall vs time" in out


class TestCalibrate:
    def test_fit_and_report(self, tmp_path, capsys):
        out = tmp_path / "calibration.json"
        code = main(
            [
                "calibrate", "--family", "citeseer", "--size", "200",
                "--machines", "2", "--backend", "serial", "--out", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "cost-model calibration" in text
        assert "median APE" in text
        report = json.loads(out.read_text())
        assert report["format"] == 1
        assert report["backend"] == "serial"
        assert report["samples_used"] > 0
        assert report["workload"]["family"] == "citeseer"
        assert all(v >= 0.0 for v in report["seconds_per_unit"].values())


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            main(["generate"])
