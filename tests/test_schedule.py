"""Unit tests for progressive schedule generation (Figure 6)."""

import pytest

from repro.blocking import citeseer_scheme
from repro.core.config import citeseer_config
from repro.core.estimation import EstimationModel, UniformEstimator
from repro.core.schedule import ProgressiveSchedule, generate_schedule
from repro.core.statistics import run_statistics_job
from repro.mapreduce import Cluster, CostModel


@pytest.fixture(scope="module")
def schedule_bundle(request):
    dataset = request.getfixturevalue("citeseer_small")
    scheme = citeseer_scheme()
    _, stats, _ = run_statistics_job(Cluster(2), dataset, scheme)
    return dataset, scheme, stats


def _make_schedule(dataset, stats, num_tasks=6, strategy="ours", probability=0.1):
    config = citeseer_config()
    model = EstimationModel(
        config, CostModel(), UniformEstimator(probability), len(dataset)
    )
    return generate_schedule(stats, model, config, num_tasks, strategy=strategy)


@pytest.fixture(scope="module")
def ours_schedule(schedule_bundle):
    dataset, _, stats = schedule_bundle
    return _make_schedule(dataset, stats)


class TestScheduleInvariants:
    def test_every_tree_assigned_exactly_once(self, ours_schedule):
        sched = ours_schedule
        assert set(sched.assignment) == set(sched.trees)
        assert all(0 <= t < sched.num_tasks for t in sched.assignment.values())

    def test_every_block_scheduled_exactly_once(self, ours_schedule):
        sched = ours_schedule
        scheduled = [uid for order in sched.block_order for uid in order]
        assert len(scheduled) == len(set(scheduled))
        assert set(scheduled) == set(sched.tree_of_block)

    def test_blocks_scheduled_on_their_trees_task(self, ours_schedule):
        sched = ours_schedule
        for task, order in enumerate(sched.block_order):
            for uid in order:
                tree = sched.tree_of_block[uid]
                assert sched.assignment[tree] == task

    def test_children_before_parents(self, ours_schedule):
        sched = ours_schedule
        for order in sched.block_order:
            position = {uid: i for i, uid in enumerate(order)}
            for uid in order:
                block = sched.blocks[uid]
                for child in block.children:
                    assert position[child.uid] < position[uid]

    def test_sequence_values_monotone_per_task(self, ours_schedule):
        sched = ours_schedule
        for task, order in enumerate(sched.block_order):
            values = [sched.sequence[uid] for uid in order]
            assert values == sorted(values)
            assert all(v // sched.sequence_stride == task for v in values)

    def test_dominance_values_unique(self, ours_schedule):
        sched = ours_schedule
        values = list(sched.dominance.values())
        assert len(values) == len(set(values))
        assert all(v >= 0 for v in values)

    def test_main_tree_mapping_covers_level1_roots(self, ours_schedule):
        sched = ours_schedule
        level1 = [uid for uid, root in sched.trees.items() if root.level == 1]
        assert len(sched.main_tree) == len(level1)

    def test_split_roots_are_full(self, ours_schedule):
        sched = ours_schedule
        for family, entries in sched.split_roots.items():
            for level, key, uid in entries:
                assert level > 1
                assert sched.trees[uid].is_root
                assert sched.estimates[uid].full

    def test_roots_marked_full_nonroots_not(self, ours_schedule):
        sched = ours_schedule
        for uid, root in sched.trees.items():
            assert sched.estimates[uid].full
            for block in root.descendants():
                assert not sched.estimates[block.uid].full

    def test_generation_cost_positive(self, ours_schedule):
        assert ours_schedule.generation_cost > 0

    def test_cost_vector_increasing(self, ours_schedule):
        vector = ours_schedule.cost_vector
        assert vector == sorted(vector)
        assert all(c > 0 for c in vector)

    def test_weights_non_increasing(self, ours_schedule):
        weights = ours_schedule.weights
        assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))


class TestStrategies:
    def test_nosplit_never_splits(self, schedule_bundle):
        dataset, _, stats = schedule_bundle
        sched = _make_schedule(dataset, stats, strategy="nosplit")
        assert all(root.level == 1 for root in sched.trees.values())

    def test_ours_splits_overflowed_trees(self, schedule_bundle):
        dataset, _, stats = schedule_bundle
        # Many tasks + a high duplicate probability force tight buckets so
        # at least the giant title tree must be split.
        sched = _make_schedule(dataset, stats, num_tasks=12, strategy="ours")
        nosplit = _make_schedule(dataset, stats, num_tasks=12, strategy="nosplit")
        assert len(sched.trees) >= len(nosplit.trees)

    def test_lpt_balances_total_cost(self, schedule_bundle):
        dataset, _, stats = schedule_bundle
        sched = _make_schedule(dataset, stats, num_tasks=4, strategy="lpt")
        loads = [0.0] * 4
        for uid, task in sched.assignment.items():
            loads[task] += sum(
                sched.estimates[b.uid].cost for b in sched.trees[uid].subtree()
            )
        biggest_tree = max(
            sum(sched.estimates[b.uid].cost for b in root.subtree())
            for root in sched.trees.values()
        )
        # LPT guarantee-flavored sanity: makespan <= mean + largest item.
        assert max(loads) <= sum(loads) / 4 + biggest_tree + 1e-6

    def test_unknown_strategy_rejected(self, schedule_bundle):
        dataset, _, stats = schedule_bundle
        with pytest.raises(ValueError):
            _make_schedule(dataset, stats, strategy="bogus")

    def test_needs_at_least_one_task(self, schedule_bundle):
        dataset, _, stats = schedule_bundle
        with pytest.raises(ValueError):
            _make_schedule(dataset, stats, num_tasks=0)


class TestBlockElimination:
    def test_zero_probability_prunes_non_roots(self, schedule_bundle):
        dataset, _, stats = schedule_bundle
        # With no expected duplicates anywhere, every non-root block is
        # pure overhead and must be eliminated.
        sched = _make_schedule(dataset, stats, probability=0.0)
        for uid, root in sched.trees.items():
            assert not root.children

    def test_elimination_keeps_roots(self, schedule_bundle):
        dataset, _, stats = schedule_bundle
        sched = _make_schedule(dataset, stats, probability=0.0)
        level1 = [r for r in sched.trees.values() if r.level == 1]
        assert len(level1) == sum(len(r) for r in stats.roots.values())


class TestUtilityOrdering:
    def test_block_order_prefers_high_utility(self, ours_schedule):
        """Modulo the child-before-parent constraint, earlier blocks should
        not have drastically lower utility than later ones; verify the
        leading block of each task is its utility maximum among roots-free
        candidates."""
        sched = ours_schedule
        for order in sched.block_order:
            if len(order) < 2:
                continue
            utils = [sched.estimates[uid].util for uid in order]
            # The first scheduled block either has the max utility or is a
            # child of the max-utility block (resolved first by necessity).
            best = max(range(len(order)), key=lambda i: utils[i])
            best_block = sched.blocks[order[best]]
            first_block = sched.blocks[order[0]]
            ancestors = set()
            node = first_block
            while node is not None:
                ancestors.add(node.uid)
                node = node.parent
            assert best == 0 or best_block.uid in ancestors
