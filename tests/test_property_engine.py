"""Property-based tests: engine invariants over random workloads."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import Cluster, MapReduceJob, Mapper, Reducer, SlotPool

records_strategy = st.lists(
    st.text(alphabet="abc ", min_size=0, max_size=12), min_size=0, max_size=40
)


class _WordMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(0.5 * len(values))
        context.write((key, sum(values)))


def _job():
    return MapReduceJob(_WordMapper, _SumReducer)


class TestEngineProperties:
    @given(records_strategy, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_wordcount_correct_for_any_input_and_cluster(self, lines, machines):
        result = Cluster(machines).run_job(_job(), lines)
        expected = Counter(word for line in lines for word in line.split())
        assert dict(result.output) == dict(expected)

    @given(records_strategy, st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_reduce_task_count_does_not_change_results(self, lines, machines, n_red):
        a = Cluster(machines).run_job(_job(), lines, num_reduce_tasks=n_red)
        b = Cluster(machines).run_job(_job(), lines, num_reduce_tasks=n_red + 2)
        assert sorted(a.output) == sorted(b.output)

    @given(records_strategy, st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_phase_barrier_invariant(self, lines, machines):
        result = Cluster(machines).run_job(_job(), lines)
        for task in result.map_tasks:
            assert task.end_time <= result.map_phase_end + 1e-9
        for task in result.reduce_tasks:
            assert task.start_time >= result.map_phase_end - 1e-9
            assert task.end_time <= result.end_time + 1e-9

    @given(records_strategy, st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_task_windows_contain_their_cost(self, lines, machines):
        result = Cluster(machines).run_job(_job(), lines)
        for task in result.map_tasks + result.reduce_tasks:
            assert task.end_time - task.start_time == pytest.approx(task.cost)

    @given(records_strategy)
    @settings(max_examples=25, deadline=None)
    def test_failures_never_change_output(self, lines):
        clean = Cluster(2).run_job(_job(), lines)
        failed = Cluster(2).run_job(
            _job(), lines, map_failures={0: 1}, reduce_failures={0: 2}
        )
        assert sorted(clean.output) == sorted(failed.output)
        assert failed.end_time >= clean.end_time - 1e-9

    @given(records_strategy, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_determinism(self, lines, machines):
        a = Cluster(machines).run_job(_job(), lines)
        b = Cluster(machines).run_job(_job(), lines)
        assert a.end_time == b.end_time
        assert a.output == b.output


class _ScanSlotPool:
    """Reference slot pool: the O(slots) linear scan the heap replaced."""

    def __init__(self, num_slots, ready_time):
        self._free_at = [ready_time] * num_slots

    def schedule(self, cost):
        slot = min(range(len(self._free_at)), key=lambda i: (self._free_at[i], i))
        start = self._free_at[slot]
        end = start + cost
        self._free_at[slot] = end
        return start, end, slot

    @property
    def makespan(self):
        return max(self._free_at)


class TestSlotPoolProperties:
    """The heap-based SlotPool is observably identical to the scan."""

    @given(
        st.integers(1, 9),
        st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
        st.lists(
            st.floats(0.0, 1e5, allow_nan=False, allow_infinity=False),
            min_size=0,
            max_size=60,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_heap_agrees_with_scan(self, num_slots, ready_time, costs):
        heap_pool = SlotPool(num_slots, ready_time)
        scan_pool = _ScanSlotPool(num_slots, ready_time)
        for cost in costs:
            assert heap_pool.schedule(cost) == scan_pool.schedule(cost)
            assert heap_pool.makespan == scan_pool.makespan
