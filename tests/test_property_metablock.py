"""Property-based tests: meta-blocking invariants over random datasets.

The pre-pass is a pure function of the dataset and scheme, so its
contracts are checked directly on synthetic workloads:

* block filtering only ever *removes* candidate pairs — the pruned
  level-1 pair universe is a subset of the unpruned one, at every ratio;
* both schemes are deterministic and insensitive to the order entities
  are presented in (the property that makes serial and process backends
  agree bit-for-bit);
* ``pair_weight`` is symmetric in its arguments, ``cbs`` counts whole
  blocks, ``js`` stays within [0, 1];
* the ``wnp`` veto is symmetric, keeps ties (weight exactly at the
  threshold), matches its own definition pair by pair, and survives a
  pickle round-trip unchanged — so a pruner shipped to a worker process
  decides every pair exactly as the driver would.

Seeds are pinned (``@seed``) so CI failures replay locally; the profile
machinery in ``conftest.py`` additionally derandomizes under
``HYPOTHESIS_PROFILE=ci``.
"""

from __future__ import annotations

import math
import pickle
import random

from hypothesis import given, seed
from hypothesis import strategies as st

from repro.blocking.functions import BlockingScheme, prefix_function
from repro.core.metablock import (
    WnpPruner,
    block_filter,
    build_metablock_plan,
    candidate_pairs,
    level1_blocks,
    level1_signatures,
    pair_weight,
)
from repro.data.entity import Entity, pair_key

#: A three-family toy scheme over single-letter keys; tiny alphabets make
#: block collisions (the interesting case) the norm rather than the
#: exception.
SCHEME = BlockingScheme(
    families={
        "X": [prefix_function("X", 1, "x", 1)],
        "Y": [prefix_function("Y", 1, "y", 1)],
        "Z": [prefix_function("Z", 1, "z", 1)],
    }
)

_letters = st.sampled_from(["a", "b", "c"])
_maybe_letter = st.one_of(st.none(), _letters)


@st.composite
def entity_sets(draw, min_size=2, max_size=24):
    """Random entities with 0-3 single-letter keys over {a, b, c}."""
    rows = draw(
        st.lists(
            st.tuples(_maybe_letter, _maybe_letter, _maybe_letter),
            min_size=min_size,
            max_size=max_size,
        )
    )
    entities = []
    for eid, (x, y, z) in enumerate(rows):
        attrs = {}
        if x is not None:
            attrs["x"] = x
        if y is not None:
            attrs["y"] = y
        if z is not None:
            attrs["z"] = z
        entities.append(Entity(eid, attrs))
    return entities


@st.composite
def signatures(draw):
    """A random level-1 signature (family -> key)."""
    sig = {}
    for family in SCHEME.family_order:
        key = draw(_maybe_letter)
        if key is not None:
            sig[family] = key
    return sig


# ---------------------------------------------------------------------------
# block filtering
# ---------------------------------------------------------------------------


@seed(20260809)
@given(entities=entity_sets(), ratio=st.floats(min_value=0.1, max_value=1.0))
def test_bf_pruned_pair_universe_is_a_subset(entities, ratio):
    sigs = level1_signatures(entities, SCHEME)
    pruned = block_filter(sigs, SCHEME, ratio)
    unfiltered = candidate_pairs(entities, SCHEME)
    filtered = candidate_pairs(entities, SCHEME, pruned=pruned)
    assert filtered <= unfiltered


@seed(20260809)
@given(entities=entity_sets(), ratio=st.floats(min_value=0.1, max_value=1.0))
def test_bf_keeps_exactly_ceil_ratio_k_blocks(entities, ratio):
    sigs = level1_signatures(entities, SCHEME)
    pruned = block_filter(sigs, SCHEME, ratio)
    for eid, sig in sigs.items():
        dropped = sum(1 for (pid, _) in pruned if pid == eid)
        assert len(sig) - dropped == (
            math.ceil(ratio * len(sig)) if sig else 0
        ), f"entity {eid} kept the wrong number of blocks"


@seed(20260809)
@given(
    entities=entity_sets(),
    ratio=st.floats(min_value=0.1, max_value=1.0),
    shuffle_seed=st.integers(min_value=0, max_value=2**16),
)
def test_bf_is_order_insensitive(entities, ratio, shuffle_seed):
    shuffled = entities[:]
    random.Random(shuffle_seed).shuffle(shuffled)
    original = block_filter(level1_signatures(entities, SCHEME), SCHEME, ratio)
    reordered = block_filter(level1_signatures(shuffled, SCHEME), SCHEME, ratio)
    assert original == reordered


@seed(20260809)
@given(entities=entity_sets())
def test_bf_ratio_one_is_a_no_op(entities):
    sigs = level1_signatures(entities, SCHEME)
    assert block_filter(sigs, SCHEME, 1.0) == frozenset()


# ---------------------------------------------------------------------------
# pair weights
# ---------------------------------------------------------------------------


@seed(20260809)
@given(sig_a=signatures(), sig_b=signatures())
def test_pair_weight_is_symmetric(sig_a, sig_b):
    for weighting in ("cbs", "js"):
        assert pair_weight(sig_a, sig_b, weighting) == pair_weight(
            sig_b, sig_a, weighting
        )


@seed(20260809)
@given(sig_a=signatures(), sig_b=signatures())
def test_pair_weight_ranges(sig_a, sig_b):
    cbs = pair_weight(sig_a, sig_b, "cbs")
    assert cbs == int(cbs)
    assert 0 <= cbs <= min(len(sig_a), len(sig_b), SCHEME.num_families)
    js = pair_weight(sig_a, sig_b, "js")
    assert 0.0 <= js <= 1.0
    # The two weightings agree on which pairs share no block at all.
    assert (cbs == 0) == (js == 0.0 or not sig_a or not sig_b)


# ---------------------------------------------------------------------------
# weighted node pruning
# ---------------------------------------------------------------------------


@seed(20260809)
@given(entities=entity_sets(), weighting=st.sampled_from(["cbs", "js"]))
def test_wnp_veto_is_symmetric(entities, weighting):
    plan = build_metablock_plan(entities, SCHEME, "wnp", weighting=weighting)
    for a in entities:
        for b in entities:
            if a.id < b.id:
                assert plan.pruner.keep(a, b) == plan.pruner.keep(b, a)


@seed(20260809)
@given(entities=entity_sets(), weighting=st.sampled_from(["cbs", "js"]))
def test_wnp_keeps_ties_and_matches_its_definition(entities, weighting):
    plan = build_metablock_plan(entities, SCHEME, "wnp", weighting=weighting)
    pruner = plan.pruner
    by_id = {e.id: e for e in entities}
    sigs = pruner.signatures
    for a_id, b_id in candidate_pairs(entities, SCHEME):
        a, b = by_id[a_id], by_id[b_id]
        th_a = pruner.thresholds.get(a_id)
        th_b = pruner.thresholds.get(b_id)
        if th_a is None or th_b is None:
            assert pruner.keep(a, b), "an unweighed endpoint imposes no bound"
            continue
        weight = pair_weight(sigs[a_id], sigs[b_id], weighting)
        assert pruner.keep(a, b) == (weight >= min(th_a, th_b))
        if weight == min(th_a, th_b):
            assert pruner.keep(a, b), "ties must be kept"


@seed(20260809)
@given(entities=entity_sets(), weighting=st.sampled_from(["cbs", "js"]))
def test_wnp_plan_counts_match_the_pair_oracle(entities, weighting):
    plan = build_metablock_plan(entities, SCHEME, "wnp", weighting=weighting)
    universe = candidate_pairs(entities, SCHEME)
    surviving = candidate_pairs(entities, SCHEME, pruner=plan.pruner)
    assert plan.pairs_total == len(universe)
    assert plan.pairs_kept == len(surviving)
    assert surviving <= universe


@seed(20260809)
@given(
    entities=entity_sets(),
    weighting=st.sampled_from(["cbs", "js"]),
    shuffle_seed=st.integers(min_value=0, max_value=2**16),
)
def test_wnp_is_order_insensitive(entities, weighting, shuffle_seed):
    shuffled = entities[:]
    random.Random(shuffle_seed).shuffle(shuffled)
    plan_a = build_metablock_plan(entities, SCHEME, "wnp", weighting=weighting)
    plan_b = build_metablock_plan(shuffled, SCHEME, "wnp", weighting=weighting)
    assert plan_a.pruner.thresholds == plan_b.pruner.thresholds
    assert plan_a.pairs_kept == plan_b.pairs_kept
    assert plan_a.keep_ratios == plan_b.keep_ratios


@seed(20260809)
@given(entities=entity_sets(), weighting=st.sampled_from(["cbs", "js"]))
def test_wnp_pruner_survives_pickling(entities, weighting):
    """A pruner shipped to a worker process decides pairs identically."""
    plan = build_metablock_plan(entities, SCHEME, "wnp", weighting=weighting)
    clone = pickle.loads(pickle.dumps(plan.pruner))
    for a in entities:
        for b in entities:
            if a.id < b.id:
                assert clone.keep(a, b) == plan.pruner.keep(a, b)


# ---------------------------------------------------------------------------
# the level-1 pair universe itself
# ---------------------------------------------------------------------------


@seed(20260809)
@given(entities=entity_sets())
def test_candidate_pairs_come_from_shared_blocks(entities):
    sigs = level1_signatures(entities, SCHEME)
    pairs = candidate_pairs(entities, SCHEME)
    for a_id, b_id in pairs:
        assert pair_weight(sigs[a_id], sigs[b_id], "cbs") >= 1
    # And completeness: every co-blocked pair is in the universe.
    for members in level1_blocks(sigs, SCHEME.family_order).values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                assert pair_key(members[i], members[j]) in pairs
