"""Golden-trace regression test for a fixed-seed faulty run.

A small wordcount job runs under a pinned :class:`FaultPlan` (crashes +
straggler slot + speculation) and its exported Chrome trace is reduced to
a *shape*: event names, categories, phase letters, track assignments and
fault annotations — everything except timestamps, which are a separate
concern (pinned numerically by the parity suites).  The shape is stored in
``tests/fixtures/golden_fault_trace.json``; any change to span naming,
attempt emission or fault accounting shows up as a readable JSON diff.

Regenerate the fixture after an intentional change with::

    PYTHONPATH=src python tests/test_golden_fault_trace.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.mapreduce import (
    Cluster,
    FaultPlan,
    MapReduceJob,
    Mapper,
    Reducer,
    RetryPolicy,
    SpeculationConfig,
)
from repro.observability import Tracer, chrome_trace_events

FIXTURE = Path(__file__).parent / "fixtures" / "golden_fault_trace.json"

#: The pinned scenario: moderate crash rate, one slow slot, speculation on.
GOLDEN_PLAN = FaultPlan(
    seed=2024,
    fault_rate=0.25,
    slot_slowdowns={0: 6.0},
    retry=RetryPolicy(max_attempts=20, backoff_base=0.5),
    speculation=SpeculationConfig(enabled=True, threshold=1.5),
)

_LINES = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "fox fox fox",
    "pack my box with five dozen jugs",
    "sphinx of black quartz judge my vow",
] * 3


class _WordMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(0.5 * len(values))
        context.write((key, sum(values)))


def _golden_job():
    return MapReduceJob(_WordMapper, _SumReducer, name="golden", alpha=2.0)


def build_golden_shape() -> dict:
    """Run the pinned scenario and reduce its trace to a timestamp-free
    shape (plus the fault counters, which the trace must agree with)."""
    tracer = Tracer()
    result = Cluster(2, tracer=tracer, faults=GOLDEN_PLAN).run_job(
        _golden_job(), _LINES
    )
    events = []
    for event in chrome_trace_events(tracer):
        args = event.get("args", {})
        shape = {
            "name": event["name"],
            "ph": event["ph"],
            "tid": event["tid"],
        }
        if "cat" in event:
            shape["cat"] = event["cat"]
        for marker in ("failed", "killed", "speculative", "attempt"):
            if args.get(marker):
                shape[marker] = args[marker]
        events.append(shape)
    events.sort(key=lambda e: json.dumps(e, sort_keys=True))
    fault_counters = {
        key: value
        for key, value in sorted(result.counters.as_flat_dict().items())
        if key.startswith("fault.")
    }
    return {"events": events, "fault_counters": fault_counters}


def test_golden_fault_trace_shape_is_stable():
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_fault_trace.py`"
    )
    expected = json.loads(FIXTURE.read_text())
    actual = build_golden_shape()
    assert actual["fault_counters"] == expected["fault_counters"]
    assert actual["events"] == expected["events"]


def test_golden_scenario_actually_exercises_faults():
    """Guard against the fixture silently pinning a fault-free run."""
    shape = build_golden_shape()
    counters = shape["fault_counters"]
    assert counters.get("fault.map_failed_attempts", 0) + counters.get(
        "fault.reduce_failed_attempts", 0
    ) > 0
    assert any(e.get("failed") for e in shape["events"])


if __name__ == "__main__":
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(build_golden_shape(), indent=2) + "\n")
    print(f"wrote {FIXTURE}")
