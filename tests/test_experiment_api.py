"""Tests for the unified run API: RunSpec / ExperimentRun / RunResult,
plus construction-time spec validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.evaluation import ExperimentRun, RunResult, RunSpec
from repro.evaluation.experiment import PAPER_MAP_SLOTS, PAPER_REDUCE_SLOTS
from repro.mapreduce import FaultPlan, SerialExecutor


class TestRunSpec:
    def test_approach_inferred_from_config_type(self, citeseer_cfg, basic_cfg):
        assert not RunSpec(None, citeseer_cfg).is_basic
        assert RunSpec(None, basic_cfg).is_basic

    def test_progressive_label_derived_from_strategy(self, citeseer_cfg):
        assert RunSpec(None, citeseer_cfg).resolved_label() == "ours[ours]"
        assert RunSpec(None, citeseer_cfg, strategy="lpt").resolved_label() == "ours[lpt]"

    def test_basic_label_encodes_popcorn_threshold(self, basic_cfg):
        assert RunSpec(None, basic_cfg).resolved_label() == "basic[F]"

    def test_explicit_label_wins(self, citeseer_cfg):
        spec = RunSpec(None, citeseer_cfg, label="fig8")
        assert spec.resolved_label() == "fig8"

    def test_with_label_copies(self, citeseer_cfg):
        spec = RunSpec(None, citeseer_cfg, machines=7)
        relabeled = spec.with_label("other")
        assert relabeled.label == "other"
        assert relabeled.machines == 7
        assert spec.label is None  # original untouched


class TestExperimentRun:
    def test_cluster_is_paper_shaped(self, citeseer_small, citeseer_cfg):
        experiment = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=4))
        cluster = experiment.cluster
        assert cluster.machines == 4
        assert cluster.map_slots == PAPER_MAP_SLOTS
        assert cluster.reduce_slots == PAPER_REDUCE_SLOTS

    def test_backend_name_builds_executor(self, citeseer_small, citeseer_cfg):
        experiment = ExperimentRun(
            RunSpec(citeseer_small, citeseer_cfg, backend="process", workers=2)
        )
        assert experiment.cluster.executor.name == "process"
        assert experiment.cluster.executor.workers == 2

    def test_explicit_executor_wins_over_backend(self, citeseer_small, citeseer_cfg):
        experiment = ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_cfg,
                backend="process", executor=SerialExecutor(),
            )
        )
        assert experiment.cluster.executor.name == "serial"

    def test_progressive_run_result_shape(self, citeseer_small, citeseer_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=3)).run()
        assert isinstance(run, RunResult)
        assert run.label == "ours[ours]"
        assert run.spec.machines == 3
        assert run.total_time == run.result.total_time
        assert run.final_recall == run.curve.final_recall
        assert run.final_recall > 0.8
        assert run.duplicate_events is run.result.duplicate_events

    def test_basic_run_result_shape(self, citeseer_small, basic_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, basic_cfg, machines=3)).run()
        assert run.label == "basic[F]"
        assert run.total_time == run.result.job.end_time
        assert run.final_recall > 0.8

    def test_seed_flows_through(self, citeseer_small, citeseer_cfg):
        a = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2, seed=5)).run()
        b = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2, seed=5)).run()
        assert [(e.time, e.payload) for e in a.duplicate_events] == [
            (e.time, e.payload) for e in b.duplicate_events
        ]


class TestFoundPairsCaching:
    """found_pairs is derived from the event log — compute it once."""

    def test_run_result_caches(self, citeseer_small, citeseer_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2)).run()
        assert run.found_pairs is run.found_pairs

    def test_progressive_result_caches(self, citeseer_small, citeseer_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2)).run()
        assert run.result.found_pairs is run.result.found_pairs

    def test_basic_result_caches(self, citeseer_small, basic_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, basic_cfg, machines=2)).run()
        assert run.result.found_pairs is run.result.found_pairs


class TestDeprecatedWrappersRemoved:
    """The pre-RunSpec helpers were deleted after their deprecation cycle."""

    def test_wrappers_are_gone(self):
        import repro
        import repro.evaluation
        import repro.evaluation.experiment as experiment

        for module in (repro, repro.evaluation, experiment):
            for name in ("make_cluster", "run_progressive", "run_basic"):
                assert not hasattr(module, name), f"{module.__name__}.{name}"
                assert name not in getattr(module, "__all__", ())


class TestRunSpecValidation:
    """Incoherent specs fail at construction with actionable messages."""

    def test_valid_spec_passes_and_chains(self, citeseer_cfg):
        spec = RunSpec(None, citeseer_cfg, machines=3, balance="blocksplit")
        assert spec.validate() is spec

    def test_unknown_balance_rejected(self, citeseer_cfg):
        with pytest.raises(ValueError, match="balance.*'roundrobin'.*slack"):
            RunSpec(None, citeseer_cfg, balance="roundrobin")

    def test_unknown_strategy_rejected(self, citeseer_cfg):
        with pytest.raises(ValueError, match="strategy 'greedy'"):
            RunSpec(None, citeseer_cfg, strategy="greedy")

    def test_unknown_backend_rejected(self, citeseer_cfg):
        with pytest.raises(ValueError, match="backend 'threads'"):
            RunSpec(None, citeseer_cfg, backend="threads")

    def test_nonpositive_workers_rejected(self, citeseer_cfg):
        with pytest.raises(ValueError, match="workers must be a positive"):
            RunSpec(None, citeseer_cfg, backend="process", workers=0)

    def test_negative_batch_pairs_rejected(self, citeseer_cfg):
        with pytest.raises(ValueError, match="batch_pairs must be a positive"):
            RunSpec(None, citeseer_cfg, batch_pairs=-4)

    def test_nonpositive_machines_rejected(self, citeseer_cfg):
        with pytest.raises(ValueError, match="machines must be a positive"):
            RunSpec(None, citeseer_cfg, machines=0)

    def test_wrong_config_type_rejected(self, citeseer_small):
        with pytest.raises(ValueError, match="config must be an ApproachConfig"):
            RunSpec(citeseer_small, {"scheme": None})

    def test_wrong_faults_type_rejected(self, citeseer_cfg):
        with pytest.raises(ValueError, match="faults must be a FaultPlan"):
            RunSpec(None, citeseer_cfg, faults="chaos")
        RunSpec(None, citeseer_cfg, faults=FaultPlan(seed=0))  # real plan OK

    def test_blocksplit_needs_tree_routing(self, citeseer_cfg):
        block_routed = dataclasses.replace(citeseer_cfg, routing="block")
        with pytest.raises(ValueError, match="blocksplit.*tree routing"):
            RunSpec(None, block_routed, balance="blocksplit")

    def test_all_problems_reported_at_once(self, citeseer_cfg):
        with pytest.raises(ValueError) as excinfo:
            RunSpec(None, citeseer_cfg, machines=0, balance="nope", workers=-1)
        message = str(excinfo.value)
        assert "machines" in message
        assert "balance" in message
        assert "workers" in message

    def test_validate_catches_post_construction_mutation(self, citeseer_cfg):
        spec = RunSpec(None, citeseer_cfg)
        spec.balance = "typo"
        with pytest.raises(ValueError, match="balance"):
            spec.validate()
