"""Tests for the unified run API: RunSpec / ExperimentRun / RunResult,
plus the deprecated pre-RunSpec wrappers."""

from __future__ import annotations

import pytest

from repro.evaluation import (
    ExperimentRun,
    RunResult,
    RunSpec,
    make_cluster,
    run_basic,
    run_progressive,
)
from repro.evaluation.experiment import PAPER_MAP_SLOTS, PAPER_REDUCE_SLOTS
from repro.mapreduce import CostModel, SerialExecutor


class TestRunSpec:
    def test_approach_inferred_from_config_type(self, citeseer_cfg, basic_cfg):
        assert not RunSpec(None, citeseer_cfg).is_basic
        assert RunSpec(None, basic_cfg).is_basic

    def test_progressive_label_derived_from_strategy(self, citeseer_cfg):
        assert RunSpec(None, citeseer_cfg).resolved_label() == "ours[ours]"
        assert RunSpec(None, citeseer_cfg, strategy="lpt").resolved_label() == "ours[lpt]"

    def test_basic_label_encodes_popcorn_threshold(self, basic_cfg):
        assert RunSpec(None, basic_cfg).resolved_label() == "basic[F]"

    def test_explicit_label_wins(self, citeseer_cfg):
        spec = RunSpec(None, citeseer_cfg, label="fig8")
        assert spec.resolved_label() == "fig8"

    def test_with_label_copies(self, citeseer_cfg):
        spec = RunSpec(None, citeseer_cfg, machines=7)
        relabeled = spec.with_label("other")
        assert relabeled.label == "other"
        assert relabeled.machines == 7
        assert spec.label is None  # original untouched


class TestExperimentRun:
    def test_cluster_is_paper_shaped(self, citeseer_small, citeseer_cfg):
        experiment = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=4))
        cluster = experiment.cluster
        assert cluster.machines == 4
        assert cluster.map_slots == PAPER_MAP_SLOTS
        assert cluster.reduce_slots == PAPER_REDUCE_SLOTS

    def test_backend_name_builds_executor(self, citeseer_small, citeseer_cfg):
        experiment = ExperimentRun(
            RunSpec(citeseer_small, citeseer_cfg, backend="process", workers=2)
        )
        assert experiment.cluster.executor.name == "process"
        assert experiment.cluster.executor.workers == 2

    def test_explicit_executor_wins_over_backend(self, citeseer_small, citeseer_cfg):
        experiment = ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_cfg,
                backend="process", executor=SerialExecutor(),
            )
        )
        assert experiment.cluster.executor.name == "serial"

    def test_progressive_run_result_shape(self, citeseer_small, citeseer_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=3)).run()
        assert isinstance(run, RunResult)
        assert run.label == "ours[ours]"
        assert run.spec.machines == 3
        assert run.total_time == run.result.total_time
        assert run.final_recall == run.curve.final_recall
        assert run.final_recall > 0.8
        assert run.duplicate_events is run.result.duplicate_events

    def test_basic_run_result_shape(self, citeseer_small, basic_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, basic_cfg, machines=3)).run()
        assert run.label == "basic[F]"
        assert run.total_time == run.result.job.end_time
        assert run.final_recall > 0.8

    def test_seed_flows_through(self, citeseer_small, citeseer_cfg):
        a = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2, seed=5)).run()
        b = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2, seed=5)).run()
        assert [(e.time, e.payload) for e in a.duplicate_events] == [
            (e.time, e.payload) for e in b.duplicate_events
        ]


class TestFoundPairsCaching:
    """found_pairs is derived from the event log — compute it once."""

    def test_run_result_caches(self, citeseer_small, citeseer_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2)).run()
        assert run.found_pairs is run.found_pairs

    def test_progressive_result_caches(self, citeseer_small, citeseer_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2)).run()
        assert run.result.found_pairs is run.result.found_pairs

    def test_basic_result_caches(self, citeseer_small, basic_cfg):
        run = ExperimentRun(RunSpec(citeseer_small, basic_cfg, machines=2)).run()
        assert run.result.found_pairs is run.result.found_pairs


class TestDeprecatedWrappers:
    def test_make_cluster_warns_and_matches_new_path(self):
        with pytest.warns(DeprecationWarning, match="make_cluster"):
            cluster = make_cluster(5, cost_model=CostModel())
        assert cluster.machines == 5
        assert cluster.map_slots == PAPER_MAP_SLOTS

    def test_run_progressive_warns_and_delegates(self, citeseer_small, citeseer_cfg):
        with pytest.warns(DeprecationWarning, match="run_progressive"):
            old = run_progressive(citeseer_small, citeseer_cfg, 3, strategy="lpt")
        new = ExperimentRun(
            RunSpec(citeseer_small, citeseer_cfg, machines=3, strategy="lpt")
        ).run()
        assert old.label == new.label == "ours[lpt]"
        assert old.found_pairs == new.found_pairs
        assert old.total_time == new.total_time

    def test_run_basic_warns_and_delegates(self, citeseer_small, basic_cfg):
        with pytest.warns(DeprecationWarning, match="run_basic"):
            old = run_basic(citeseer_small, basic_cfg, 3, label="b")
        new = ExperimentRun(
            RunSpec(citeseer_small, basic_cfg, machines=3, label="b")
        ).run()
        assert old.label == "b"
        assert old.found_pairs == new.found_pairs
        assert old.total_time == new.total_time
