"""Cross-module integration tests: the paper's headline claims at test
scale (small datasets, few machines) plus end-to-end clustering."""

import pytest

from repro.baselines import BasicConfig
from repro.blocking import books_scheme, citeseer_scheme
from repro.core import ProgressiveER, books_config
from repro.evaluation import (
    ExperimentRun,
    RunSpec,
    quality,
    recall_curve,
    transitive_closure,
)
from repro.core.config import linear_weights
from repro.mapreduce import Cluster
from repro.mechanisms import PSNM, SortedNeighborHint


@pytest.fixture(scope="module")
def headline_runs(request):
    dataset = request.getfixturevalue("citeseer_medium")
    matcher = request.getfixturevalue("shared_citeseer_matcher")
    from repro.core import citeseer_config

    ours = ExperimentRun(
        RunSpec(dataset, citeseer_config(matcher=matcher), machines=4, label="ours")
    ).run()
    basic = ExperimentRun(
        RunSpec(
            dataset,
            BasicConfig(
                scheme=citeseer_scheme(),
                matcher=matcher,
                mechanism=SortedNeighborHint(),
                window=15,
            ),
            machines=4,
            label="basicF",
        )
    ).run()
    return dataset, ours, basic


class TestHeadlineClaim:
    """Figure 8's claim: our approach dominates Basic progressively."""

    def test_ours_leads_at_early_checkpoints(self, headline_runs):
        _, ours, basic = headline_runs
        horizon = min(ours.total_time, basic.total_time)
        lead = 0
        for fraction in (0.2, 0.3, 0.5, 0.7):
            t = horizon * fraction
            if ours.curve.recall_at(t) >= basic.curve.recall_at(t):
                lead += 1
        assert lead >= 3  # dominates at (almost) every checkpoint

    def test_ours_reaches_higher_final_recall(self, headline_runs):
        _, ours, basic = headline_runs
        assert ours.final_recall >= basic.final_recall

    def test_quality_metric_prefers_ours(self, headline_runs):
        dataset, ours, basic = headline_runs
        horizon = min(ours.total_time, basic.total_time)
        samples = [horizon * (i + 1) / 10 for i in range(10)]
        q_ours = quality(ours.result.duplicate_events, dataset, samples, linear_weights)
        q_basic = quality(basic.result.duplicate_events, dataset, samples, linear_weights)
        assert q_ours > q_basic


class TestParallelScaling:
    def test_more_machines_not_slower(self, citeseer_small, citeseer_cfg):
        small = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=2)).run()
        large = ExperimentRun(RunSpec(citeseer_small, citeseer_cfg, machines=6)).run()
        assert large.total_time <= small.total_time * 1.05
        assert large.final_recall == pytest.approx(small.final_recall, abs=0.02)


class TestBooksPipeline:
    def test_books_psnm_end_to_end(self, books_small, shared_books_matcher):
        config = books_config(matcher=shared_books_matcher)
        result = ProgressiveER(config, Cluster(2)).run(books_small)
        recall = len(result.found_pairs & books_small.true_pairs)
        assert recall / books_small.num_true_pairs > 0.75

    def test_books_basic_psnm(self, books_small, shared_books_matcher):
        config = BasicConfig(
            scheme=books_scheme(),
            matcher=shared_books_matcher,
            mechanism=PSNM(),
            window=15,
            popcorn_threshold=0.005,
        )
        run = ExperimentRun(RunSpec(books_small, config, machines=2)).run()
        assert 0.0 < run.final_recall <= 1.0


class TestClusteringStage:
    def test_transitive_closure_of_results(self, headline_runs):
        dataset, ours, _ = headline_runs
        clusters = transitive_closure(ours.result.found_pairs)
        # Clusters must be consistent with ground truth for most entities:
        # count entities placed with a majority of same-cluster peers.
        correct = 0
        total = 0
        for group in clusters:
            for entity in group:
                total += 1
                truth = dataset.clusters[entity]
                same = sum(1 for other in group if dataset.clusters[other] == truth)
                if same > len(group) / 2:
                    correct += 1
        assert total > 0
        # Transitive closure amplifies the matcher's few false positives,
        # so purity sits below raw pair precision.
        assert correct / total > 0.8


class TestIncrementalConsumption:
    def test_files_reconstruct_event_stream(self, headline_runs):
        from repro.mapreduce import results_available_at

        _, ours, _ = headline_runs
        job = ours.result.job2
        final = set(results_available_at(job, job.end_time))
        assert final == ours.result.found_pairs
