"""Property-based tests: schedule-generation invariants over random
synthetic block forests.

Rather than real datasets, these tests build arbitrary statistics objects
(random tree shapes, sizes and overlaps) and assert the Figure-6 pipeline
always produces a well-formed schedule.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import BlockingScheme, prefix_function
from repro.core.config import citeseer_config
from repro.core.estimation import EstimationModel, UniformEstimator
from repro.core.schedule import generate_schedule
from repro.core.statistics import BlockRecord, DatasetStatistics
from repro.mapreduce import CostModel


def _scheme():
    return BlockingScheme(
        families={
            "X": [
                prefix_function("X", 1, "a", 2),
                prefix_function("X", 2, "a", 4),
            ],
            "Y": [prefix_function("Y", 1, "b", 2)],
        }
    )


@st.composite
def random_statistics(draw):
    """A random but well-formed DatasetStatistics."""
    rng = random.Random(draw(st.integers(0, 10_000)))
    records = []
    n_x_roots = draw(st.integers(1, 5))
    for i in range(n_x_roots):
        root_key = f"r{i}"
        size = draw(st.integers(2, 120))
        records.append(BlockRecord("X", 1, root_key, size, None, {(): size}))
        remaining = size
        for j in range(draw(st.integers(0, 3))):
            child_size = rng.randint(2, max(2, remaining - 1)) if remaining > 2 else 2
            if child_size >= size:
                continue
            records.append(
                BlockRecord(
                    "X", 2, f"{root_key}c{j}", child_size, f"X1:{root_key}",
                    {(): child_size},
                )
            )
    n_y_roots = draw(st.integers(0, 4))
    for i in range(n_y_roots):
        size = draw(st.integers(2, 80))
        # Random overlap with X keys (None = unblocked under X).
        histogram = {}
        left = size
        while left > 0:
            key = rng.choice([None, "xa", "xb", "xc"])
            count = rng.randint(1, left)
            signature = (key,)
            histogram[signature] = histogram.get(signature, 0) + count
            left -= count
        records.append(BlockRecord("Y", 1, f"y{i}", size, None, histogram))
    return DatasetStatistics.from_records(_scheme(), records)


@given(
    random_statistics(),
    st.integers(1, 8),
    st.sampled_from(["ours", "nosplit", "lpt"]),
    st.floats(0.0, 0.5),
)
@settings(max_examples=60, deadline=None)
def test_schedule_invariants_on_random_forests(stats, num_tasks, strategy, prob):
    config = citeseer_config()
    dataset_size = max(b.size for b in stats.blocks.values()) * 3
    model = EstimationModel(
        config, CostModel(), UniformEstimator(prob), dataset_size
    )
    schedule = generate_schedule(stats, model, config, num_tasks, strategy=strategy)

    # 1. Every tree assigned exactly once, to a valid task.
    assert set(schedule.assignment) == set(schedule.trees)
    assert all(0 <= t < num_tasks for t in schedule.assignment.values())

    # 2. Every surviving block scheduled exactly once, on its tree's task.
    scheduled = [uid for order in schedule.block_order for uid in order]
    assert len(scheduled) == len(set(scheduled))
    assert set(scheduled) == set(schedule.tree_of_block)
    for task, order in enumerate(schedule.block_order):
        for uid in order:
            assert schedule.assignment[schedule.tree_of_block[uid]] == task

    # 3. Children precede parents.
    for order in schedule.block_order:
        position = {uid: i for i, uid in enumerate(order)}
        for uid in order:
            for child in schedule.blocks[uid].children:
                assert position[child.uid] < position[uid]

    # 4. Sequence values are monotone within a task and route back to it.
    for task, order in enumerate(schedule.block_order):
        values = [schedule.sequence[uid] for uid in order]
        assert values == sorted(values)
        assert all(v // schedule.sequence_stride == task for v in values)

    # 5. Dominance values unique; roots full; weights non-increasing.
    doms = list(schedule.dominance.values())
    assert len(doms) == len(set(doms))
    for uid in schedule.trees:
        assert schedule.estimates[uid].full
    weights = schedule.weights
    assert all(weights[i] >= weights[i + 1] - 1e-12 for i in range(len(weights) - 1))

    # 6. Generation cost is positive and finite.
    assert 0 < schedule.generation_cost < float("inf")
