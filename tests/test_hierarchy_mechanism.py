"""Unit tests for the hierarchical-partitioning hint mechanism."""

import pytest

from repro.data import Entity
from repro.mapreduce import CostModel
from repro.mechanisms import PSNM, HierarchyHint, window_pairs_count


def _entities(count):
    return [Entity(id=i, attrs={"v": f"v{i:03d}"}) for i in range(count)]


def _sort_key(e):
    return e.get("v")


def _pairs(mechanism, entities, window):
    stream = mechanism.pair_stream(
        entities, window, _sort_key, lambda c: None, CostModel()
    )
    return [(min(a.id, b.id), max(a.id, b.id)) for a, b in stream]


class TestHierarchyHint:
    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchyHint(leaf_size=1)
        with pytest.raises(ValueError):
            HierarchyHint(branching=1)

    def test_same_pair_set_as_psnm(self):
        entities = _entities(30)
        hier = set(_pairs(HierarchyHint(leaf_size=4), entities, window=6))
        psnm = set(_pairs(PSNM(), entities, window=6))
        assert hier == psnm

    def test_pair_count_matches_window_formula(self):
        entities = _entities(25)
        pairs = _pairs(HierarchyHint(leaf_size=4), entities, window=5)
        assert len(pairs) == window_pairs_count(25, 5)
        assert len(set(pairs)) == len(pairs)  # no duplicates in the stream

    def test_leaf_pairs_stream_before_cross_partition_pairs(self):
        entities = _entities(16)
        mechanism = HierarchyHint(leaf_size=4, branching=2)
        pairs = _pairs(mechanism, entities, window=8)
        # First pair must be inside one leaf partition (ranks 0-3, 4-7, ...).
        a, b = pairs[0]
        assert a // 4 == b // 4
        # Pairs crossing the top-level midpoint (rank 7 | 8) come last-ish:
        # find first crossing pair and assert all leaf-local pairs precede it.
        def level(p):
            i, j = p
            size = 4
            lvl = 0
            while i // size != j // size:
                size *= 2
                lvl += 1
            return lvl

        levels = [level(p) for p in pairs]
        assert levels == sorted(levels)

    def test_small_block(self):
        entities = _entities(2)
        pairs = _pairs(HierarchyHint(), entities, window=5)
        assert pairs == [(0, 1)]

    def test_empty_and_singleton(self):
        assert _pairs(HierarchyHint(), [], window=5) == []
        assert _pairs(HierarchyHint(), _entities(1), window=5) == []

    def test_additional_cost_includes_hint(self):
        cm = CostModel()
        hier = HierarchyHint().additional_cost(50, 10, cm)
        psnm = PSNM().additional_cost(50, 10, cm)
        assert hier > psnm

    def test_usable_as_mechanism_m_end_to_end(self, citeseer_small, shared_citeseer_matcher):
        from repro.core import ProgressiveER, citeseer_config
        from repro.mapreduce import Cluster

        config = citeseer_config(
            matcher=shared_citeseer_matcher, mechanism=HierarchyHint()
        )
        result = ProgressiveER(config, Cluster(2)).run(citeseer_small)
        recall = len(result.found_pairs & citeseer_small.true_pairs)
        assert recall / citeseer_small.num_true_pairs > 0.7
