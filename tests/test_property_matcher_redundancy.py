"""Property tests for the matcher and the redundancy logic over random
inputs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.redundancy import (
    build_dominance_list,
    missing_sentinel,
    should_resolve,
)
from repro.data import Entity
from repro.similarity import AttributeRule, WeightedMatcher

attr_text = st.text(alphabet="abcdef ", min_size=0, max_size=20)


def _entity(eid, title, venue):
    attrs = {}
    if title:
        attrs["title"] = title
    if venue:
        attrs["venue"] = venue
    return Entity(id=eid, attrs=attrs)


def _matcher(cache=False):
    return WeightedMatcher(
        [
            AttributeRule("title", weight=0.7, comparator="edit"),
            AttributeRule("venue", weight=0.3, comparator="exact"),
        ],
        threshold=0.6,
        cache=cache,
    )


class TestMatcherProperties:
    @given(attr_text, attr_text, attr_text, attr_text)
    @settings(max_examples=60)
    def test_similarity_symmetric(self, t1, v1, t2, v2):
        matcher = _matcher()
        e1, e2 = _entity(1, t1, v1), _entity(2, t2, v2)
        assert matcher.similarity(e1, e2) == pytest.approx(matcher.similarity(e2, e1))

    @given(attr_text, attr_text)
    @settings(max_examples=40)
    def test_self_similarity_is_one_when_any_attr_present(self, t, v):
        matcher = _matcher()
        e1, e2 = _entity(1, t, v), _entity(2, t, v)
        expected = 1.0 if (t or v) else 0.0
        assert matcher.similarity(e1, e2) == pytest.approx(expected)

    @given(attr_text, attr_text, attr_text, attr_text)
    @settings(max_examples=40)
    def test_cache_transparent(self, t1, v1, t2, v2):
        plain, cached = _matcher(), _matcher(cache=True)
        e1, e2 = _entity(1, t1, v1), _entity(2, t2, v2)
        assert cached.similarity(e1, e2) == plain.similarity(e1, e2)
        # Second call hits the cache and must return the identical value.
        assert cached.similarity(e2, e1) == plain.similarity(e1, e2)

    @given(attr_text, attr_text, attr_text, attr_text)
    @settings(max_examples=40)
    def test_cost_factor_positive(self, t1, v1, t2, v2):
        matcher = _matcher()
        assert matcher.comparison_cost_factor(_entity(1, t1, v1), _entity(2, t2, v2)) > 0


dom_values = st.integers(0, 50)
maybe_dom = st.one_of(st.none(), dom_values)


class TestRedundancyProperties:
    @given(
        st.integers(0, 100),
        st.integers(101, 200),
        st.lists(st.booleans(), min_size=3, max_size=3),
        st.lists(st.booleans(), min_size=3, max_size=3),
        st.lists(st.booleans(), min_size=3, max_size=3),
    )
    @settings(max_examples=120)
    def test_exactly_the_most_dominating_shared_family_resolves(
        self, id1, id2, shared, blocked1, blocked2
    ):
        """Model a consistent world: per family, the pair either shares a
        main tree or not (possibly because an entity is unblocked there).
        SHOULD-RESOLVE must grant the pair to exactly the most dominating
        family that shares it."""
        n = 3
        if not any(shared):
            return
        # Family f's tree dominance values: shared -> one common tree;
        # not shared -> two distinct trees (or sentinels when unblocked).
        def tree_entry(entity_id, family, blocked):
            if shared[family]:
                return 10 + family  # the common tree
            if not blocked[family]:
                return None  # unblocked -> sentinel inside the builder
            # Distinct trees per entity (id ranges are disjoint).
            return 100 + family * 10 + (0 if entity_id <= 100 else 1)

        owners = []
        for index in range(1, n + 1):
            if not shared[index - 1]:
                continue  # the pair never meets inside this family
            l1 = build_dominance_list(
                entity_id=id1, own_index=index, num_families=n,
                family_trees=[tree_entry(id1, f, blocked1) for f in range(n)],
                emitted_tree=10 + (index - 1),
                split_descendant=None,
            )
            l2 = build_dominance_list(
                entity_id=id2, own_index=index, num_families=n,
                family_trees=[tree_entry(id2, f, blocked2) for f in range(n)],
                emitted_tree=10 + (index - 1),
                split_descendant=None,
            )
            if should_resolve(l1, l2, index, n):
                owners.append(index)
        expected_owner = shared.index(True) + 1
        assert owners == [expected_owner]

    @given(st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=30)
    def test_sentinels_unique_per_entity(self, a, b):
        if a == b:
            assert missing_sentinel(a) == missing_sentinel(b)
        else:
            assert missing_sentinel(a) != missing_sentinel(b)
