"""Golden end-to-end fixture for the full progressive pipeline.

One pinned run — the books dataset under the default configuration, serial
backend, ``slack`` balance — is reduced to a JSON *shape*: a digest of the
generated schedule, the first duplicate discoveries with their virtual
timestamps, the final counts, and the driver/balance counters.  The shape
is stored in ``tests/fixtures/golden_pipeline.json``; any drift in
blocking, estimation, scheduling, the resolution mechanisms, virtual-time
accounting or the balance post-pass shows up as a readable JSON diff.

This is the differential harness's fixed reference point: the differential
suites prove strategies and backends agree with *each other*, this fixture
pins what they all agree *on* across commits.

Regenerate after an intentional behavior change with::

    PYTHONPATH=src python tests/test_golden_pipeline.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.config import books_config
from repro.data.books import make_books
from repro.evaluation import ExperimentRun, RunSpec

FIXTURE = Path(__file__).parent / "fixtures" / "golden_pipeline.json"

#: The pinned scenario (matches the shared ``books_small`` fixture shape).
GOLDEN_SIZE = 600
GOLDEN_SEED = 11
GOLDEN_MACHINES = 3
EVENT_PREFIX = 25


def _golden_run():
    dataset = make_books(GOLDEN_SIZE, seed=GOLDEN_SEED)
    spec = RunSpec(dataset, books_config(), machines=GOLDEN_MACHINES)
    return ExperimentRun(spec).run()


def _schedule_digest(schedule) -> str:
    """A stable digest of the scheduler's decisions (not the estimates:
    those are floats whose exact values the counters already pin)."""
    canonical = json.dumps(
        {
            "num_tasks": schedule.num_tasks,
            "assignment": dict(sorted(schedule.assignment.items())),
            "block_order": schedule.block_order,
            "sequence_stride": schedule.sequence_stride,
            "shards": sorted(schedule.shards),
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def build_golden_shape() -> dict:
    """Run the pinned scenario and reduce it to a JSON-stable shape."""
    run = _golden_run()
    result = run.result
    schedule = result.schedule
    counters = {
        key: value
        for key, value in sorted(result.job2.counters.as_flat_dict().items())
        if key.startswith(("driver.", "balance."))
    }
    return {
        "dataset": {
            "name": result.dataset.name,
            "entities": len(result.dataset.entities),
            "true_pairs": len(result.dataset.true_pairs),
        },
        "schedule": {
            "digest": _schedule_digest(schedule),
            "num_tasks": schedule.num_tasks,
            "num_trees": schedule.num_trees,
            "num_blocks": schedule.num_blocks,
        },
        "first_events": [
            [round(event.time, 6), list(event.payload)]
            for event in result.duplicate_events[:EVENT_PREFIX]
        ],
        "found_pairs": len(run.found_pairs),
        "final_recall": round(run.final_recall, 9),
        "total_time": round(run.total_time, 6),
        "counters": counters,
    }


def test_golden_pipeline_shape_is_stable():
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_pipeline.py`"
    )
    expected = json.loads(FIXTURE.read_text())
    actual = build_golden_shape()
    assert actual["dataset"] == expected["dataset"]
    assert actual["schedule"] == expected["schedule"]
    assert actual["counters"] == expected["counters"]
    assert actual["first_events"] == expected["first_events"]
    assert actual["found_pairs"] == expected["found_pairs"]
    assert actual["final_recall"] == pytest.approx(
        expected["final_recall"], abs=1e-9
    )
    assert actual["total_time"] == pytest.approx(expected["total_time"], abs=1e-6)


def test_golden_scenario_is_not_vacuous():
    """Guard against the fixture pinning a run that resolves nothing."""
    shape = build_golden_shape()
    assert shape["found_pairs"] > 0
    assert shape["final_recall"] > 0.5
    assert len(shape["first_events"]) == EVENT_PREFIX
    assert shape["counters"].get("driver.blocks_resolved", 0) > 0
    # The default run uses slack balance: present in counters, no shards.
    assert shape["counters"].get("balance.shards") == 0
    assert "balance.gini_before_milli" in shape["counters"]


if __name__ == "__main__":
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(build_golden_shape(), indent=2) + "\n")
    print(f"wrote {FIXTURE}")
