"""Property-based tests: load-balancing invariants over random workloads.

The splitter and placer are pure functions of the schedule's estimates, so
their invariants are checked directly on synthetic inputs:

* shard bounds always partition the pair space ``[0, total_pairs)``
  exactly — no pair lost, none compared twice;
* LPT placement is deterministic and insensitive to the order its work
  units are presented in;
* on an adversarial single-giant-block workload, ``blocksplit`` never has
  a worse planned makespan than the untouched ``slack`` baseline, and it
  actually shards the giant.

Seeds are pinned (``@seed``) so CI failures replay locally; the profile
machinery in ``conftest.py`` additionally derandomizes under
``HYPOTHESIS_PROFILE=ci``.
"""

import copy
import random

from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.blocking.blocks import Block
from repro.core.balance import (
    apply_balance,
    place_units,
    shard_bounds,
    skew_report,
)
from repro.core.estimation import BlockEstimate
from repro.core.schedule import (
    ProgressiveSchedule,
    build_block_orders,
    recompute_sequence,
)
from repro.mechanisms.base import window_pairs_count

_WINDOW = 10


# ---------------------------------------------------------------------------
# shard_bounds: exact partition of the pair space
# ---------------------------------------------------------------------------


@seed(20260807)
@given(
    total_pairs=st.integers(min_value=0, max_value=100_000),
    num_shards=st.integers(min_value=1, max_value=64),
)
def test_shard_bounds_partition_pair_space(total_pairs, num_shards):
    bounds = shard_bounds(total_pairs, num_shards)
    assert len(bounds) == num_shards + 1
    assert bounds[0] == 0
    assert bounds[-1] == total_pairs
    assert bounds == sorted(bounds)
    # Consecutive [start, stop) ranges tile [0, total_pairs) with no gap
    # and no overlap, and shard widths are balanced to within one pair.
    widths = [bounds[i + 1] - bounds[i] for i in range(num_shards)]
    assert sum(widths) == total_pairs
    assert all(w >= 0 for w in widths)
    if total_pairs >= num_shards:
        assert max(widths) - min(widths) <= 1


# ---------------------------------------------------------------------------
# place_units: deterministic, order-insensitive LPT
# ---------------------------------------------------------------------------


@st.composite
def work_units(draw):
    n = draw(st.integers(1, 40))
    costs = draw(
        st.lists(
            st.floats(0.0, 1e4, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    return [(f"unit{i:03d}", cost) for i, cost in enumerate(costs)]


@seed(20260807)
@given(
    units=work_units(),
    num_tasks=st.integers(1, 12),
    shuffle_seed=st.integers(0, 2**16),
)
def test_place_units_is_order_insensitive(units, num_tasks, shuffle_seed):
    baseline = place_units(units, num_tasks)
    shuffled = list(units)
    random.Random(shuffle_seed).shuffle(shuffled)
    assert place_units(shuffled, num_tasks) == baseline
    assert set(baseline) == {key for key, _ in units}
    assert all(0 <= task < num_tasks for task in baseline.values())


@seed(20260807)
@given(units=work_units(), num_tasks=st.integers(1, 12))
def test_place_units_respects_lpt_bound(units, num_tasks):
    """LPT's classic guarantee: makespan <= mean + heaviest unit."""
    assignment = place_units(units, num_tasks)
    loads = [0.0] * num_tasks
    for key, cost in units:
        loads[assignment[key]] += cost
    total = sum(cost for _, cost in units)
    heaviest = max((cost for _, cost in units), default=0.0)
    assert max(loads) <= total / num_tasks + heaviest + 1e-6


# ---------------------------------------------------------------------------
# blocksplit vs slack on adversarial single-giant workloads
# ---------------------------------------------------------------------------


def _toy_schedule(sizes, num_tasks):
    """A schedule of childless root blocks, one per size, LPT-assigned.

    Costs equal the mechanism pair count (``cost_a = 0``), the worst case
    for skew: all virtual time is comparisons.
    """
    trees = {}
    estimates = {}
    for i, n in enumerate(sizes):
        block = Block(
            family="X", level=1, key=f"b{i:03d}", entity_ids=(), size_override=n
        )
        pairs = window_pairs_count(n, _WINDOW)
        cost = float(max(pairs, 1))
        trees[block.uid] = block
        estimates[block.uid] = BlockEstimate(
            cov=0,
            d=0.5,
            frac=1.0,
            th=n,
            window=_WINDOW,
            dup=1.0,
            cost_p=cost,
            cost=cost,
            util=1.0 / cost,
            full=True,
        )
    order = sorted(trees, key=lambda u: (-estimates[u].cost, u))
    loads = [0.0] * num_tasks
    assignment = {}
    for uid in order:
        task = min(range(num_tasks), key=lambda t: (loads[t], t))
        assignment[uid] = task
        loads[task] += estimates[uid].cost
    schedule = ProgressiveSchedule(
        num_tasks=num_tasks,
        trees=trees,
        estimates=estimates,
        assignment=assignment,
        block_order=build_block_orders(trees, estimates, assignment, num_tasks),
        dominance={uid: i for i, uid in enumerate(sorted(trees))},
        tree_of_block={uid: uid for uid in trees},
        main_tree={},
        split_roots={},
        sequence={},
        sequence_stride=1,
        cost_vector=[1.0],
        weights=[1.0],
        generation_cost=0.0,
        blocks=dict(trees),
    )
    recompute_sequence(schedule)
    return schedule


def _giant_size_for(small_sizes, num_tasks):
    """A block size whose pair count dwarfs the rest: the giant alone must
    exceed twice the post-split mean load, so splitting provably wins."""
    small_pairs = sum(window_pairs_count(n, _WINDOW) for n in small_sizes)
    target = max(2 * small_pairs + 4 * num_tasks, 50)
    size = _WINDOW
    while window_pairs_count(size, _WINDOW) < target:
        size *= 2
    return size


@seed(20260807)
@settings(max_examples=40, deadline=None)
@given(
    small_sizes=st.lists(st.integers(2, 12), min_size=0, max_size=12),
    num_tasks=st.integers(3, 8),
)
def test_blocksplit_never_loses_to_slack_on_giant_blocks(small_sizes, num_tasks):
    sizes = list(small_sizes) + [_giant_size_for(small_sizes, num_tasks)]
    slack_schedule = _toy_schedule(sizes, num_tasks)
    split_schedule = copy.deepcopy(slack_schedule)

    slack_plan = apply_balance(slack_schedule, strategy="slack")
    split_plan = apply_balance(split_schedule, strategy="blocksplit")

    assert split_plan.shards, "the giant block was not sharded"
    assert split_plan.after.max <= slack_plan.after.max + 1e-6
    assert split_plan.after.max_over_mean <= slack_plan.after.max_over_mean + 1e-6

    # The shards of each split root tile its pair stream exactly.
    by_block = {}
    for shard in split_plan.shards:
        by_block.setdefault(shard.block_uid, []).append(shard)
    for uid, shards in by_block.items():
        shards.sort(key=lambda s: s.index)
        root = split_schedule.trees[uid]
        total = window_pairs_count(root.size, split_schedule.estimates[uid].window)
        assert shards[0].start == 0
        assert shards[-1].stop == total
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start

    # The rewritten schedule stays well-formed: every order entry is a
    # known block or shard, each shard appears exactly once, and the skew
    # report matches the block orders.
    entries = [e for order in split_schedule.block_order for e in order]
    assert len(entries) == len(set(entries))
    known = set(split_schedule.tree_of_block) | set(split_schedule.shards)
    home_replaced = {s.key for s in split_plan.shards if s.index == 0}
    assert set(entries) == (known - set(by_block)) | home_replaced | {
        s.key for s in split_plan.shards if s.index > 0
    }
    assert skew_report(split_schedule) == split_plan.after


# ---------------------------------------------------------------------------
# global pairrange: cuts tile the pair space, loads stay within one unit
# ---------------------------------------------------------------------------


@seed(20260807)
@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(2, 40), min_size=1, max_size=16),
    num_tasks=st.integers(2, 8),
)
def test_global_pairrange_cuts_tile_pair_space(sizes, num_tasks):
    """Every block the global cuts split is tiled exactly by its shards."""
    schedule = _toy_schedule(sizes, num_tasks)
    plan = apply_balance(schedule, strategy="pairrange")

    by_block = {}
    for shard in plan.shards:
        by_block.setdefault(shard.block_uid, []).append(shard)
    assert set(by_block) == set(plan.split_blocks)
    for uid, shards in by_block.items():
        shards.sort(key=lambda s: s.index)
        total = window_pairs_count(
            schedule.trees[uid].size, schedule.estimates[uid].window
        )
        assert shards[0].start == 0
        assert shards[-1].stop == total
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start
        assert all(s.stop > s.start for s in shards)
    # The rewritten schedule stays well-formed: no order entry is
    # duplicated and the skew report matches the block orders.
    entries = [e for order in schedule.block_order for e in order]
    assert len(entries) == len(set(entries))
    assert skew_report(schedule) == plan.after


@seed(20260807)
@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(2, 60), min_size=1, max_size=16),
    num_tasks=st.integers(2, 8),
)
def test_global_pairrange_load_bound(sizes, num_tasks):
    """Max planned load <= mean + the largest placed unit's cost.

    Work units are disjoint contiguous intervals of the global cost axis
    and each lands on the equal-width task range containing its midpoint,
    so a task's load can exceed its range width (the mean) by at most half
    of its first unit plus half of its last — bounded by one whole unit.
    (Toy blocks have ``cost_a = 0``, so a unit's cost equals its axis
    width exactly and the geometric bound is tight.)
    """
    schedule = _toy_schedule(sizes, num_tasks)
    plan = apply_balance(schedule, strategy="pairrange")

    split = set(plan.split_blocks)
    unit_costs = [
        schedule.estimates[uid].cost
        for uid in schedule.trees
        if uid not in split
    ]
    unit_costs.extend(shard.cost for shard in plan.shards)
    total = sum(unit_costs)
    assert abs(total - plan.after.total) <= 1e-6 * max(total, 1.0)
    assert plan.after.max <= total / num_tasks + max(unit_costs) + 1e-6


@seed(20260807)
@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(2, 30), min_size=1, max_size=20),
    num_tasks=st.integers(1, 8),
)
def test_apply_balance_is_deterministic(sizes, num_tasks):
    for strategy in ("blocksplit", "pairrange", "pairrange-tree"):
        first = _toy_schedule(sizes, num_tasks)
        second = copy.deepcopy(first)
        plan_a = apply_balance(first, strategy=strategy)
        plan_b = apply_balance(second, strategy=strategy)
        assert plan_a == plan_b
        assert first.assignment == second.assignment
        assert first.block_order == second.block_order
        assert first.shards == second.shards
        assert first.sequence == second.sequence
