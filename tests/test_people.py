"""Tests for the census-style people dataset family."""

import pytest

from repro.blocking import people_scheme
from repro.core import ProgressiveER, people_config
from repro.data import make_people
from repro.mapreduce import Cluster
from repro.similarity.matchers import people_matcher


@pytest.fixture(scope="module")
def people_small():
    return make_people(600, seed=13)


@pytest.fixture(scope="module")
def people_cached_matcher():
    return people_matcher(cache=True)


class TestPeopleData:
    def test_schema(self, people_small):
        attrs = set()
        for e in people_small:
            attrs |= set(e.attrs)
        assert attrs == {
            "name", "surname", "street", "city", "state", "zip",
            "birth_year", "phone",
        }

    def test_ground_truth_present(self, people_small):
        assert people_small.num_true_pairs > 50

    def test_deterministic(self):
        a = make_people(150, seed=5)
        b = make_people(150, seed=5)
        assert [e.attrs for e in a] == [e.attrs for e in b]

    def test_state_is_rarely_perturbed(self, people_small):
        """Like Table I: duplicates usually agree on state."""
        same = 0
        checked = 0
        for a, b in list(people_small.true_pairs)[:200]:
            sa = people_small.entity(a).get("state")
            sb = people_small.entity(b).get("state")
            if sa and sb:
                checked += 1
                same += sa == sb
        assert checked > 0
        assert same / checked > 0.8


class TestPeopleScheme:
    def test_families_and_dominance(self):
        scheme = people_scheme()
        assert scheme.family_order == ["X", "Y", "Z"]
        assert scheme.main_function("X").description == "surname.sub(0, 2)"
        assert scheme.main_function("Z").description == "state.sub(0, 2)"
        assert scheme.depth("Z") == 0  # state cannot be meaningfully refined

    def test_matcher_shape(self):
        matcher = people_matcher()
        assert len(matcher.rules) == 8
        comparators = {r.comparator for r in matcher.rules}
        assert comparators == {"edit", "exact"}


class TestPeoplePipeline:
    def test_end_to_end(self, people_small, people_cached_matcher):
        config = people_config(matcher=people_cached_matcher)
        result = ProgressiveER(config, Cluster(2)).run(people_small)
        recall = len(result.found_pairs & people_small.true_pairs)
        assert recall / people_small.num_true_pairs > 0.6
        precision = len(result.found_pairs & people_small.true_pairs) / len(
            result.found_pairs
        )
        assert precision > 0.85
