"""Unit tests for blocking functions, schemes, blocks and the blocker."""

import pytest

from repro.blocking import (
    Block,
    BlockingScheme,
    books_scheme,
    build_forest,
    build_forests,
    citeseer_scheme,
    group_by_key,
    prefix_function,
    tree_of,
)
from repro.data import Dataset, Entity


def _entities(*titles):
    return [Entity(id=i, attrs={"title": t}) for i, t in enumerate(titles)]


class TestPrefixFunction:
    def test_extracts_prefix(self):
        f = prefix_function("X", 1, "title", 2)
        assert f.key_of(Entity(id=0, attrs={"title": "Progressive ER"})) == "pr"

    def test_normalizes_whitespace_and_case(self):
        f = prefix_function("X", 1, "title", 4)
        assert f.key_of(Entity(id=0, attrs={"title": "  The   Book "})) == "the "

    def test_missing_attribute_excluded(self):
        f = prefix_function("X", 1, "title", 2)
        assert f.key_of(Entity(id=0, attrs={})) is None

    def test_short_values_keep_whole_string(self):
        f = prefix_function("X", 1, "title", 10)
        assert f.key_of(Entity(id=0, attrs={"title": "ab"})) == "ab"

    def test_name_and_description(self):
        f = prefix_function("Y", 2, "abstract", 5)
        assert f.name == "Y2"
        assert f.description == "abstract.sub(0, 5)"

    def test_length_validation(self):
        with pytest.raises(ValueError):
            prefix_function("X", 1, "title", 0)


class TestBlockingScheme:
    def test_paper_table2_citeseer(self):
        scheme = citeseer_scheme()
        assert scheme.family_order == ["X", "Y", "Z"]
        assert scheme.depth("X") == 2  # two sub-blocking functions
        assert scheme.depth("Y") == 1
        assert scheme.depth("Z") == 1
        assert scheme.main_function("X").description == "title.sub(0, 2)"

    def test_paper_table2_books(self):
        scheme = books_scheme()
        assert scheme.main_function("X").description == "title.sub(0, 3)"
        assert scheme.num_families == 3

    def test_index_of_follows_dominance_order(self):
        scheme = citeseer_scheme()
        assert scheme.index_of("X") == 1
        assert scheme.index_of("Y") == 2
        assert scheme.index_of("Z") == 3

    def test_level_gap_rejected(self):
        with pytest.raises(ValueError):
            BlockingScheme(
                families={
                    "X": [prefix_function("X", 1, "t", 2), prefix_function("X", 3, "t", 4)]
                }
            )

    def test_wrong_family_rejected(self):
        with pytest.raises(ValueError):
            BlockingScheme(families={"X": [prefix_function("Y", 1, "t", 2)]})

    def test_empty_scheme_rejected(self):
        with pytest.raises(ValueError):
            BlockingScheme(families={})


class TestBlock:
    def _tree(self):
        root = Block(family="X", level=1, key="th", entity_ids=(1, 2, 3, 4))
        left = Block(family="X", level=2, key="the ", entity_ids=(1, 2))
        right = Block(family="X", level=2, key="thre", entity_ids=(3, 4))
        root.add_child(left)
        root.add_child(right)
        return root, left, right

    def test_uid(self):
        root, *_ = self._tree()
        assert root.uid == "X1:th"

    def test_size_and_pairs(self):
        root, left, _ = self._tree()
        assert root.size == 4
        assert root.total_pairs == 6
        assert left.total_pairs == 1

    def test_size_override(self):
        b = Block(family="X", level=1, key="a", entity_ids=(), size_override=10)
        assert b.size == 10
        assert b.total_pairs == 45

    def test_tree_navigation(self):
        root, left, right = self._tree()
        assert root.is_root and not root.is_leaf
        assert left.is_leaf and not left.is_root
        assert left.root is root
        assert tree_of(right) is root
        assert list(root.descendants()) == [left, right]

    def test_bottom_up_order(self):
        root, left, right = self._tree()
        order = list(root.subtree_bottom_up())
        assert order.index(left) < order.index(root)
        assert order.index(right) < order.index(root)

    def test_detach_child(self):
        root, left, right = self._tree()
        detached = root.detach_child(left)
        assert detached.is_root
        assert root.children == [right]
        with pytest.raises(ValueError):
            root.detach_child(left)

    def test_add_child_rejects_reparenting(self):
        root, left, _ = self._tree()
        other = Block(family="X", level=1, key="zz", entity_ids=(9, 10))
        with pytest.raises(ValueError):
            other.add_child(left)

    def test_unsorted_ids_rejected(self):
        with pytest.raises(ValueError):
            Block(family="X", level=1, key="a", entity_ids=(3, 1))


class TestBlocker:
    def _dataset(self):
        return Dataset(entities=_entities(
            "the graph", "the grape", "the grain",
            "thin ice", "thin air",
            "a model", "a map",
            "unique title",
        ))

    def test_main_blocks_partition_blocked_entities(self):
        ds = self._dataset()
        scheme = BlockingScheme(families={"X": [prefix_function("X", 1, "title", 2)]})
        forest = build_forest(ds, scheme, "X")
        all_ids = [eid for root in forest.roots for eid in root.entity_ids]
        assert len(all_ids) == len(set(all_ids))  # disjoint blocks

    def test_singleton_blocks_pruned(self):
        ds = self._dataset()
        scheme = BlockingScheme(families={"X": [prefix_function("X", 1, "title", 2)]})
        forest = build_forest(ds, scheme, "X")
        keys = {root.key for root in forest.roots}
        assert "un" not in keys  # "unique title" stands alone
        assert all(root.size >= 2 for root in forest.roots)

    def test_children_are_subsets_of_parents(self, citeseer_small):
        forests = build_forests(citeseer_small, citeseer_scheme())
        for forest in forests.values():
            for block in forest.blocks():
                for child in block.children:
                    assert set(child.entity_ids) <= set(block.entity_ids)
                    assert child.size < block.size

    def test_child_levels_increase(self, citeseer_small):
        forests = build_forests(citeseer_small, citeseer_scheme())
        for forest in forests.values():
            for block in forest.blocks():
                for child in block.children:
                    assert child.level > block.level

    def test_skip_through_when_subkey_does_not_divide(self):
        # All titles share the 4-char prefix, but differ at the 8-char one:
        # level 2 is skipped and level-3 children attach directly to the root.
        ds = Dataset(entities=_entities(
            "prog alpha", "prog alpha x", "prog beta", "prog beta y"
        ))
        scheme = BlockingScheme(
            families={
                "X": [
                    prefix_function("X", 1, "title", 2),
                    prefix_function("X", 2, "title", 4),
                    prefix_function("X", 3, "title", 8),
                ]
            }
        )
        forest = build_forest(ds, scheme, "X")
        assert len(forest.roots) == 1
        root = forest.roots[0]
        assert {c.level for c in root.children} == {3}
        assert {c.key for c in root.children} == {"prog alp", "prog bet"}

    def test_uid_uniqueness(self, citeseer_small):
        forests = build_forests(citeseer_small, citeseer_scheme())
        uids = [b.uid for forest in forests.values() for b in forest.blocks()]
        assert len(uids) == len(set(uids))

    def test_group_by_key_excludes_missing(self):
        entities = [Entity(id=0, attrs={"title": "abc"}), Entity(id=1, attrs={})]
        f = prefix_function("X", 1, "title", 2)
        groups = group_by_key(entities, f)
        assert groups == {"ab": [0]}

    def test_forest_iteration(self, citeseer_small):
        forest = build_forest(citeseer_small, citeseer_scheme(), "X")
        assert len(forest) == len(forest.roots)
        assert forest.num_blocks == sum(1 for _ in forest.blocks())
