"""Unit tests for the Dataset container and its ground truth."""

import itertools

import pytest

from repro.data import Dataset, Entity, pair_key


def _dataset():
    entities = [Entity(id=i, attrs={"name": f"n{i}"}) for i in range(6)]
    clusters = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2}
    return Dataset(entities=entities, clusters=clusters, name="t")


class TestBasics:
    def test_len_and_iter(self):
        ds = _dataset()
        assert len(ds) == 6
        assert [e.id for e in ds] == list(range(6))

    def test_entity_lookup(self):
        ds = _dataset()
        assert ds.entity(3).get("name") == "n3"

    def test_contains(self):
        ds = _dataset()
        assert 5 in ds
        assert 99 not in ds

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Dataset(entities=[Entity(id=1, attrs={}), Entity(id=1, attrs={})])

    def test_attributes_order(self):
        ds = Dataset(
            entities=[
                Entity(id=0, attrs={"b": "1", "a": "2"}),
                Entity(id=1, attrs={"c": "3"}),
            ]
        )
        assert ds.attributes() == ["b", "a", "c"]


class TestGroundTruth:
    def test_true_pairs_from_clusters(self):
        ds = _dataset()
        # cluster 0 = {0,1,2} -> 3 pairs; cluster 1 = {3,4} -> 1 pair.
        assert ds.true_pairs == frozenset(
            {(0, 1), (0, 2), (1, 2), (3, 4)}
        )
        assert ds.num_true_pairs == 4

    def test_is_true_pair(self):
        ds = _dataset()
        assert ds.is_true_pair(pair_key(2, 0))
        assert not ds.is_true_pair(pair_key(0, 5))

    def test_no_ground_truth(self):
        ds = Dataset(entities=[Entity(id=0, attrs={})])
        assert not ds.has_ground_truth
        assert ds.num_true_pairs == 0

    def test_singleton_clusters_make_no_pairs(self):
        ds = Dataset(
            entities=[Entity(id=0, attrs={}), Entity(id=1, attrs={})],
            clusters={0: 0, 1: 1},
        )
        assert ds.num_true_pairs == 0


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "ds.csv"
        ds.to_csv(path)
        loaded = Dataset.from_csv(path, name="t")
        assert len(loaded) == len(ds)
        assert loaded.true_pairs == ds.true_pairs
        for e in ds:
            assert loaded.entity(e.id).attrs == e.attrs

    def test_missing_attributes_survive(self, tmp_path):
        ds = Dataset(
            entities=[
                Entity(id=0, attrs={"a": "x"}),
                Entity(id=1, attrs={"b": "y"}),
            ],
            clusters={0: 0, 1: 0},
        )
        path = tmp_path / "ds.csv"
        ds.to_csv(path)
        loaded = Dataset.from_csv(path)
        assert loaded.entity(0).attrs == {"a": "x"}
        assert loaded.entity(1).attrs == {"b": "y"}

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            Dataset.from_csv(path)


class TestSample:
    def test_sample_size(self):
        ds = _dataset()
        sample = ds.sample(0.5, seed=1)
        assert len(sample) == 3

    def test_sample_reproducible(self):
        ds = _dataset()
        ids1 = [e.id for e in ds.sample(0.5, seed=1)]
        ids2 = [e.id for e in ds.sample(0.5, seed=1)]
        assert ids1 == ids2

    def test_sample_clusters_restricted(self):
        ds = _dataset()
        sample = ds.sample(0.5, seed=2)
        assert set(sample.clusters) == {e.id for e in sample}

    def test_sample_fraction_validation(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            ds.sample(0.0)
        with pytest.raises(ValueError):
            ds.sample(1.5)

    def test_sample_true_pairs_subset(self):
        ds = _dataset()
        sample = ds.sample(0.8, seed=3)
        assert sample.true_pairs <= ds.true_pairs
