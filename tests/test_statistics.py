"""Unit tests for the Job-1 statistics (progressive blocking + OLP data)."""

import pytest

from repro.blocking import build_forests, citeseer_scheme
from repro.core.statistics import (
    BlockRecord,
    DatasetStatistics,
    run_statistics_job,
)
from repro.mapreduce import Cluster


@pytest.fixture(scope="module")
def stats_bundle(request):
    dataset = request.getfixturevalue("citeseer_small")
    cluster = Cluster(3)
    scheme = citeseer_scheme()
    annotated, stats, job = run_statistics_job(cluster, dataset, scheme)
    return dataset, scheme, annotated, stats, job


class TestAnnotatedDataset:
    def test_one_annotation_per_entity(self, stats_bundle):
        dataset, _, annotated, _, _ = stats_bundle
        assert len(annotated) == len(dataset)
        assert [a[0].id for a in annotated] == sorted(e.id for e in dataset)

    def test_annotations_match_main_keys(self, stats_bundle):
        dataset, scheme, annotated, _, _ = stats_bundle
        for entity, keys in annotated[:100]:
            for family in scheme.family_order:
                assert keys[family] == scheme.main_function(family).key_of(entity)


class TestStructuralAgreement:
    def test_trees_match_blocker_forests(self, stats_bundle):
        dataset, scheme, _, stats, _ = stats_bundle
        forests = build_forests(dataset, scheme)

        def signature(root):
            return sorted(
                (b.family, b.level, b.key, b.size, b.parent.uid if b.parent else None)
                for b in root.subtree()
            )

        from_blocker = sorted(
            signature(r) for forest in forests.values() for r in forest.roots
        )
        from_stats = sorted(
            signature(r) for roots in stats.roots.values() for r in roots
        )
        assert from_blocker == from_stats

    def test_block_sizes_at_least_two(self, stats_bundle):
        *_, stats, _ = stats_bundle
        assert all(b.size >= 2 for b in stats.blocks.values())

    def test_num_blocks_consistent(self, stats_bundle):
        *_, stats, _ = stats_bundle
        traversed = sum(
            1 for roots in stats.roots.values() for r in roots for _ in r.subtree()
        )
        assert stats.num_blocks == traversed


class TestOverlapHistograms:
    def test_histogram_mass_equals_block_size(self, stats_bundle):
        *_, stats, _ = stats_bundle
        for uid, block in stats.blocks.items():
            histogram = stats.overlaps[uid]
            assert sum(histogram.values()) == block.size

    def test_signature_width_is_number_of_dominating_families(self, stats_bundle):
        dataset, scheme, _, stats, _ = stats_bundle
        for uid, block in stats.blocks.items():
            width = scheme.index_of(block.family) - 1
            for signature in stats.overlaps[uid]:
                assert len(signature) == width

    def test_most_dominating_family_has_empty_signatures(self, stats_bundle):
        *_, stats, _ = stats_bundle
        for uid, block in stats.blocks.items():
            if block.family == "X":
                assert set(stats.overlaps[uid]) <= {()}

    def test_histograms_match_direct_computation(self, stats_bundle):
        dataset, scheme, _, stats, _ = stats_bundle
        forests = build_forests(dataset, scheme)
        mains = {f: scheme.main_function(f) for f in scheme.family_order}
        for forest in forests.values():
            for block in forest.blocks():
                dominating = scheme.family_order[: scheme.index_of(block.family) - 1]
                expected = {}
                for eid in block.entity_ids:
                    entity = dataset.entity(eid)
                    sig = tuple(mains[f].key_of(entity) for f in dominating)
                    expected[sig] = expected.get(sig, 0) + 1
                assert stats.overlaps[block.uid] == expected


class TestFromRecords:
    def test_duplicate_uid_rejected(self):
        scheme = citeseer_scheme()
        record = BlockRecord(
            family="X", level=1, key="ab", size=2, parent_uid=None, overlap={(): 2}
        )
        with pytest.raises(ValueError):
            DatasetStatistics.from_records(scheme, [record, record])

    def test_parent_links_rebuilt(self):
        scheme = citeseer_scheme()
        records = [
            BlockRecord("X", 1, "ab", 4, None, {(): 4}),
            BlockRecord("X", 2, "abcd", 2, "X1:ab", {(): 2}),
        ]
        stats = DatasetStatistics.from_records(scheme, records)
        root = stats.roots["X"][0]
        assert root.uid == "X1:ab"
        assert [c.uid for c in root.children] == ["X2:abcd"]
        assert root.children[0].parent is root


class TestJobAccounting:
    def test_job_has_positive_duration(self, stats_bundle):
        *_, job = stats_bundle
        assert job.end_time > job.start_time
        assert job.map_phase_end > job.start_time

    def test_reduce_phase_after_map_phase(self, stats_bundle):
        *_, job = stats_bundle
        for task in job.reduce_tasks:
            assert task.start_time >= job.map_phase_end
