"""Tests for the vocabulary generators behind the synthetic datasets."""

import random
from collections import Counter

import pytest

from repro.data.vocab import (
    TITLE_LEADS,
    VENUES,
    make_abstract,
    make_author_list,
    make_person,
    make_title,
    zipf_choice,
)


class TestZipfChoice:
    def test_head_heavier_than_tail(self):
        rng = random.Random(0)
        counts = Counter(zipf_choice(rng, TITLE_LEADS, skew=1.5) for _ in range(5000))
        head = counts[TITLE_LEADS[0]]
        tail = counts[TITLE_LEADS[-1]]
        assert head > tail * 3

    def test_deterministic_with_seed(self):
        a = [zipf_choice(random.Random(1), VENUES) for _ in range(5)]
        b = [zipf_choice(random.Random(1), VENUES) for _ in range(5)]
        assert a == b

    def test_only_pool_members(self):
        rng = random.Random(2)
        for _ in range(50):
            assert zipf_choice(rng, VENUES) in VENUES


class TestTextFactories:
    def test_title_word_count(self):
        rng = random.Random(3)
        for _ in range(30):
            words = make_title(rng, min_words=3, max_words=8).split()
            assert 3 <= len(words) <= 8

    def test_title_starts_with_lead_word(self):
        rng = random.Random(4)
        for _ in range(30):
            assert make_title(rng).split()[0] in TITLE_LEADS

    def test_person_has_two_names(self):
        rng = random.Random(5)
        assert len(make_person(rng).split()) == 2

    def test_author_list_bounds(self):
        rng = random.Random(6)
        for _ in range(30):
            authors = make_author_list(rng, max_authors=3).split(", ")
            assert 1 <= len(authors) <= 3

    def test_abstract_length_regime(self):
        rng = random.Random(7)
        lengths = [len(make_abstract(rng)) for _ in range(40)]
        # Deliberately compact (see the docstring): well under the 350-char
        # comparison cap, above trivial.
        assert 40 < sum(lengths) / len(lengths) < 250
