"""Unit tests for the approach configuration and weighting functions."""

import pytest

from repro.blocking import Block, citeseer_scheme
from repro.core.config import (
    ApproachConfig,
    LevelPolicy,
    books_config,
    citeseer_config,
    exponential_weights,
    linear_weights,
    make_budget_weighting,
)


def _block(level, *, root=False, leaf=False, size=10):
    block = Block(family="X", level=level, key="k", entity_ids=(), size_override=size)
    if not root:
        parent = Block(family="X", level=1, key="p", entity_ids=(), size_override=size * 2)
        parent.add_child(block)
    if not leaf:
        child = Block(
            family="X", level=level + 1, key="c", entity_ids=(), size_override=2
        )
        block.add_child(child)
    return block


class TestLevelPolicy:
    def test_paper_windows(self):
        policy = LevelPolicy()
        assert policy.window_of(_block(1, root=True)) == 15
        assert policy.window_of(_block(2)) == 10
        assert policy.window_of(_block(3, leaf=True)) == 5

    def test_paper_fracs(self):
        policy = LevelPolicy(leaf_frac=0.8, mid_frac=0.9)
        assert policy.frac_of(_block(1, root=True)) == 1.0
        assert policy.frac_of(_block(2)) == 0.9
        assert policy.frac_of(_block(3, leaf=True)) == 0.8

    def test_threshold_is_block_size(self):
        policy = LevelPolicy()
        assert policy.threshold_of(_block(2, size=37)) == 37


class TestWeightingFunctions:
    def test_linear_decreasing(self):
        values = [linear_weights(i, 10) for i in range(10)]
        assert values[0] == 1.0
        assert values == sorted(values, reverse=True)
        assert all(0 < v <= 1 for v in values)

    def test_exponential_halves(self):
        assert exponential_weights(0, 5) == 1.0
        assert exponential_weights(1, 5) == 0.5
        assert exponential_weights(3, 5) == 0.125

    def test_budget_weighting_step(self):
        weighting = make_budget_weighting(0.5)
        values = [weighting(i, 10) for i in range(10)]
        assert values[:5] == [1.0] * 5
        assert all(v < 0.01 for v in values[5:])

    def test_budget_weighting_validation(self):
        with pytest.raises(ValueError):
            make_budget_weighting(0.0)
        with pytest.raises(ValueError):
            make_budget_weighting(1.5)


class TestApproachConfig:
    def test_presets_match_paper(self):
        citeseer = citeseer_config()
        assert citeseer.mechanism.name == "sn-hint"
        assert citeseer.levels.leaf_frac == 0.8
        assert citeseer.levels.mid_frac == 0.9
        books = books_config()
        assert books.mechanism.name == "psnm"
        assert books.levels.leaf_frac == 0.85
        assert books.levels.mid_frac == 0.95

    def test_sort_attribute_follows_blocking_function(self):
        config = citeseer_config()
        assert config.sort_attribute("X") == "title"
        assert config.sort_attribute("Y") == "abstract"
        assert config.sort_attribute("Z") == "venue"

    def test_validation(self):
        with pytest.raises(ValueError):
            citeseer_config(num_intervals=0)
        with pytest.raises(ValueError):
            citeseer_config(split_batch=0)
        with pytest.raises(ValueError):
            citeseer_config(train_fraction=0.0)
        with pytest.raises(ValueError):
            citeseer_config(estimator="magic")

    def test_overrides_apply(self):
        config = citeseer_config(alpha=50.0, estimator="oracle")
        assert config.alpha == 50.0
        assert config.estimator == "oracle"

    def test_redundancy_toggle_default_on(self):
        assert citeseer_config().redundancy_free is True
        assert citeseer_config(redundancy_free=False).redundancy_free is False
