"""White-box tests of Job-2 driver internals: tree chains with splits,
event deduplication, and cost-factor sampling."""

import pytest

from repro.core.driver import ProgressiveER, ResolutionMapper, _first_discoveries
from repro.core import citeseer_config
from repro.mapreduce import Cluster
from repro.mapreduce.types import Event


class TestFirstDiscoveries:
    def test_keeps_earliest_per_pair(self):
        events = [
            Event(time=5.0, kind="duplicate", payload=(1, 2)),
            Event(time=2.0, kind="duplicate", payload=(1, 2)),
            Event(time=3.0, kind="duplicate", payload=(3, 4)),
            Event(time=9.0, kind="other", payload=(5, 6)),
        ]
        kept = _first_discoveries(events)
        assert [(e.time, e.payload) for e in kept] == [(2.0, (1, 2)), (3.0, (3, 4))]

    def test_empty(self):
        assert _first_discoveries([]) == []


class TestCostFactorSampling:
    def test_reasonable_range(self, citeseer_small, citeseer_cfg):
        er = ProgressiveER(citeseer_cfg, Cluster(1))
        factor = er._average_cost_factor(citeseer_small)
        assert 0.2 <= factor <= 10.0

    def test_deterministic_per_seed(self, citeseer_small, citeseer_cfg):
        a = ProgressiveER(citeseer_cfg, Cluster(1), seed=3)
        b = ProgressiveER(citeseer_cfg, Cluster(1), seed=3)
        assert a._average_cost_factor(citeseer_small) == b._average_cost_factor(
            citeseer_small
        )

    def test_tiny_dataset_falls_back(self, citeseer_cfg):
        from repro.data import Dataset, Entity

        er = ProgressiveER(citeseer_cfg, Cluster(1))
        ds = Dataset(entities=[Entity(id=0, attrs={})])
        assert er._average_cost_factor(ds) == 1.0


class TestSplitTreeRouting:
    def test_entities_routed_to_split_trees(
        self, citeseer_medium, shared_citeseer_matcher
    ):
        """When the schedule splits a sub-tree off, the mapper must emit
        the sub-tree's entities to it (with the (n+1)-st dominance entry
        on the parent-tree emission)."""
        config = citeseer_config(matcher=shared_citeseer_matcher)
        result = ProgressiveER(config, Cluster(10)).run(citeseer_medium)
        schedule = result.schedule
        split_trees = [
            uid for family in schedule.split_roots.values() for _, _, uid in family
        ]
        if not split_trees:
            pytest.skip("no tree was split at this scale")
        # Every split tree must have received routed entities: its blocks
        # were resolved, so its root block appears in some task's order and
        # produced comparisons or at least got members.
        n = config.scheme.num_families
        routed_to_split = set()
        long_lists = 0
        for task in result.job2.map_tasks:
            for key, (entity, dom_list) in task.output:
                if key in split_trees:
                    routed_to_split.add(key)
                if len(dom_list) > n:
                    long_lists += 1
        assert routed_to_split == set(split_trees)
        assert long_lists > 0, "parent-tree emissions must carry split entries"

    def test_split_entries_reference_real_trees(
        self, citeseer_medium, shared_citeseer_matcher
    ):
        config = citeseer_config(matcher=shared_citeseer_matcher)
        result = ProgressiveER(config, Cluster(10)).run(citeseer_medium)
        schedule = result.schedule
        doms = set(schedule.dominance.values())
        n = config.scheme.num_families
        for task in result.job2.map_tasks:
            for _, (entity, dom_list) in task.output:
                if len(dom_list) > n:
                    assert dom_list[n] in doms
