"""Unit tests for dominance lists and SHOULD-RESOLVE (paper Figure 7)."""

import pytest

from repro.core.redundancy import (
    build_dominance_list,
    missing_sentinel,
    should_resolve,
)


class TestSentinels:
    def test_negative_and_unique(self):
        assert missing_sentinel(0) == -1
        assert missing_sentinel(5) == -6
        assert missing_sentinel(3) != missing_sentinel(4)


class TestBuildDominanceList:
    def test_own_family_entry_is_emitted_tree(self):
        lst = build_dominance_list(
            entity_id=7,
            own_index=2,
            num_families=3,
            family_trees=[10, 20, 30],
            emitted_tree=99,
            split_descendant=None,
        )
        assert lst == [10, 99, 30]

    def test_missing_family_gets_sentinel(self):
        lst = build_dominance_list(
            entity_id=7,
            own_index=1,
            num_families=3,
            family_trees=[5, None, None],
            emitted_tree=5,
            split_descendant=None,
        )
        assert lst == [5, missing_sentinel(7), missing_sentinel(7)]

    def test_split_descendant_appended(self):
        lst = build_dominance_list(
            entity_id=1,
            own_index=1,
            num_families=2,
            family_trees=[4, 8],
            emitted_tree=4,
            split_descendant=42,
        )
        assert lst == [4, 8, 42]
        assert len(lst) == 3  # n + 1

    def test_wrong_family_count_rejected(self):
        with pytest.raises(ValueError):
            build_dominance_list(
                entity_id=1,
                own_index=1,
                num_families=3,
                family_trees=[1, 2],
                emitted_tree=1,
                split_descendant=None,
            )


class TestShouldResolve:
    def test_most_dominating_family_always_resolves(self):
        # index = 1: the loop body never runs; no split entries.
        assert should_resolve([1, 2, 3], [1, 9, 9], index=1, num_families=3)

    def test_defers_to_dominating_family(self):
        # Both entities share the X tree (entry 0) -> a Y block must skip.
        list_k = [7, 2, 3]
        list_l = [7, 5, 6]
        assert not should_resolve(list_k, list_l, index=2, num_families=3)

    def test_resolves_when_no_dominating_overlap(self):
        list_k = [1, 2, 3]
        list_l = [4, 2, 6]
        assert should_resolve(list_k, list_l, index=2, num_families=3)

    def test_sentinels_never_match(self):
        list_k = [missing_sentinel(1), 2]
        list_l = [missing_sentinel(2), 2]
        assert should_resolve(list_k, list_l, index=2, num_families=2)

    def test_defers_to_split_subtree(self):
        # Both entities carry the same (n+1)-st split entry: the pair lives
        # inside a split-off sub-tree and is resolved there.
        list_k = [1, 2, 42]
        list_l = [9, 2, 42]
        assert not should_resolve(list_k, list_l, index=2, num_families=2)

    def test_different_split_subtrees_resolve(self):
        list_k = [1, 2, 42]
        list_l = [9, 2, 43]
        assert should_resolve(list_k, list_l, index=2, num_families=2)

    def test_one_sided_split_entry_resolves(self):
        list_k = [1, 2, 42]
        list_l = [9, 2]
        assert should_resolve(list_k, list_l, index=2, num_families=2)

    def test_paper_example_list(self):
        """Section V's example: T(X2_1) split from T(X1_1), T(X3_1) split
        from T(X2_1).  List(e1, X2_1) = [Dom(T(X2_1)), Dom(T(Y1_1)),
        Dom(T(X3_1))]."""
        dom_x2, dom_y1, dom_x3 = 10, 20, 30
        lst = build_dominance_list(
            entity_id=1,
            own_index=1,
            num_families=2,
            family_trees=[None, dom_y1],  # own entry replaced anyway
            emitted_tree=dom_x2,
            split_descendant=dom_x3,
        )
        assert lst == [dom_x2, dom_y1, dom_x3]
        # Inside T(X2_1): a pair fully inside X3_1 is skipped...
        other = [dom_x2, 99, dom_x3]
        assert not should_resolve(lst, other, index=1, num_families=2)
        # ...but a pair reaching outside X3_1 is resolved here.
        outsider = [dom_x2, 99]
        assert should_resolve(lst, outsider, index=1, num_families=2)
