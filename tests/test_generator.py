"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.data import (
    GeneratorConfig,
    make_books,
    make_citeseer,
)
from repro.data.books import books_perturber
from repro.data.citeseer import citeseer_perturber
from repro.data.generator import generate_dataset


class TestGeneratorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(num_entities=0)
        with pytest.raises(ValueError):
            GeneratorConfig(num_entities=10, duplicate_ratio=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(num_entities=10, extra_copy_p=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(num_entities=10, max_cluster=1)


class TestGeneratedDatasets:
    def test_exact_entity_count(self):
        ds = make_citeseer(500, seed=1)
        assert len(ds) == 500

    def test_ids_are_dense(self):
        ds = make_citeseer(300, seed=2)
        assert sorted(e.id for e in ds) == list(range(300))

    def test_ground_truth_covers_every_entity(self):
        ds = make_citeseer(300, seed=2)
        assert set(ds.clusters) == {e.id for e in ds}

    def test_deterministic_per_seed(self):
        a = make_citeseer(200, seed=5)
        b = make_citeseer(200, seed=5)
        assert [e.attrs for e in a] == [e.attrs for e in b]
        assert a.clusters == b.clusters

    def test_different_seeds_differ(self):
        a = make_citeseer(200, seed=5)
        b = make_citeseer(200, seed=6)
        assert [e.attrs for e in a] != [e.attrs for e in b]

    def test_duplicate_ratio_produces_pairs(self):
        ds = make_citeseer(1000, seed=1, duplicate_ratio=0.4)
        assert ds.num_true_pairs > 100

    def test_zero_duplicate_ratio(self):
        ds = make_citeseer(200, seed=1, duplicate_ratio=0.0)
        assert ds.num_true_pairs == 0

    def test_cluster_sizes_respect_cap(self):
        config = GeneratorConfig(num_entities=800, duplicate_ratio=0.8, max_cluster=3, seed=1)
        ds = generate_dataset("t", config, lambda rng: {"a": "v"}, citeseer_perturber())
        from collections import Counter

        sizes = Counter(ds.clusters.values())
        assert max(sizes.values()) <= 3

    def test_citeseer_schema(self):
        ds = make_citeseer(100, seed=1)
        base = ds.entities[0]
        assert set(base.attrs) <= {"title", "abstract", "venue", "authors", "year"}
        # Title is never dropped by the noise model.
        assert all(e.get("title") for e in ds)

    def test_books_schema_has_eight_attributes(self):
        ds = make_books(100, seed=1)
        all_attrs = set()
        for e in ds:
            all_attrs |= set(e.attrs)
        assert all_attrs == {
            "title", "authors", "publisher", "year",
            "isbn", "pages", "language", "format",
        }

    def test_duplicates_share_protected_title_prefix(self):
        ds = make_citeseer(600, seed=4)
        for a, b in list(ds.true_pairs)[:200]:
            ta, tb = ds.entity(a).get("title"), ds.entity(b).get("title")
            assert ta[:6] == tb[:6]

    def test_title_block_sizes_are_skewed(self):
        ds = make_citeseer(2000, seed=7)
        from collections import Counter

        counts = Counter(e.get("title")[:2] for e in ds)
        top = counts.most_common(1)[0][1]
        # A Zipf head: the biggest 2-char prefix block holds a large share.
        assert top > len(ds) * 0.2

    def test_books_number_fields_numeric(self):
        ds = make_books(100, seed=1)
        base = ds.entities[0]
        if base.get("year"):
            assert base.get("year").isdigit() or len(base.get("year")) == 4
