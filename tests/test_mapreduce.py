"""Unit tests for the MapReduce simulator: clock, counters, jobs, engine."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce import (
    Cluster,
    CostModel,
    Counters,
    MapReduceJob,
    Mapper,
    Partitioner,
    Reducer,
    SlotPool,
    TaskContext,
    VirtualClock,
    results_available_at,
    split_input,
    stable_hash,
)


class TestVirtualClock:
    def test_charges_accumulate(self):
        clock = VirtualClock()
        clock.charge(2.0)
        clock.charge(3.5)
        assert clock.now == pytest.approx(5.5)
        assert clock.charge_count == 2

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().charge(-1.0)


class TestCostModel:
    def test_sort_cost_zero_for_tiny_inputs(self):
        cm = CostModel()
        assert cm.sort_cost(0) == 0.0
        assert cm.sort_cost(1) == 0.0

    def test_sort_cost_nloglog_shape(self):
        cm = CostModel(sort_item=1.0)
        assert cm.sort_cost(8) == pytest.approx(8 * 3)

    @given(st.integers(2, 10_000))
    def test_sort_cost_monotone(self, n):
        cm = CostModel()
        assert cm.sort_cost(n + 1) > cm.sort_cost(n)


class TestCounters:
    def test_increment_and_get(self):
        c = Counters()
        c.increment("g", "n")
        c.increment("g", "n", 4)
        assert c.get("g", "n") == 5
        assert c.get("g", "other") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "n", 2)
        b.increment("g", "n", 3)
        b.increment("h", "m")
        a.merge(b)
        assert a.get("g", "n") == 5
        assert a.get("h", "m") == 1

    def test_len_and_dict(self):
        c = Counters()
        c.increment("g", "n")
        assert len(c) == 1
        assert c.as_dict() == {("g", "n"): 1}

    def test_as_flat_dict_sorted_group_dot_name(self):
        c = Counters()
        c.increment("engine", "map_emitted", 3)
        c.increment("driver", "duplicates", 2)
        c.increment("engine", "combine_input", 1)
        assert c.as_flat_dict() == {
            "driver.duplicates": 2,
            "engine.combine_input": 1,
            "engine.map_emitted": 3,
        }
        assert list(c.as_flat_dict()) == sorted(c.as_flat_dict())

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["engine", "driver", "matcher"]),
                st.sampled_from(["a", "b", "c"]),
                st.integers(-5, 5),
            ),
            max_size=12,
        ),
        st.integers(0, 11),
        st.integers(0, 11),
    )
    def test_merge_is_associative_and_commutative(self, entries, cut1, cut2):
        """Task counters can be folded in any grouping/order — the engine
        relies on this when it aggregates per-task payloads."""
        lo, hi = sorted((cut1 % (len(entries) + 1), cut2 % (len(entries) + 1)))
        parts = [entries[:lo], entries[lo:hi], entries[hi:]]

        def counters_from(items):
            c = Counters()
            for group, name, amount in items:
                c.increment(group, name, amount)
            return c

        a, b, c = (counters_from(p) for p in parts)
        left = counters_from([])  # (a + b) + c
        left.merge(a)
        left.merge(b)
        left.merge(c)
        right = counters_from([])  # a + (b + c)
        bc = counters_from(parts[1])
        bc.merge(c)
        right.merge(bc)
        right.merge(a)
        assert left.as_dict() == right.as_dict()
        assert left.as_dict() == counters_from(entries).as_dict()


class TestSplitInput:
    def test_even_split(self):
        assert split_input(list(range(6)), 3) == [[0, 1], [2, 3], [4, 5]]

    def test_uneven_split_sizes_differ_by_at_most_one(self):
        splits = split_input(list(range(10)), 4)
        sizes = [len(s) for s in splits]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_splits_than_records(self):
        splits = split_input([1, 2], 5)
        assert len(splits) == 5
        assert sum(len(s) for s in splits) == 2

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            split_input([1], 0)

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_concatenation_preserves_order(self, records, n):
        splits = split_input(records, n)
        flattened = [r for split in splits for r in split]
        assert flattened == records


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("X", "ab")) == stable_hash(("X", "ab"))

    def test_distinct_keys_usually_differ(self):
        values = {stable_hash(("k", i)) for i in range(100)}
        assert len(values) > 95


class TestSlotPool:
    def test_waves(self):
        pool = SlotPool(2, ready_time=0.0)
        assert pool.schedule(10.0) == (0.0, 10.0, 0)
        assert pool.schedule(5.0) == (0.0, 5.0, 1)
        # Third task waits for the earliest slot (freed at 5.0).
        assert pool.schedule(2.0) == (5.0, 7.0, 1)
        assert pool.makespan == 10.0

    def test_ready_time_offset(self):
        pool = SlotPool(1, ready_time=100.0)
        assert pool.schedule(1.0) == (100.0, 101.0, 0)

    def test_needs_a_slot(self):
        with pytest.raises(ValueError):
            SlotPool(0, 0.0)


class _WordMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(0.1 * len(values))
        context.write((key, sum(values)))


def _wordcount_job():
    return MapReduceJob(
        mapper_factory=_WordMapper,
        reducer_factory=_SumReducer,
        name="wordcount",
    )


class TestEngine:
    def test_wordcount_end_to_end(self):
        cluster = Cluster(2)
        lines = ["a b a", "b c", "a"]
        result = cluster.run_job(_wordcount_job(), lines)
        counts = dict(result.output)
        assert counts == {"a": 3, "b": 2, "c": 1}

    def test_phase_barrier(self):
        cluster = Cluster(2)
        result = cluster.run_job(_wordcount_job(), ["a b", "c d"])
        assert result.map_phase_end >= result.start_time
        for task in result.reduce_tasks:
            assert task.start_time >= result.map_phase_end

    def test_start_time_offsets_everything(self):
        cluster = Cluster(1)
        r0 = cluster.run_job(_wordcount_job(), ["a b", "b"], start_time=0.0)
        r1 = cluster.run_job(_wordcount_job(), ["a b", "b"], start_time=500.0)
        assert r1.end_time == pytest.approx(r0.end_time + 500.0)
        assert r1.duration == pytest.approx(r0.duration)

    def test_deterministic(self):
        cluster = Cluster(3)
        lines = [f"w{i % 7} w{i % 3}" for i in range(50)]
        a = cluster.run_job(_wordcount_job(), lines)
        b = cluster.run_job(_wordcount_job(), lines)
        assert sorted(a.output) == sorted(b.output)
        assert a.end_time == b.end_time

    def test_partitioner_routing_respected(self):
        class EvenOdd(Partitioner):
            def partition(self, key, n):
                return 0 if key % 2 == 0 else 1

        class Identity(Mapper):
            def map(self, record, context):
                context.emit(record, record)

        class Collect(Reducer):
            def reduce(self, key, values, context):
                context.write(key)

        job = MapReduceJob(Identity, Collect, partitioner=EvenOdd())
        cluster = Cluster(1)
        result = cluster.run_job(job, list(range(10)), num_reduce_tasks=2)
        evens = set(result.reduce_tasks[0].output)
        odds = set(result.reduce_tasks[1].output)
        assert evens == {0, 2, 4, 6, 8}
        assert odds == {1, 3, 5, 7, 9}

    def test_bad_partitioner_rejected(self):
        class Broken(Partitioner):
            def partition(self, key, n):
                return n  # out of range

        class Identity(Mapper):
            def map(self, record, context):
                context.emit(record, record)

        job = MapReduceJob(Identity, _SumReducer, partitioner=Broken())
        with pytest.raises(ValueError):
            Cluster(1).run_job(job, [1])

    def test_reduce_groups_sorted_by_key(self):
        seen = []

        class Observe(Reducer):
            def reduce(self, key, values, context):
                seen.append(key)

        class Identity(Mapper):
            def map(self, record, context):
                context.emit(record, 1)

        job = MapReduceJob(Identity, Observe)
        Cluster(1).run_job(job, ["c", "a", "b"], num_reduce_tasks=1)
        assert seen == ["a", "b", "c"]

    def test_counters_aggregated(self):
        cluster = Cluster(2)
        result = cluster.run_job(_wordcount_job(), ["a b", "c"])
        assert result.counters.get("engine", "map_records") == 2
        assert result.counters.get("engine", "map_emitted") == 3

    def test_more_machines_never_slower(self):
        lines = [f"word{i % 11} other{i % 5}" for i in range(120)]
        slow = Cluster(1).run_job(_wordcount_job(), lines)
        fast = Cluster(8).run_job(_wordcount_job(), lines)
        assert fast.end_time <= slow.end_time

    def test_events_rebased_to_global_time(self):
        class EventReducer(Reducer):
            def reduce(self, key, values, context):
                context.charge(5.0)
                context.record_event("tick", key)

        class Identity(Mapper):
            def map(self, record, context):
                context.emit(record, 1)

        job = MapReduceJob(Identity, EventReducer)
        result = Cluster(1).run_job(job, ["a", "b"], num_reduce_tasks=1)
        assert all(e.time >= result.map_phase_end for e in result.events)


class TestIncrementalOutput:
    def test_alpha_rotates_files(self):
        class Chunky(Reducer):
            def reduce(self, key, values, context):
                for _ in range(10):
                    context.charge(1.0)
                    context.write(key)

        class Identity(Mapper):
            def map(self, record, context):
                context.emit(record, 1)

        job = MapReduceJob(Identity, Chunky, alpha=4.0)
        result = Cluster(1).run_job(job, ["a"], num_reduce_tasks=1)
        assert len(result.output_files) >= 2
        closes = [f.close_time for f in result.output_files]
        assert closes == sorted(closes)

    def test_results_available_at_is_monotone(self):
        class Chunky(Reducer):
            def reduce(self, key, values, context):
                for i in range(10):
                    context.charge(1.0)
                    context.write((key, i))

        class Identity(Mapper):
            def map(self, record, context):
                context.emit(record, 1)

        job = MapReduceJob(Identity, Chunky, alpha=3.0)
        result = Cluster(1).run_job(job, ["a", "b"], num_reduce_tasks=2)
        previous = -1
        for t in [0, result.end_time / 4, result.end_time / 2, result.end_time]:
            available = len(results_available_at(result, t))
            assert available >= previous
            previous = available
        assert len(results_available_at(result, result.end_time)) == 20
