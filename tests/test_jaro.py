"""Unit tests for Jaro / Jaro-Winkler similarity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.similarity.jaro import jaro, jaro_winkler

words = st.text(alphabet="abcdef", min_size=0, max_size=20)


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value_martha_marhta(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944444, abs=1e-5)

    def test_known_value_dixon_dicksonx(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.766667, abs=1e-5)

    def test_disjoint_strings(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty_vs_nonempty(self):
        assert jaro("", "abc") == 0.0

    @given(words, words)
    def test_range_and_symmetry(self, a, b):
        s = jaro(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(jaro(b, a))


class TestJaroWinkler:
    def test_known_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.961111, abs=1e-5)

    def test_prefix_boost_helps(self):
        # Same Jaro, but the shared prefix boosts the first pair.
        assert jaro_winkler("prefixed", "prefixxx") > jaro("prefixed", "prefixxx")

    def test_prefix_scale_validation(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(words, words)
    def test_at_least_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12

    @given(words, words)
    def test_range(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0 + 1e-12
