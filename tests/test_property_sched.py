"""Property-based tests for the multi-tenant scheduler (hypothesis).

Random seeded Poisson arrival traces drive small MapReduce jobs through
:class:`~repro.scheduling.JobScheduler`; four properties pin the
dispatch contract from the scheduler's own decision log:

1. **Work conservation** — every phase dispatches at
   ``max(ready, first_free(kind))``: a slot is never left idle while a
   runnable phase of that kind is pending, and no phase ever starts
   before it is ready.
2. **Weighted fair share** — per decision, the fair policy grants the
   minimal (dispatch, lane rank, tenant virtual time) candidate: at
   equal dispatch the tenant with the least weight-normalized service
   wins.  Long-run, with both tenants backlogged, a ≥2× heavier tenant
   receives at least as many slot-seconds (within one whole-phase grant
   of quantization slack — grants are never preempted mid-phase), and
   equal-weight tenants split within two grants.
3. **Priority lanes** — a batch phase is never granted while an
   interactive phase of the same slot kind was runnable at-or-before
   the chosen dispatch time (interactive waits behind at most the
   already-running phase, never behind a later batch phase start).
4. **Determinism** — replaying the identical trace yields a
   bit-identical decision log, outcomes and latencies.

The hypothesis profile is registered in ``conftest.py``; CI runs with
``HYPOTHESIS_PROFILE=ci`` (derandomized) so the suite cannot flake.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import MapReduceJob, Mapper, Reducer
from repro.scheduling import (
    AdmissionPolicy,
    JobScheduler,
    poisson_arrivals,
)

_LINES = [
    "alpha beta gamma delta",
    "beta gamma epsilon",
    "zeta eta theta alpha",
    "iota kappa",
]


class _WordMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(0.5 * len(values))
        context.write((key, sum(values)))


def _job(name: str) -> MapReduceJob:
    return MapReduceJob(_WordMapper, _SumReducer, name=name, alpha=2.0)


def _records(size_draw: float) -> list:
    repeat = 1 + int(size_draw * 4)
    return _LINES * repeat


def _run_poisson_trace(
    *, seed: int, count: int, rate: float, policy: str, interactive_fraction: float
):
    trace = poisson_arrivals(
        seed=seed,
        rate=rate,
        count=count,
        tenants=("alice", "bob", "carol"),
        tenant_weights=(3.0, 2.0, 1.0),
        interactive_fraction=interactive_fraction,
    )
    scheduler = JobScheduler(machines=2, policy=policy)
    scheduler.add_tenant("alice", 3.0)
    scheduler.add_tenant("bob", 2.0)
    scheduler.add_tenant("carol", 1.0)
    for arrival in trace:
        scheduler.submit_job(
            _job(f"job-{arrival.index}"),
            _records(arrival.size_draw),
            tenant=arrival.tenant,
            lane=arrival.lane,
            arrival=arrival.time,
        )
    return scheduler.run()


trace_params = {
    "seed": st.integers(0, 2**32 - 1),
    "count": st.integers(2, 7),
    "rate": st.floats(0.005, 0.5),
    "interactive_fraction": st.floats(0.0, 1.0),
    "policy": st.sampled_from(["fair", "fifo"]),
}


class TestWorkConservation:
    @given(**trace_params)
    @settings(deadline=None)
    def test_dispatch_is_lazy_and_work_conserving(
        self, seed, count, rate, interactive_fraction, policy
    ):
        report = _run_poisson_trace(
            seed=seed, count=count, rate=rate, policy=policy,
            interactive_fraction=interactive_fraction,
        )
        assert report.decisions, "trace granted nothing"
        for decision in report.decisions:
            # Never early (causality), never late (work conservation):
            # the phase starts the instant it is ready AND a slot of its
            # kind frees up, whichever is later.
            assert decision["dispatch"] == max(
                decision["ready"], decision["first_free"]
            )
            # And the scheduler picked a minimal-dispatch candidate:
            # granting anything else first could only idle the slot.
            best = min(c["dispatch"] for c in decision["candidates"])
            assert decision["dispatch"] == best

    @given(**trace_params)
    @settings(deadline=None)
    def test_every_job_completes_with_no_leaked_slots(
        self, seed, count, rate, interactive_fraction, policy
    ):
        report = _run_poisson_trace(
            seed=seed, count=count, rate=rate, policy=policy,
            interactive_fraction=interactive_fraction,
        )
        assert report.open_leases == 0
        for outcome in report.outcomes:
            assert outcome.finished_at is not None
            assert outcome.started_at is not None
            assert outcome.started_at >= outcome.arrival
            assert outcome.finished_at >= outcome.started_at
            assert outcome.latency >= 0
            # Two phases (map + reduce) per submitted job.
            assert outcome.grants == 2


def _backlog_run(weight_a, weight_b, jobs_per_tenant, scale):
    """Two tenants fully backlogged from t=0 on identical jobs, single
    lane per slot kind (so lease closes are prompt and virtual time stays
    fresh).  Returns (contested slot-second shares, max grant size)."""
    scheduler = JobScheduler(
        machines=1, map_slots=1, reduce_slots=1, policy="fair"
    )
    scheduler.add_tenant("a", weight_a)
    scheduler.add_tenant("b", weight_b)
    records = _LINES * scale
    for index in range(jobs_per_tenant):
        scheduler.submit_job(_job(f"a{index}"), records, tenant="a", arrival=0.0)
        scheduler.submit_job(_job(f"b{index}"), records, tenant="b", arrival=0.0)
    report = scheduler.run()
    per_grant = {o.job: o.slot_seconds / o.grants for o in report.outcomes}
    shares = {"a": 0.0, "b": 0.0}
    contested = 0
    for decision in report.decisions:
        # Measure only while the backlog is contested: both tenants have
        # runnable phases among the recorded candidates.
        if {c["tenant"] for c in decision["candidates"]} >= {"a", "b"}:
            contested += 1
            shares[decision["tenant"]] += per_grant[decision["job"]]
    assert contested, "backlog never contested — property is vacuous"
    return shares, max(per_grant.values())


class TestWeightedFairShare:
    @given(**trace_params)
    @settings(deadline=None)
    def test_fair_grants_minimize_policy_key(
        self, seed, count, rate, interactive_fraction, policy
    ):
        """The exact WFQ contract, per decision: under the fair policy the
        granted request is minimal under (dispatch, lane rank, tenant
        virtual time) among every recorded candidate — i.e. at equal
        dispatch the tenant with the least weight-normalized service wins.
        """
        if policy == "fifo":
            return
        report = _run_poisson_trace(
            seed=seed, count=count, rate=rate, policy="fair",
            interactive_fraction=interactive_fraction,
        )
        def key(c):
            return (c["dispatch"], 0 if c["lane"] == "interactive" else 1,
                    c["vtime"])
        for decision in report.decisions:
            chosen = next(
                c for c in decision["candidates"]
                if c["job"] == decision["job"]
                and c["kind"] == decision["kind"]
            )
            assert key(chosen) == min(key(c) for c in decision["candidates"])

    @given(
        weight_low=st.floats(1.0, 2.0),
        multiplier=st.floats(2.0, 4.0),
        jobs_per_tenant=st.integers(4, 10),
        scale=st.integers(1, 2),
        favored=st.sampled_from(["a", "b"]),
    )
    @settings(deadline=None)
    def test_higher_weight_tenant_gets_larger_share(
        self, weight_low, multiplier, jobs_per_tenant, scale, favored
    ):
        """Long-run bound: with a weight ratio of at least 2×, the heavier
        tenant receives at least as many slot-seconds over the contested
        window, within one grant of quantization slack (grants are whole
        phases, never preempted mid-phase)."""
        weight_high = weight_low * multiplier
        weights = {"a": weight_low, "b": weight_low}
        weights[favored] = weight_high
        other = "b" if favored == "a" else "a"
        shares, grant = _backlog_run(
            weights["a"], weights["b"], jobs_per_tenant, scale
        )
        assert shares[favored] >= shares[other] - grant

    @given(
        weight=st.floats(1.0, 3.0),
        jobs_per_tenant=st.integers(4, 10),
        scale=st.integers(1, 2),
    )
    @settings(deadline=None)
    def test_equal_weight_tenants_split_evenly(
        self, weight, jobs_per_tenant, scale
    ):
        """Equal weights ⇒ contested slot-seconds split evenly, within two
        grants of quantization slack."""
        shares, grant = _backlog_run(weight, weight, jobs_per_tenant, scale)
        assert abs(shares["a"] - shares["b"]) <= 2.0 * grant + 1e-9


class TestPriorityLanes:
    @given(**trace_params)
    @settings(deadline=None)
    def test_interactive_never_waits_behind_batch_phase_start(
        self, seed, count, rate, interactive_fraction, policy
    ):
        if policy == "fifo":
            return  # priority lanes are a fair-policy feature
        report = _run_poisson_trace(
            seed=seed, count=count, rate=rate, policy="fair",
            interactive_fraction=interactive_fraction,
        )
        for decision in report.decisions:
            if decision["lane"] != "batch":
                continue
            rivals = [
                c for c in decision["candidates"]
                if c["lane"] == "interactive"
                and c["kind"] == decision["kind"]
            ]
            for rival in rivals:
                # Any interactive phase runnable at-or-before the chosen
                # batch dispatch would have won the tie-break.
                assert rival["dispatch"] > decision["dispatch"]


class TestDeterminism:
    @given(**trace_params)
    @settings(deadline=None)
    def test_same_trace_same_schedule(
        self, seed, count, rate, interactive_fraction, policy
    ):
        def snapshot():
            report = _run_poisson_trace(
                seed=seed, count=count, rate=rate, policy=policy,
                interactive_fraction=interactive_fraction,
            )
            return (
                [
                    (d["job"], d["kind"], d["ready"], d["dispatch"])
                    for d in report.decisions
                ],
                [
                    (o.job, o.started_at, o.finished_at, o.latency)
                    for o in report.outcomes
                ],
            )

        assert snapshot() == snapshot()

    @given(seed=st.integers(0, 2**32 - 1), count=st.integers(1, 20))
    @settings(deadline=None)
    def test_poisson_trace_is_reproducible_and_ordered(self, seed, count):
        kwargs = dict(
            seed=seed, rate=0.1, count=count,
            tenants=("a", "b"), interactive_fraction=0.5,
        )
        first = poisson_arrivals(**kwargs)
        second = poisson_arrivals(**kwargs)
        assert first == second
        times = [a.time for a in first]
        assert times == sorted(times)
        assert all(t > 0 for t in times)


class TestAdmissionProperties:
    @given(
        cap=st.integers(1, 3),
        submissions=st.integers(4, 8),
    )
    @settings(deadline=None)
    def test_queue_cap_rejects_overflow_with_typed_receipt(
        self, cap, submissions
    ):
        scheduler = JobScheduler(
            machines=2,
            admission=AdmissionPolicy(max_queued=cap),
        )
        receipts = [
            scheduler.submit_job(
                _job(f"j{index}"), _LINES, tenant="t", arrival=0.0
            ).receipt
            for index in range(submissions)
        ]
        accepted = [r for r in receipts if not r.rejected]
        rejected = [r for r in receipts if r.rejected]
        assert len(accepted) == min(cap, submissions)
        assert all(r.reason == "queue-full" for r in rejected)
        report = scheduler.run()
        finished = [o for o in report.outcomes if o.finished_at is not None]
        assert len(finished) == len(accepted)

    @given(
        max_active=st.integers(1, 3),
        submissions=st.integers(2, 6),
    )
    @settings(deadline=None)
    def test_max_active_queues_and_staggers_starts(
        self, max_active, submissions
    ):
        scheduler = JobScheduler(
            machines=2,
            admission=AdmissionPolicy(max_active=max_active),
        )
        handles = [
            scheduler.submit_job(
                _job(f"j{index}"), _LINES, tenant="t", arrival=0.0
            )
            for index in range(submissions)
        ]
        queued = [h for h in handles if h.receipt.decision == "queued"]
        assert len(queued) == max(0, submissions - max_active)
        report = scheduler.run()
        finishes = sorted(
            o.finished_at for o in report.outcomes if o.decision == "admitted"
        )
        for outcome in report.outcomes:
            if outcome.decision != "queued":
                continue
            # A queued job may only start once some earlier job finished.
            assert outcome.started_at >= finishes[0]
