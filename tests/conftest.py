"""Shared fixtures: small seeded datasets and paper-shaped configurations.

Everything is session-scoped — datasets and matcher caches are expensive to
build, deterministic, and read-only from the tests' perspective.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.baselines import BasicConfig
from repro.blocking import books_scheme, citeseer_scheme
from repro.core import books_config, citeseer_config
from repro.data import Dataset, Entity, make_books, make_citeseer
from repro.mapreduce import Cluster, CostModel
from repro.mechanisms import PSNM, SortedNeighborHint
from repro.similarity import books_matcher, citeseer_matcher

# Hypothesis profiles: "dev" explores freely; "ci" is fully deterministic
# (derandomized, fixed example budget) so the property suite can never
# flake or shrink differently between CI runs.  Select with
# ``HYPOTHESIS_PROFILE=ci`` (the CI workflow exports it).
settings.register_profile("dev", max_examples=30)
settings.register_profile(
    "ci",
    max_examples=30,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def citeseer_small() -> Dataset:
    """~600 publication entities with ground truth."""
    return make_citeseer(600, seed=3)


@pytest.fixture(scope="session")
def citeseer_medium() -> Dataset:
    """~1200 publication entities for end-to-end runs."""
    return make_citeseer(1200, seed=7)


@pytest.fixture(scope="session")
def books_small() -> Dataset:
    """~600 book entities with ground truth."""
    return make_books(600, seed=11)


@pytest.fixture(scope="session")
def shared_citeseer_matcher():
    """A caching matcher reused across every test touching citeseer data."""
    return citeseer_matcher(cache=True)


@pytest.fixture(scope="session")
def shared_books_matcher():
    """A caching matcher reused across every test touching book data."""
    return books_matcher(cache=True)


@pytest.fixture()
def small_cluster() -> Cluster:
    """A 3-machine cluster (6 map / 6 reduce slots)."""
    return Cluster(3)


@pytest.fixture()
def citeseer_cfg(shared_citeseer_matcher):
    """Paper CiteSeerX configuration with the shared caching matcher."""
    return citeseer_config(matcher=shared_citeseer_matcher)


@pytest.fixture()
def books_cfg(shared_books_matcher):
    """Paper OL-Books configuration with the shared caching matcher."""
    return books_config(matcher=shared_books_matcher)


@pytest.fixture()
def basic_cfg(shared_citeseer_matcher):
    """Basic-baseline configuration for citeseer data (Basic F, w=15)."""
    return BasicConfig(
        scheme=citeseer_scheme(),
        matcher=shared_citeseer_matcher,
        mechanism=SortedNeighborHint(),
        window=15,
    )


def toy_people() -> Dataset:
    """The paper's Table I toy dataset (nine people records)."""
    rows = [
        (1, "John Lopez", "HI"),
        (2, "John Lopez", "HI"),
        (3, "John Lopez", "AZ"),
        (4, "Charles Andrews", "LA"),
        (5, "Gharles Andrews", "LA"),
        (6, "Mary Gibson", "AZ"),
        (7, "Chloe Matthew", "AZ"),
        (8, "William Martin", "AZ"),
        (9, "Joey Brown", "LA"),
    ]
    clusters = {1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 2, 7: 3, 8: 4, 9: 5}
    entities = [
        Entity(id=i, attrs={"name": name, "state": state}) for i, name, state in rows
    ]
    return Dataset(entities=entities, clusters=clusters, name="toy-people")


@pytest.fixture(scope="session")
def toy_people_dataset() -> Dataset:
    return toy_people()
