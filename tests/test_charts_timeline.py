"""Unit tests for ASCII charts and task timelines."""

import pytest

from repro.data import Dataset, Entity
from repro.evaluation import (
    CurveRun,
    ascii_chart,
    ascii_gantt,
    job_spans,
    load_imbalance,
    recall_curve,
    reduce_utilization,
)
from repro.mapreduce import Cluster, MapReduceJob, Mapper, Reducer
from repro.mapreduce.types import Event


def _curve_run(label, times):
    entities = [Entity(id=i, attrs={}) for i in range(4)]
    ds = Dataset(entities=entities, clusters={0: 0, 1: 0, 2: 1, 3: 1})
    pairs = [(0, 1), (2, 3)]
    events = [
        Event(time=t, kind="duplicate", payload=p) for t, p in zip(times, pairs)
    ]
    curve = recall_curve(events, ds, end_time=100.0)
    return CurveRun(label=label, curve=curve, result=None)


class TestAsciiChart:
    def test_contains_legend_and_axes(self):
        run = _curve_run("fast", [10.0, 20.0])
        chart = ascii_chart([run], width=40, height=8, title="t")
        assert "t" in chart.splitlines()[0]
        assert "o=fast" in chart
        assert "1.00 |" in chart

    def test_two_curves_use_distinct_symbols(self):
        fast = _curve_run("fast", [5.0, 10.0])
        slow = _curve_run("slow", [50.0, 90.0])
        chart = ascii_chart([fast, slow], width=40, height=8)
        assert "o=fast" in chart and "*=slow" in chart
        assert "o" in chart and "*" in chart

    def test_validation(self):
        run = _curve_run("x", [1.0])
        with pytest.raises(ValueError):
            ascii_chart([])
        with pytest.raises(ValueError):
            ascii_chart([run], width=5)
        with pytest.raises(ValueError):
            ascii_chart([run] * 9)

    def test_higher_curve_renders_higher(self):
        fast = _curve_run("fast", [1.0, 2.0])  # reaches 1.0 immediately
        chart = ascii_chart([fast], width=20, height=6)
        top_row = chart.splitlines()[0 if "|" in chart.splitlines()[0] else 1]
        assert "o" in top_row  # the curve sits on the top recall row


class _IdentityMapper(Mapper):
    def map(self, record, context):
        context.emit(record % 3, record)


class _CostlyReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(10.0 * (key + 1))
        context.write(key)


@pytest.fixture()
def sample_job():
    job = MapReduceJob(_IdentityMapper, _CostlyReducer)
    return Cluster(2).run_job(job, list(range(12)), num_reduce_tasks=3)


class TestTimeline:
    def test_spans_cover_all_tasks(self, sample_job):
        spans = job_spans(sample_job)
        assert sum(1 for s in spans if s.phase == "map") == len(sample_job.map_tasks)
        assert sum(1 for s in spans if s.phase == "reduce") == 3
        for span in spans:
            assert span.end >= span.start
            assert span.duration == span.end - span.start

    def test_utilization_bounds(self, sample_job):
        u = reduce_utilization(sample_job)
        assert 0.0 < u <= 1.0

    def test_imbalance_at_least_one(self, sample_job):
        assert load_imbalance(sample_job) >= 1.0

    def test_unbalanced_job_reports_high_imbalance(self, sample_job):
        # Reducer cost grows with key index: key 2 does 3x key 0's work.
        assert load_imbalance(sample_job) > 1.2

    def test_gantt_renders(self, sample_job):
        text = ascii_gantt(sample_job, width=32)
        assert "map[" in text and "reduce[" in text
        assert "utilization=" in text

    def test_gantt_width_validation(self, sample_job):
        with pytest.raises(ValueError):
            ascii_gantt(sample_job, width=4)
