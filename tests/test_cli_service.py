"""CLI tests for the incremental service: `serve` and `submit`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.data import make_citeseer


@pytest.fixture()
def jsonl_file(tmp_path):
    def write(name, entities, batch=None):
        path = tmp_path / name
        with open(path, "w", encoding="utf-8") as handle:
            for entity in entities:
                row = {"id": entity.id, **entity.attrs}
                if batch is not None:
                    row["batch"] = batch(entity)
                handle.write(json.dumps(row) + "\n")
        return path

    return write


@pytest.fixture(scope="module")
def entities():
    return make_citeseer(180, seed=3).entities


class TestGenerateJsonl:
    def test_jsonl_extension_switches_format(self, tmp_path, capsys):
        out = tmp_path / "ds.jsonl"
        assert main(
            ["generate", "--family", "citeseer", "--size", "50", "--out", str(out)]
        ) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 50
        row = json.loads(lines[0])
        assert "id" in row and "title" in row
        assert "wrote 50" in capsys.readouterr().out


class TestServe:
    def test_streams_batches_and_snapshots(self, tmp_path, jsonl_file, entities, capsys):
        stream = jsonl_file("in.jsonl", entities)
        snap = tmp_path / "state.json"
        code = main(
            [
                "serve", "--input", str(stream), "--batch-size", "60",
                "--machines", "2", "--snapshot-out", str(snap),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch 1:" in out and "batch 3:" in out
        assert "service: 180 entities in 3 batches" in out
        snapshot = json.loads(snap.read_text())
        assert snapshot["batches"] == 3
        assert len(snapshot["entities"]) == 180

    def test_explicit_batch_field_overrides_chunking(self, jsonl_file, entities, capsys):
        stream = jsonl_file(
            "in.jsonl", entities[:90], batch=lambda e: e.id % 2
        )
        assert main(["serve", "--input", str(stream), "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "batch 2:" in out and "batch 3:" not in out

    def test_print_pairs_lists_discoveries(self, jsonl_file, entities, capsys):
        stream = jsonl_file("in.jsonl", entities)
        assert main(
            ["serve", "--input", str(stream), "--machines", "2", "--print-pairs"]
        ) == 0
        assert "  pair " in capsys.readouterr().out

    def test_trace_and_metrics_passthrough(self, tmp_path, jsonl_file, entities):
        stream = jsonl_file("in.jsonl", entities[:80])
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(
            [
                "serve", "--input", str(stream), "--machines", "2",
                "--trace", str(trace), "--metrics", str(metrics),
            ]
        ) == 0
        events = json.loads(trace.read_text())
        assert any(e.get("name", "").startswith("delta-resolution") for e in events)
        snapshots = json.loads(metrics.read_text())["snapshots"]
        assert any("delta-resolution" in s["scope"] for s in snapshots)

    def test_malformed_line_fails_with_location(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"id": 1, "title": "x"}\nnot-json\n')
        with pytest.raises(SystemExit, match="bad.jsonl:2"):
            main(["serve", "--input", str(bad), "--machines", "2"])

    def test_missing_id_fails_with_location(self, tmp_path):
        bad = tmp_path / "noid.jsonl"
        bad.write_text('{"title": "x"}\n')
        with pytest.raises(SystemExit, match="noid.jsonl:1"):
            main(["serve", "--input", str(bad), "--machines", "2"])


class TestSubmit:
    def test_continues_from_snapshot_identically(
        self, tmp_path, jsonl_file, entities, capsys
    ):
        first = jsonl_file("first.jsonl", entities[:120])
        second = jsonl_file("second.jsonl", entities[120:])
        snap = tmp_path / "state.json"
        assert main(
            [
                "serve", "--input", str(first), "--batch-size", "120",
                "--machines", "2", "--snapshot-out", str(snap),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["submit", "--snapshot", str(snap), "--input", str(second),
             "--machines", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch 2:" in out
        assert "service: 180 entities in 2 batches" in out

        # The incremental CLI path ends at the same pair set as one serve.
        updated = json.loads(snap.read_text())
        whole = jsonl_file("whole.jsonl", entities)
        one_snap = tmp_path / "one.json"
        assert main(
            [
                "serve", "--input", str(whole), "--batch-size", "500",
                "--machines", "2", "--snapshot-out", str(one_snap),
            ]
        ) == 0
        one = json.loads(one_snap.read_text())
        assert sorted(tuple(e["pair"]) for e in updated["events"]) == sorted(
            tuple(e["pair"]) for e in one["events"]
        )

    def test_snapshot_out_leaves_original_untouched(
        self, tmp_path, jsonl_file, entities, capsys
    ):
        first = jsonl_file("first.jsonl", entities[:100])
        second = jsonl_file("second.jsonl", entities[100:140])
        snap = tmp_path / "state.json"
        main(
            ["serve", "--input", str(first), "--machines", "2",
             "--snapshot-out", str(snap)]
        )
        before = snap.read_text()
        out_path = tmp_path / "state2.json"
        assert main(
            ["submit", "--snapshot", str(snap), "--input", str(second),
             "--machines", "2", "--snapshot-out", str(out_path)]
        ) == 0
        assert snap.read_text() == before
        assert json.loads(out_path.read_text())["batches"] == 2
