"""Unit tests for the progressive mechanisms and the resolution driver."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import Entity
from repro.mapreduce import CostModel
from repro.mechanisms import (
    PSNM,
    DistinctBudget,
    FullResolution,
    NeverStop,
    PopcornCondition,
    SortedNeighborHint,
    block_sort_key,
    resolve_block,
    window_pairs_count,
)
from repro.mechanisms.base import ResolveStats
from repro.similarity.matchers import AttributeRule, WeightedMatcher


def _entities(*values):
    return [Entity(id=i, attrs={"v": v}) for i, v in enumerate(values)]


def _sort_key(e):
    return e.get("v")


def _collect_stream(mechanism, entities, window):
    charged = []
    stream = mechanism.pair_stream(
        entities, window, _sort_key, charged.append, CostModel()
    )
    return list(stream), charged


class TestWindowPairsCount:
    @pytest.mark.parametrize(
        "n,w,expected",
        [
            (0, 5, 0),
            (1, 5, 0),
            (2, 1, 0),
            (4, 2, 3),     # distance-1 pairs only
            (4, 4, 6),     # distances 1..3 = all pairs
            (4, 100, 6),   # window larger than block
            (10, 3, 9 + 8),
        ],
    )
    def test_known_values(self, n, w, expected):
        assert window_pairs_count(n, w) == expected

    @given(st.integers(0, 200), st.integers(2, 50))
    def test_matches_enumeration(self, n, w):
        expected = sum(
            1
            for i in range(n)
            for j in range(i + 1, n)
            if j - i < w
        )
        assert window_pairs_count(n, w) == expected


class TestPairStreams:
    def test_sn_orders_by_distance(self):
        entities = _entities("a", "b", "c", "d")
        pairs, _ = _collect_stream(SortedNeighborHint(), entities, window=3)
        distances = []
        order = {e.id: rank for rank, e in enumerate(sorted(entities, key=_sort_key))}
        for e1, e2 in pairs:
            distances.append(abs(order[e1.id] - order[e2.id]))
        assert distances == sorted(distances)
        assert max(distances) < 3

    def test_sn_and_psnm_produce_identical_order(self):
        entities = _entities("delta", "alpha", "echo", "bravo", "charlie")
        sn_pairs, _ = _collect_stream(SortedNeighborHint(), entities, window=4)
        ps_pairs, _ = _collect_stream(PSNM(), entities, window=4)
        as_ids = lambda pairs: [(a.id, b.id) for a, b in pairs]
        assert as_ids(sn_pairs) == as_ids(ps_pairs)

    def test_sn_hint_costs_more_than_psnm(self):
        entities = _entities(*[f"v{i:03d}" for i in range(50)])
        cm = CostModel()
        sn = SortedNeighborHint().additional_cost(50, 10, cm)
        ps = PSNM().additional_cost(50, 10, cm)
        assert sn > ps  # the materialized hint costs extra

    def test_full_resolution_yields_all_pairs(self):
        entities = _entities("a", "b", "c", "d")
        pairs, _ = _collect_stream(FullResolution(), entities, window=2)
        assert len(pairs) == 6

    def test_stream_respects_window(self):
        entities = _entities(*[f"v{i:02d}" for i in range(10)])
        pairs, _ = _collect_stream(PSNM(), entities, window=3)
        assert len(pairs) == window_pairs_count(10, 3)

    def test_cost_charged_before_first_pair(self):
        entities = _entities("a", "b")
        charged = []
        stream = PSNM().pair_stream(entities, 5, _sort_key, charged.append, CostModel())
        next(stream)
        assert charged and charged[0] > 0


class TestStopConditions:
    def test_distinct_budget(self):
        stop = DistinctBudget(2)
        stats = ResolveStats()
        stats.distincts = 1
        assert not stop.should_stop(stats, was_duplicate=False)
        stats.distincts = 2
        assert stop.should_stop(stats, was_duplicate=False)

    def test_distinct_budget_validation(self):
        with pytest.raises(ValueError):
            DistinctBudget(-1)

    def test_never_stop(self):
        assert not NeverStop().should_stop(ResolveStats(), was_duplicate=False)

    def test_popcorn_stops_after_barren_run(self):
        popcorn = PopcornCondition(0.5)  # barren limit = 2
        stats = ResolveStats()
        assert not popcorn.should_stop(stats, was_duplicate=False)
        assert popcorn.should_stop(stats, was_duplicate=False)

    def test_popcorn_resets_on_duplicate(self):
        popcorn = PopcornCondition(0.5)
        stats = ResolveStats()
        assert not popcorn.should_stop(stats, was_duplicate=False)
        assert not popcorn.should_stop(stats, was_duplicate=True)
        assert not popcorn.should_stop(stats, was_duplicate=False)
        assert popcorn.should_stop(stats, was_duplicate=False)

    def test_popcorn_threshold_validation(self):
        with pytest.raises(ValueError):
            PopcornCondition(0.0)
        with pytest.raises(ValueError):
            PopcornCondition(1.0)

    def test_popcorn_barren_limit_scale(self):
        assert PopcornCondition(0.1).barren_limit == 10
        assert PopcornCondition(0.001).barren_limit == 1000


class TestResolveBlock:
    def _matcher(self):
        return WeightedMatcher([AttributeRule("v", 1.0)], threshold=0.8)

    def test_finds_duplicates(self):
        entities = _entities("progressive er", "progressive eq", "zzzz completely")
        found = []
        charged = []
        stats = resolve_block(
            entities,
            PSNM(),
            window=3,
            sort_key=_sort_key,
            matcher=self._matcher(),
            cost_model=CostModel(),
            charge=charged.append,
            on_duplicate=lambda a, b: found.append((a.id, b.id)),
        )
        assert [tuple(sorted(p)) for p in found] == [(0, 1)]
        assert stats.duplicates == 1
        assert stats.exhausted
        assert sum(charged) > 0

    def test_should_resolve_veto_skips_and_costs_nothing(self):
        entities = _entities("aa", "ab")
        charged = []
        stats = resolve_block(
            entities,
            PSNM(),
            window=2,
            sort_key=_sort_key,
            matcher=self._matcher(),
            cost_model=CostModel(),
            charge=charged.append,
            on_duplicate=lambda a, b: None,
            should_resolve=lambda a, b: False,
        )
        assert stats.skipped == 1
        assert stats.comparisons == 0

    def test_stop_condition_halts_early(self):
        entities = _entities(*[f"x{i:02d}" for i in range(20)])
        stats = resolve_block(
            entities,
            PSNM(),
            window=10,
            sort_key=_sort_key,
            matcher=self._matcher(),
            cost_model=CostModel(),
            charge=lambda c: None,
            on_duplicate=lambda a, b: None,
            stop=DistinctBudget(3),
        )
        assert not stats.exhausted
        assert stats.distincts == 3

    def test_on_resolved_observer_sees_every_comparison(self):
        entities = _entities("aa", "ab", "zz")
        seen = []
        resolve_block(
            entities,
            FullResolution(),
            window=99,
            sort_key=_sort_key,
            matcher=self._matcher(),
            cost_model=CostModel(),
            charge=lambda c: None,
            on_duplicate=lambda a, b: None,
            on_resolved=lambda a, b, d: seen.append(((a.id, b.id), d)),
        )
        assert len(seen) == 3


class TestBlockSortKey:
    def test_primary_attribute_first(self):
        e1 = Entity(id=0, attrs={"title": "zzz", "venue": "aaa"})
        e2 = Entity(id=1, attrs={"title": "aaa", "venue": "zzz"})
        assert block_sort_key(e1, "venue") < block_sort_key(e2, "venue")

    def test_title_breaks_primary_ties(self):
        e1 = Entity(id=0, attrs={"title": "beta", "venue": "same"})
        e2 = Entity(id=1, attrs={"title": "alpha", "venue": "same"})
        assert block_sort_key(e2, "venue") < block_sort_key(e1, "venue")

    def test_primary_title_excludes_duplicate_tiebreak(self):
        e = Entity(id=0, attrs={"title": "t", "venue": "v"})
        primary, rest = block_sort_key(e, "title")
        assert primary == "t"
        assert "t" not in rest.split("\x1f")
