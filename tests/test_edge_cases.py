"""Edge-case tests across modules: tiny inputs, degenerate configurations,
boundary conditions the happy-path tests never touch."""

import pytest

from repro.blocking import (
    Block,
    BlockingScheme,
    build_forest,
    citeseer_scheme,
    prefix_function,
)
from repro.core import ProgressiveER, citeseer_config
from repro.data import Dataset, Entity, make_citeseer
from repro.evaluation import recall_curve
from repro.mapreduce import Cluster, CostModel, MapReduceJob, Mapper, Reducer
from repro.mechanisms import PSNM, SortedNeighborHint, resolve_block
from repro.similarity import citeseer_matcher


class _Echo(Mapper):
    def map(self, record, context):
        context.emit(record, record)


class _Collect(Reducer):
    def reduce(self, key, values, context):
        context.write((key, len(values)))


class TestEngineEdges:
    def test_empty_input(self):
        result = Cluster(2).run_job(MapReduceJob(_Echo, _Collect), [])
        assert result.output == []
        assert result.end_time >= result.start_time

    def test_single_record(self):
        result = Cluster(3).run_job(MapReduceJob(_Echo, _Collect), ["only"])
        assert result.output == [("only", 1)]

    def test_explicit_map_task_override(self):
        result = Cluster(1).run_job(
            MapReduceJob(_Echo, _Collect), list("abcdef"), num_map_tasks=3
        )
        assert len(result.map_tasks) == 3

    def test_one_reduce_task(self):
        result = Cluster(2).run_job(
            MapReduceJob(_Echo, _Collect), list("abc"), num_reduce_tasks=1
        )
        assert len(result.reduce_tasks) == 1
        assert len(result.output) == 3

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            Cluster(0)


class TestMechanismEdges:
    def test_empty_block(self):
        stats = resolve_block(
            [],
            PSNM(),
            window=5,
            sort_key=lambda e: e.get("v"),
            matcher=citeseer_matcher(),
            cost_model=CostModel(),
            charge=lambda c: None,
            on_duplicate=lambda a, b: None,
        )
        assert stats.comparisons == 0
        assert stats.exhausted

    def test_window_of_one_compares_nothing(self):
        entities = [Entity(id=i, attrs={"v": str(i)}) for i in range(5)]
        stats = resolve_block(
            entities,
            SortedNeighborHint(),
            window=1,
            sort_key=lambda e: e.get("v"),
            matcher=citeseer_matcher(),
            cost_model=CostModel(),
            charge=lambda c: None,
            on_duplicate=lambda a, b: None,
        )
        assert stats.comparisons == 0


class TestBlockingEdges:
    def test_empty_dataset_forest(self):
        ds = Dataset(entities=[])
        forest = build_forest(ds, citeseer_scheme(), "X")
        assert forest.roots == []

    def test_all_entities_missing_attribute(self):
        ds = Dataset(entities=[Entity(id=i, attrs={"other": "x"}) for i in range(4)])
        forest = build_forest(ds, citeseer_scheme(), "X")
        assert forest.roots == []

    def test_single_family_scheme(self):
        scheme = BlockingScheme(
            families={"X": [prefix_function("X", 1, "title", 2)]}
        )
        assert scheme.num_families == 1
        assert scheme.depth("X") == 0


class TestPipelineEdges:
    def test_tiny_dataset_runs(self, shared_citeseer_matcher):
        ds = make_citeseer(20, seed=1)
        config = citeseer_config(
            matcher=shared_citeseer_matcher, train_fraction=1.0
        )
        result = ProgressiveER(config, Cluster(1)).run(ds)
        assert result.total_time > 0

    def test_dataset_without_duplicates(self, shared_citeseer_matcher):
        ds = make_citeseer(60, seed=2, duplicate_ratio=0.0)
        config = citeseer_config(
            matcher=shared_citeseer_matcher, train_fraction=1.0
        )
        result = ProgressiveER(config, Cluster(1)).run(ds)
        # No true pairs: everything reported (if anything) is a false
        # positive; the pipeline must still terminate cleanly.
        assert result.total_time > 0

    def test_single_machine(self, citeseer_small, citeseer_cfg):
        result = ProgressiveER(citeseer_cfg, Cluster(1)).run(citeseer_small)
        curve = recall_curve(
            result.duplicate_events, citeseer_small, end_time=result.total_time
        )
        assert curve.final_recall > 0.7

    def test_more_reduce_tasks_than_trees_possible(self, shared_citeseer_matcher):
        ds = make_citeseer(40, seed=4)
        config = citeseer_config(
            matcher=shared_citeseer_matcher, train_fraction=1.0
        )
        # 10 machines = 20 reduce tasks for a ~handful of trees.
        result = ProgressiveER(config, Cluster(10)).run(ds)
        assert result.total_time > 0


class TestCurveEdges:
    def test_empty_event_stream(self):
        ds = make_citeseer(30, seed=1)
        curve = recall_curve([], ds, end_time=10.0)
        assert curve.final_recall == 0.0
        assert curve.recall_at(5.0) == 0.0
        assert curve.time_to(0.5) is None
        assert curve.area_under() == 0.0

    def test_zero_horizon_area(self):
        ds = make_citeseer(30, seed=1)
        curve = recall_curve([], ds, end_time=0.0)
        assert curve.area_under(0.0) == 0.0


class TestBlockEdges:
    def test_size_override_validation(self):
        with pytest.raises(ValueError):
            Block(family="X", level=1, key="a", entity_ids=(), size_override=-1)

    def test_root_of_detached_chain(self):
        a = Block(family="X", level=1, key="a", entity_ids=(), size_override=4)
        b = Block(family="X", level=2, key="ab", entity_ids=(), size_override=2)
        a.add_child(b)
        a.detach_child(b)
        assert b.root is b
        assert list(a.descendants()) == []
