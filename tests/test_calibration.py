"""Unit tests for cost-model calibration (:mod:`repro.core.calibration`).

The fit itself is exercised on synthetic samples with known ground truth
(exact recovery, intercept recovery, negative-coefficient clamping), the
sample extraction on hand-built task results, and the whole loop once
end-to-end on a small real run through the serial backend.
"""

from __future__ import annotations

import pytest

from repro.core import citeseer_config
from repro.core.calibration import (
    CATEGORIES,
    MIN_WALL_SECONDS,
    TaskSample,
    calibration_report,
    fit_cost_model,
    task_samples,
    visible_cpus,
)
from repro.data import make_citeseer
from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce.clock import CostModel
from repro.mapreduce.types import Counters, JobResult, TaskResult
from repro.observability import format_calibration_report


def _sample(wall: float, **units_by_cat: float) -> TaskSample:
    units = tuple(units_by_cat.get(cat, 0.0) for cat in CATEGORIES)
    return TaskSample(
        phase="reduce",
        task_id=0,
        cost=sum(units),
        wall_seconds=wall,
        units=units,
    )


class TestFit:
    def test_exact_linear_model_is_recovered(self):
        compare_price, emit_price = 2e-3, 5e-4
        samples = []
        for i in range(1, 13):
            compare = float(i * 7 % 11 + 1) * 10.0
            emit = float(i * 3 % 5 + 1) * 10.0
            wall = compare_price * compare + emit_price * emit
            samples.append(_sample(wall, compare=compare, emit=emit))
        fit = fit_cost_model(samples)
        assert fit.seconds_per_unit["compare"] == pytest.approx(
            compare_price, rel=1e-5
        )
        assert fit.seconds_per_unit["emit"] == pytest.approx(emit_price, rel=1e-5)
        assert fit.samples_used == len(samples)
        assert fit.median_ape == pytest.approx(0.0, abs=1e-6)
        assert fit.residual_rms == pytest.approx(0.0, abs=1e-6)

    def test_per_task_intercept_is_recovered(self):
        """The constant ``task`` column absorbs fixed per-task overhead."""
        overhead, compare_price = 0.01, 1e-3
        samples = [
            _sample(overhead + compare_price * c, compare=c, task=1.0)
            for c in (5.0, 11.0, 23.0, 41.0, 83.0, 160.0)
        ]
        fit = fit_cost_model(samples)
        assert fit.seconds_per_unit["task"] == pytest.approx(overhead, rel=1e-4)
        assert fit.seconds_per_unit["compare"] == pytest.approx(
            compare_price, rel=1e-4
        )

    def test_negative_coefficients_are_clamped_and_refit(self):
        """A category anti-correlated with wall time gets price 0, never a
        negative price; the remaining columns are refit without it."""
        samples = [
            _sample(0.020, compare=10.0, read=0.0),
            _sample(0.015, compare=10.0, read=5.0),
            _sample(0.040, compare=20.0, read=0.0),
            _sample(0.030, compare=15.0, read=2.0),
        ]
        fit = fit_cost_model(samples)
        assert fit.seconds_per_unit["read"] == 0.0
        assert fit.seconds_per_unit["compare"] > 0.0
        assert all(price >= 0.0 for price in fit.seconds_per_unit.values())

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError, match="no calibration samples"):
            fit_cost_model([])

    def test_fit_weights_small_tasks_fairly(self):
        """Relative least squares: one huge outlier task must not wreck the
        prediction of the many small tasks (as absolute LS would)."""
        samples = [
            _sample(1e-3 * c, compare=c) for c in (2.0, 3.0, 5.0, 8.0, 13.0)
        ]
        # A single giant task observed 3x slower than the linear model.
        samples.append(_sample(3.0, compare=1000.0))
        fit = fit_cost_model(samples)
        predicted = fit.predict_seconds({"compare": 10.0})
        assert predicted == pytest.approx(1e-2, rel=0.35)


class TestTaskSamples:
    def _job(self, tasks):
        return JobResult(
            start_time=0.0,
            map_phase_end=0.0,
            end_time=1.0,
            map_tasks=[],
            reduce_tasks=tasks,
            events=[],
            output=[],
            output_files=[],
            counters=Counters(),
        )

    def test_extraction_and_untagged_remainder(self):
        task = TaskResult(
            task_id=3,
            cost=10.0,
            start_time=0.0,
            end_time=10.0,
            wall_ns=5_000_000,
            charge_profile=(("compare", 6.0), ("emit", 1.0)),
        )
        (sample,) = task_samples([self._job([task])])
        assert sample.phase == "reduce"
        assert sample.task_id == 3
        assert sample.wall_seconds == pytest.approx(5e-3)
        by_cat = dict(zip(CATEGORIES, sample.units))
        assert by_cat["compare"] == 6.0
        assert by_cat["emit"] == 1.0
        assert by_cat["other"] == pytest.approx(3.0)  # cost - tagged
        assert by_cat["task"] == 1.0  # intercept column

    def test_tasks_without_wall_clock_are_skipped(self):
        task = TaskResult(
            task_id=0, cost=5.0, start_time=0.0, end_time=5.0, wall_ns=0
        )
        assert task_samples([self._job([task])]) == []

    def test_phase_filter(self):
        task = TaskResult(
            task_id=0, cost=5.0, start_time=0.0, end_time=5.0, wall_ns=1000
        )
        assert task_samples([self._job([task])], phases=("map",)) == []


class TestReport:
    def _fit(self):
        samples = [_sample(1e-3 * c, compare=c) for c in (10.0, 20.0, 40.0)]
        return fit_cost_model(samples)

    def test_report_fields(self):
        report = calibration_report(
            self._fit(), workload={"family": "citeseer"}, workers=1
        )
        assert report["format"] == 1
        assert report["workload"] == {"family": "citeseer"}
        assert report["cpus_visible"] == visible_cpus()
        assert report["parallelism_limited"] is False
        assert set(report["seconds_per_unit"]) == set(CATEGORIES)
        assert report["fitted_constants"]["compare"] == pytest.approx(1.0)
        assert report["seconds_per_op"]["compare"] == pytest.approx(1e-3, rel=1e-4)
        assert "median APE" in report["error_band"] or "%" in report["error_band"]

    def test_parallelism_limited_flag(self):
        report = calibration_report(self._fit(), workers=visible_cpus() + 1)
        assert report["parallelism_limited"] is True

    def test_formatter_renders_report(self):
        report = calibration_report(
            self._fit(), workers=visible_cpus() + 1, workload={"size": 10}
        )
        text = format_calibration_report(report)
        assert "cost-model calibration" in text
        assert "WARNING" in text  # parallelism-limited fits are flagged
        assert "size=10" in text
        assert "compare" in text


class TestEndToEnd:
    def test_serial_run_yields_a_finite_fit(self):
        dataset = make_citeseer(200, seed=7)
        run = ExperimentRun(
            RunSpec(dataset, citeseer_config(), machines=2)
        ).run()
        samples = task_samples([run.result.job1, run.result.job2])
        assert samples, "serial tasks must record wall_ns"
        assert all(s.wall_seconds > 0 for s in samples)
        assert all(len(s.units) == len(CATEGORIES) for s in samples)
        fit = fit_cost_model(samples)
        assert fit.residual_rms == fit.residual_rms  # not NaN
        assert fit.residual_rms < float("inf")
        assert all(price >= 0.0 for price in fit.seconds_per_unit.values())
        report = calibration_report(fit, workers=1, backend="serial")
        assert report["samples_used"] == len(samples)
        scored = [s for s in samples if s.wall_seconds >= MIN_WALL_SECONDS]
        assert report["samples_scored"] == len(scored)


class TestCostModelPreset:
    """CostModel.from_calibration: fitted constants -> a usable model."""

    CONSTANTS = {
        "compare": 1.0,
        "emit": 0.0,
        "other": 0.10439488395091842,
        "read": 1.0487480702047354,
        "shuffle": 0.0,
        "sort": 0.035969993165063184,
        "task": 0.9852139299701528,
    }

    def test_from_fitted_constants_mapping(self):
        model = CostModel.from_calibration(self.CONSTANTS)
        base = CostModel()
        assert model.compare == pytest.approx(base.compare)
        assert model.read_record == pytest.approx(
            base.read_record * self.CONSTANTS["read"]
        )
        assert model.emit_pair == 0.0
        assert model.shuffle_record == 0.0
        assert model.sort_item == pytest.approx(
            base.sort_item * self.CONSTANTS["sort"]
        )
        # Bookkeeping costs scale by the untagged remainder's constant.
        assert model.hint_setup == pytest.approx(
            base.hint_setup * self.CONSTANTS["other"]
        )
        assert model.schedule_block == pytest.approx(
            base.schedule_block * self.CONSTANTS["other"]
        )
        assert model.stat_record == pytest.approx(
            base.stat_record * self.CONSTANTS["other"]
        )

    def test_report_dict_and_fit_round_trip(self):
        """report dict, fitted-constants mapping and CalibrationFit agree."""
        samples = [
            _sample(1e-3 * c + 1e-5 * r, compare=c, read=r)
            for c, r in ((10.0, 3.0), (20.0, 1.0), (40.0, 7.0))
        ]
        fit = fit_cost_model(samples)
        report = calibration_report(fit, workers=1, backend="serial")
        from_fit = CostModel.from_calibration(fit)
        from_report = CostModel.from_calibration(report)
        from_constants = CostModel.from_calibration(report["fitted_constants"])
        assert from_fit == from_report == from_constants

    def test_calibrated_model_runs_the_pipeline(self):
        """The preset slots into RunSpec and produces a deterministic run."""
        model = CostModel.from_calibration(self.CONSTANTS)
        dataset = make_citeseer(120, seed=7)
        spec = RunSpec(
            dataset, citeseer_config(), machines=2, cost_model=model
        )
        run_a = ExperimentRun(spec).run()
        run_b = ExperimentRun(spec).run()
        assert run_a.total_time == run_b.total_time
        assert run_a.found_pairs == run_b.found_pairs
        # Cheaper bookkeeping than the stock model -> strictly less time.
        stock = ExperimentRun(
            RunSpec(dataset, citeseer_config(), machines=2)
        ).run()
        assert run_a.total_time < stock.total_time
        assert run_a.found_pairs == stock.found_pairs

    def test_rejects_fit_without_compare_price(self):
        class Fit:
            seconds_per_unit = {"compare": 0.0, "read": 1.0}

        with pytest.raises(ValueError, match="compare price"):
            CostModel.from_calibration(Fit())

    def test_rejects_unknown_payload(self):
        with pytest.raises(TypeError, match="from_calibration"):
            CostModel.from_calibration(42)
