"""Golden-trace regression test for a fixed three-tenant schedule.

A pinned Poisson arrival trace (three tenants, mixed interactive/batch
lanes, an admission queue cap that rejects the tail) runs through
:class:`JobScheduler`, and everything observable is reduced to a JSON
shape: the decision log (job/kind/ready/dispatch plus candidate count),
per-job outcomes, per-tenant usage, per-lane latency percentiles, the
scheduler's trace-event shape (lease spans + admission instants) and the
``sched`` metrics scope.  Virtual times are deterministic by contract
(the determinism headline of the scheduler), so timestamps ARE part of
the pinned shape here — any drift in dispatch order, fair-share
accounting or lease settlement shows up as a readable JSON diff.

The shape is stored in ``tests/fixtures/golden_sched_trace.json``.
Regenerate after an intentional change with::

    PYTHONPATH=src python tests/test_golden_sched_trace.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.mapreduce import MapReduceJob, Mapper, Reducer
from repro.observability import MetricsRegistry, Tracer, chrome_trace_events
from repro.scheduling import AdmissionPolicy, JobScheduler, poisson_arrivals

FIXTURE = Path(__file__).parent / "fixtures" / "golden_sched_trace.json"

#: Pinned workload: ten bursty Poisson arrivals over three weighted
#: tenants, ~40% interactive.  The admission policy is tuned so the trace
#: exercises every decision: beta's fifth submission hits the queue cap
#: (``queue-full``), gamma's later work blows its cost budget
#: (``over-budget``), and the max-active cap queues the early burst.
GOLDEN_SEED = 11
GOLDEN_ARRIVALS = dict(
    seed=GOLDEN_SEED,
    rate=0.5,
    count=10,
    tenants=("acme", "beta", "gamma"),
    tenant_weights=(3.0, 2.0, 1.0),
    interactive_fraction=0.4,
)
GOLDEN_ADMISSION = AdmissionPolicy(
    max_queued=4,
    cost_budgets={"gamma": 20.0},
    max_active=3,
)

_LINES = [
    "progressive resolution of entities",
    "map reduce over blocks",
    "entities resolve in waves",
    "blocks split by cost",
]


class _WordMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(0.5 * len(values))
        context.write((key, sum(values)))


def _golden_job(name):
    return MapReduceJob(_WordMapper, _SumReducer, name=name, alpha=2.0)


def build_golden_shape() -> dict:
    tracer = Tracer()
    metrics = MetricsRegistry()
    metrics.begin_run("golden-sched")
    scheduler = JobScheduler(
        machines=2,
        policy="fair",
        admission=GOLDEN_ADMISSION,
        tracer=tracer,
        metrics=metrics,
    )
    for tenant, weight in (("acme", 3.0), ("beta", 2.0), ("gamma", 1.0)):
        scheduler.add_tenant(tenant, weight)
    for arrival in poisson_arrivals(**GOLDEN_ARRIVALS):
        records = _LINES * (1 + int(arrival.size_draw * 3))
        scheduler.submit_job(
            _golden_job(f"job-{arrival.index}"),
            records,
            tenant=arrival.tenant,
            lane=arrival.lane,
            arrival=arrival.time,
            estimated_cost=float(len(records)),
        )
    report = scheduler.run()

    decisions = [
        {
            "job": d["job"],
            "tenant": d["tenant"],
            "lane": d["lane"],
            "kind": d["kind"],
            "ready": round(d["ready"], 9),
            "dispatch": round(d["dispatch"], 9),
            "candidates": len(d["candidates"]),
        }
        for d in report.decisions
    ]
    trace_events = []
    for event in chrome_trace_events(tracer):
        args = event.get("args", {})
        shape = {"name": event["name"], "ph": event["ph"], "tid": event["tid"]}
        if "cat" in event:
            shape["cat"] = event["cat"]
        for key in ("tenant", "lane"):
            if key in args:
                shape[key] = args[key]
        trace_events.append(shape)
    trace_events.sort(key=lambda e: json.dumps(e, sort_keys=True))
    sched_metrics = [
        snapshot.as_dict() for snapshot in metrics.scoped("sched")
    ]
    return {
        "decisions": decisions,
        "outcomes": [o.to_dict() for o in report.outcomes],
        "tenants": {usage.name: usage.to_dict() for usage in report.tenants},
        "latency": {
            lane: report.latency_percentiles(lane)
            for lane in ("interactive", "batch")
        },
        "makespan": round(report.makespan, 9),
        "queue_depth_peak": report.queue_depth_peak,
        "trace_events": trace_events,
        "metrics": sched_metrics,
    }


def test_golden_sched_trace_shape_is_stable():
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_sched_trace.py`"
    )
    expected = json.loads(FIXTURE.read_text())
    actual = json.loads(json.dumps(build_golden_shape()))
    assert actual["decisions"] == expected["decisions"]
    assert actual["outcomes"] == expected["outcomes"]
    assert actual["tenants"] == expected["tenants"]
    assert actual == expected


def test_golden_scenario_actually_exercises_the_scheduler():
    """Guard against the fixture silently pinning a degenerate run."""
    shape = build_golden_shape()
    lanes = {d["lane"] for d in shape["decisions"]}
    assert lanes == {"interactive", "batch"}, "workload must mix lanes"
    assert len(shape["tenants"]) == 3
    reasons = {o["reason"] for o in shape["outcomes"] if o["reason"]}
    assert reasons == {"queue-full", "over-budget"}, (
        f"trace must exercise both rejection reasons, got {reasons}"
    )
    assert any(o["decision"] == "queued" for o in shape["outcomes"])
    finished = [o for o in shape["outcomes"] if o["finished_at"] is not None]
    assert len(finished) >= 4
    assert shape["queue_depth_peak"] >= 2, "arrivals must actually queue"


if __name__ == "__main__":
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(build_golden_shape(), indent=2) + "\n")
    print(f"wrote {FIXTURE}")
