"""Cross-backend determinism: serial and process executors must produce
bit-for-bit identical virtual-time results.

The execution backend only decides *where* per-task computations run; the
engine replays the resulting payloads through its slot pool in task-id
order.  These tests pin the contract on paper-shaped workloads: a FIG8-scale
ours-versus-Basic comparison and a small FIG9 scheduler sweep, both seeded,
plus targeted engine-level jobs (combiner, failures, empty input).
"""

from __future__ import annotations

import pytest

from repro.evaluation import ExperimentRun, RunSpec, sample_times
from repro.mapreduce import (
    Cluster,
    Combiner,
    FaultPlan,
    MapReduceJob,
    Mapper,
    ParallelExecutor,
    Reducer,
    RetryPolicy,
    SerialExecutor,
    SpeculationConfig,
    make_executor,
)

#: Worker count for the process backend in these tests.  Two is enough to
#: exercise real fan-out (pickled payloads, out-of-order completion) while
#: staying cheap on small CI machines.
WORKERS = 2


def job_fingerprint(job):
    """Everything observable about a JobResult, hashable and comparable.

    Event equality alone is not enough — ``Event.payload`` is excluded from
    the dataclass ``__eq__`` — so payloads are compared explicitly.
    """
    return (
        job.start_time,
        job.map_phase_end,
        job.end_time,
        tuple(
            (t.task_id, t.cost, t.start_time, t.end_time)
            for t in job.map_tasks + job.reduce_tasks
        ),
        tuple((e.time, e.kind, repr(e.payload)) for e in job.events),
        tuple(sorted(job.counters.as_dict().items())),
        tuple(
            (f.task_id, f.index, f.close_time, tuple(repr(r) for r in f.records))
            for f in job.output_files
        ),
        tuple(repr(record) for record in job.output),
    )


def run_fingerprint(run):
    """Fingerprint of a CurveRun: all jobs plus the recall-vs-time curve."""
    result = run.result
    jobs = [result.job1, result.job2] if hasattr(result, "job2") else [result.job]
    times = sample_times(run.total_time, points=25)
    curve = tuple(run.curve.recall_at(t) for t in times)
    return tuple(job_fingerprint(job) for job in jobs), curve, run.total_time


class TestPaperWorkloadParity:
    def test_fig8_scale_progressive_parity(self, citeseer_small, citeseer_cfg):
        serial = ExperimentRun(
            RunSpec(citeseer_small, citeseer_cfg, machines=10, executor=SerialExecutor())
        ).run()
        process = ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_cfg, machines=10,
                executor=ParallelExecutor(WORKERS),
            )
        ).run()
        assert run_fingerprint(serial) == run_fingerprint(process)

    def test_fig8_scale_basic_parity(self, citeseer_small, basic_cfg):
        serial = ExperimentRun(
            RunSpec(citeseer_small, basic_cfg, machines=10, executor=SerialExecutor())
        ).run()
        process = ExperimentRun(
            RunSpec(
                citeseer_small, basic_cfg, machines=10,
                executor=ParallelExecutor(WORKERS),
            )
        ).run()
        assert run_fingerprint(serial) == run_fingerprint(process)

    @pytest.mark.parametrize("strategy", ["nosplit", "lpt"])
    def test_fig9_small_scheduler_parity(self, citeseer_small, citeseer_cfg, strategy):
        serial = ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_cfg, machines=6,
                strategy=strategy, executor=SerialExecutor(),
            )
        ).run()
        process = ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_cfg, machines=6,
                strategy=strategy, executor=ParallelExecutor(WORKERS),
            )
        ).run()
        assert run_fingerprint(serial) == run_fingerprint(process)


# ---------------------------------------------------------------------------
# Engine-level parity on synthetic jobs
# ---------------------------------------------------------------------------


class _WordMapper(Mapper):
    def map(self, record, context):
        for word in record.split():
            context.emit(word, 1)


class _SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.charge(0.5 * len(values))
        context.record_event("group", key)
        context.write((key, sum(values)))


class _SumCombiner(Combiner):
    def combine(self, key, values):
        return [sum(values)]


_LINES = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "",
    "fox fox fox",
] * 4


def _wordcount_job(combiner=False):
    return MapReduceJob(
        _WordMapper,
        _SumReducer,
        combiner=_SumCombiner() if combiner else None,
        alpha=1.0,
    )


class TestEngineParity:
    @pytest.mark.parametrize("combiner", [False, True])
    def test_wordcount_parity(self, combiner):
        serial = Cluster(3).run_job(_wordcount_job(combiner), _LINES)
        process = Cluster(3, executor=ParallelExecutor(WORKERS)).run_job(
            _wordcount_job(combiner), _LINES
        )
        assert job_fingerprint(serial) == job_fingerprint(process)

    def test_failure_injection_parity(self):
        kwargs = dict(map_failures={1: 2}, reduce_failures={0: 1})
        serial = Cluster(2).run_job(_wordcount_job(), _LINES, **kwargs)
        process = Cluster(2, executor=ParallelExecutor(WORKERS)).run_job(
            _wordcount_job(), _LINES, **kwargs
        )
        assert job_fingerprint(serial) == job_fingerprint(process)

    def test_empty_input_parity(self):
        serial = Cluster(2).run_job(_wordcount_job(), [])
        process = Cluster(2, executor=ParallelExecutor(WORKERS)).run_job(
            _wordcount_job(), []
        )
        assert job_fingerprint(serial) == job_fingerprint(process)

    def test_per_job_executor_override(self):
        cluster = Cluster(2)  # serial by default
        override = cluster.run_job(
            _wordcount_job(), _LINES, executor=ParallelExecutor(WORKERS)
        )
        default = cluster.run_job(_wordcount_job(), _LINES)
        assert job_fingerprint(override) == job_fingerprint(default)


class TestFaultParity:
    """Seeded fault plans decide everything in the driver, so they cannot
    distinguish backends — faulty runs stay bit-identical."""

    #: Crashes + seeded stragglers + speculation + backoff, all at once.
    PLAN = FaultPlan(
        seed=11,
        fault_rate=0.25,
        straggler_rate=0.3,
        straggler_factor=2.0,
        retry=RetryPolicy(max_attempts=50, backoff_base=0.25),
        speculation=SpeculationConfig(enabled=True, threshold=1.5),
    )

    def test_wordcount_fault_parity(self):
        serial = Cluster(2, faults=self.PLAN).run_job(_wordcount_job(), _LINES)
        process = Cluster(
            2, executor=ParallelExecutor(WORKERS), faults=self.PLAN
        ).run_job(_wordcount_job(), _LINES)
        assert job_fingerprint(serial) == job_fingerprint(process)

    def test_progressive_pipeline_fault_parity(self, citeseer_small, citeseer_cfg):
        plan = FaultPlan(
            seed=5, fault_rate=0.1, retry=RetryPolicy(max_attempts=50)
        )
        serial = ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_cfg, machines=6,
                executor=SerialExecutor(), faults=plan,
            )
        ).run()
        process = ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_cfg, machines=6,
                executor=ParallelExecutor(WORKERS), faults=plan,
            )
        ).run()
        assert run_fingerprint(serial) == run_fingerprint(process)

    def test_zero_rate_plan_reproduces_clean_run(self, citeseer_small, citeseer_cfg):
        clean = ExperimentRun(
            RunSpec(citeseer_small, citeseer_cfg, machines=6)
        ).run()
        zeroed = ExperimentRun(
            RunSpec(
                citeseer_small, citeseer_cfg, machines=6,
                faults=FaultPlan(seed=99),
            )
        ).run()
        assert run_fingerprint(clean) == run_fingerprint(zeroed)


class TestExecutorApi:
    def test_make_executor_names(self):
        assert make_executor("serial").name == "serial"
        assert make_executor("process", 3).name == "process"
        assert make_executor("process", 3).workers == 3

    def test_make_executor_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            make_executor("threads")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)

    def test_single_worker_degrades_in_process(self):
        # One worker cannot beat in-process execution; results are identical.
        serial = Cluster(2).run_job(_wordcount_job(), _LINES)
        degraded = Cluster(2, executor=ParallelExecutor(1)).run_job(
            _wordcount_job(), _LINES
        )
        assert job_fingerprint(serial) == job_fingerprint(degraded)
