"""Unit tests for the noise model."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.perturb import (
    NoiseProfile,
    Perturber,
    swap_words,
    truncate,
    typo_delete,
    typo_insert,
    typo_substitute,
    typo_transpose,
)

text_strategy = st.text(alphabet="abcdefgh xyz", min_size=0, max_size=30)


class TestTypoOperations:
    @given(text_strategy, st.integers(0, 2**30))
    def test_substitute_preserves_length(self, text, seed):
        rng = random.Random(seed)
        assert len(typo_substitute(rng, text)) == len(text)

    @given(text_strategy, st.integers(0, 2**30))
    def test_delete_shrinks_by_one(self, text, seed):
        rng = random.Random(seed)
        result = typo_delete(rng, text)
        if len(text) <= 1:
            assert result == text
        else:
            assert len(result) == len(text) - 1

    @given(text_strategy, st.integers(0, 2**30))
    def test_insert_grows_by_one(self, text, seed):
        rng = random.Random(seed)
        assert len(typo_insert(rng, text)) == len(text) + 1

    @given(text_strategy, st.integers(0, 2**30))
    def test_transpose_is_permutation(self, text, seed):
        rng = random.Random(seed)
        result = typo_transpose(rng, text)
        assert sorted(result) == sorted(text)

    @given(text_strategy, st.integers(0, 2**30))
    def test_swap_words_preserves_words(self, text, seed):
        rng = random.Random(seed)
        assert sorted(swap_words(rng, text).split()) == sorted(text.split())

    @given(text_strategy, st.integers(0, 2**30))
    def test_truncate_is_prefix(self, text, seed):
        rng = random.Random(seed)
        result = truncate(rng, text)
        assert text.startswith(result) or result == text.rstrip() or text[: len(result)] == result


class TestNoiseProfile:
    def test_protect_prefix_never_edited(self):
        profile = NoiseProfile(
            typo_rate=5.0, truncate_prob=1.0, swap_prob=1.0,
            missing_prob=0.0, protect_prefix=4, apply_prob=1.0,
        )
        perturber = Perturber({"title": profile})
        rng = random.Random(5)
        for _ in range(50):
            dirty = perturber.perturb_value(rng, "title", "abcdef ghij")
            assert dirty is not None
            assert dirty.startswith("abcd")

    def test_missing_prob_one_drops_value(self):
        perturber = Perturber({"a": NoiseProfile(missing_prob=1.0)})
        rng = random.Random(0)
        assert perturber.perturb_value(rng, "a", "value") is None

    def test_apply_prob_zero_copies_verbatim(self):
        profile = NoiseProfile(typo_rate=10.0, missing_prob=0.0, apply_prob=0.0)
        perturber = Perturber({"a": profile})
        rng = random.Random(0)
        for _ in range(20):
            assert perturber.perturb_value(rng, "a", "clean value") == "clean value"

    def test_zero_noise_profile_is_identity(self):
        profile = NoiseProfile(
            typo_rate=0.0, truncate_prob=0.0, swap_prob=0.0, missing_prob=0.0
        )
        perturber = Perturber({"a": profile})
        rng = random.Random(1)
        assert perturber.perturb_value(rng, "a", "same") == "same"

    def test_default_profile_used_for_unknown_attribute(self):
        default = NoiseProfile(missing_prob=1.0)
        perturber = Perturber({}, default=default)
        assert perturber.profile_for("anything") is default


class TestPerturbRecord:
    def test_record_drops_missing_values(self):
        perturber = Perturber(
            {
                "keep": NoiseProfile(typo_rate=0, truncate_prob=0, swap_prob=0, missing_prob=0),
                "drop": NoiseProfile(missing_prob=1.0),
            }
        )
        rng = random.Random(2)
        dirty = perturber.perturb_record(rng, {"keep": "v1", "drop": "v2"})
        assert dirty == {"keep": "v1"}

    def test_deterministic_given_seed(self):
        perturber = Perturber({"a": NoiseProfile(typo_rate=2.0)})
        record = {"a": "hello world example"}
        out1 = perturber.perturb_record(random.Random(42), dict(record))
        out2 = perturber.perturb_record(random.Random(42), dict(record))
        assert out1 == out2
