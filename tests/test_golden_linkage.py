"""Golden fixtures for the linkage scenario and the meta-blocked pipeline.

Two pinned runs, each reduced to a JSON *shape* in ``tests/fixtures``
(same scheme as ``test_golden_pipeline.py``):

* ``golden_linkage.json`` — the two-source dataset under
  ``linkage_config`` (clean-clean mode, cross-source candidates only).
  Pins the found-pair set size, the per-pair cross-source property via
  the same-source comparison counter, the schedule digest and the first
  discoveries with their virtual timestamps.
* ``golden_metablock.json`` — the books dataset under block filtering at
  ratio 0.5 (the default 0.8 keeps all three blocks of a 3-family
  scheme).  Pins the pruning summary (memberships and candidate pairs
  before/after), the found pairs, and the schedule digest — so a change
  to the filter's tie-break or the annotation masking shows up as a
  readable JSON diff.

Regenerate after an intentional behavior change with::

    PYTHONPATH=src python tests/test_golden_linkage.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.config import books_config, linkage_config
from repro.data.books import make_books
from repro.data.linkage import make_linkage
from repro.evaluation import ExperimentRun, RunSpec

FIXTURES = Path(__file__).parent / "fixtures"
LINKAGE_FIXTURE = FIXTURES / "golden_linkage.json"
METABLOCK_FIXTURE = FIXTURES / "golden_metablock.json"

LINKAGE_SIZE = 400
LINKAGE_SEED = 13
METABLOCK_SIZE = 400
METABLOCK_SEED = 11
BF_RATIO = 0.5
GOLDEN_MACHINES = 3
EVENT_PREFIX = 20


def _schedule_digest(schedule) -> str:
    canonical = json.dumps(
        {
            "num_tasks": schedule.num_tasks,
            "assignment": dict(sorted(schedule.assignment.items())),
            "block_order": schedule.block_order,
            "sequence_stride": schedule.sequence_stride,
            "shards": sorted(schedule.shards),
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def _shape_of(run, *, counter_prefixes) -> dict:
    result = run.result
    counters = {
        key: value
        for key, value in sorted(result.job2.counters.as_flat_dict().items())
        if key.startswith(counter_prefixes)
    }
    return {
        "dataset": {
            "name": result.dataset.name,
            "entities": len(result.dataset.entities),
            "true_pairs": len(result.dataset.true_pairs),
        },
        "schedule": {
            "digest": _schedule_digest(result.schedule),
            "num_tasks": result.schedule.num_tasks,
            "num_trees": result.schedule.num_trees,
            "num_blocks": result.schedule.num_blocks,
        },
        "first_events": [
            [round(event.time, 6), list(event.payload)]
            for event in result.duplicate_events[:EVENT_PREFIX]
        ],
        "found_pairs": len(run.found_pairs),
        "final_recall": round(run.final_recall, 9),
        "total_time": round(run.total_time, 6),
        "counters": counters,
    }


def build_linkage_shape() -> dict:
    dataset = make_linkage(LINKAGE_SIZE, seed=LINKAGE_SEED)
    spec = RunSpec(dataset, linkage_config(), machines=GOLDEN_MACHINES)
    run = ExperimentRun(spec).run()
    shape = _shape_of(run, counter_prefixes=("driver.", "resolve."))
    source_of = {e.id: e.source for e in dataset.entities}
    shape["cross_source_pairs"] = sum(
        1 for a, b in run.found_pairs if source_of[a] != source_of[b]
    )
    shape["sources"] = {
        source: sum(1 for e in dataset.entities if e.source == source)
        for source in sorted({e.source for e in dataset.entities})
    }
    return shape


def build_metablock_shape() -> dict:
    dataset = make_books(METABLOCK_SIZE, seed=METABLOCK_SEED)
    spec = RunSpec(
        dataset,
        books_config(metablock_ratio=BF_RATIO),
        machines=GOLDEN_MACHINES,
        metablock="bf",
    )
    run = ExperimentRun(spec).run()
    shape = _shape_of(run, counter_prefixes=("driver.", "metablock."))
    plan = run.result.metablock
    shape["metablock"] = {
        "mode": plan.mode,
        "ratio": plan.ratio,
        "memberships": [plan.memberships_kept, plan.memberships_total],
        "pairs": [plan.pairs_kept, plan.pairs_total],
        "pair_reduction": round(plan.pair_reduction, 6),
    }
    return shape


def _assert_matches(actual: dict, expected: dict) -> None:
    for key in expected:
        if key in ("final_recall", "total_time"):
            assert actual[key] == pytest.approx(expected[key], abs=1e-6), key
        else:
            assert actual[key] == expected[key], key


class TestGoldenLinkage:
    def test_shape_is_stable(self):
        assert LINKAGE_FIXTURE.exists(), (
            f"missing fixture {LINKAGE_FIXTURE}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_linkage.py`"
        )
        _assert_matches(
            build_linkage_shape(), json.loads(LINKAGE_FIXTURE.read_text())
        )

    def test_scenario_is_not_vacuous(self):
        shape = build_linkage_shape()
        assert shape["found_pairs"] > 0
        assert shape["final_recall"] > 0.9
        # Every found pair joins the two sources.
        assert shape["cross_source_pairs"] == shape["found_pairs"]
        # The linkage veto actually fired on same-source candidates.
        assert shape["counters"].get("resolve.pairs_filtered", 0) > 0
        assert set(shape["sources"]) == {"a", "b"}


class TestGoldenMetablock:
    def test_shape_is_stable(self):
        assert METABLOCK_FIXTURE.exists(), (
            f"missing fixture {METABLOCK_FIXTURE}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_linkage.py`"
        )
        _assert_matches(
            build_metablock_shape(), json.loads(METABLOCK_FIXTURE.read_text())
        )

    def test_scenario_is_not_vacuous(self):
        shape = build_metablock_shape()
        assert shape["found_pairs"] > 0
        kept, total = shape["metablock"]["pairs"]
        assert 0 < kept < total
        assert shape["metablock"]["pair_reduction"] >= 2.0
        assert shape["counters"].get("metablock.pairs_pruned", 0) == total - kept

    def test_metablocked_output_is_a_subset_of_unpruned(self):
        dataset = make_books(METABLOCK_SIZE, seed=METABLOCK_SEED)
        unpruned = ExperimentRun(
            RunSpec(dataset, books_config(), machines=GOLDEN_MACHINES)
        ).run()
        pruned = ExperimentRun(
            RunSpec(
                dataset,
                books_config(metablock_ratio=BF_RATIO),
                machines=GOLDEN_MACHINES,
                metablock="bf",
            )
        ).run()
        assert pruned.found_pairs <= unpruned.found_pairs
        assert len(pruned.found_pairs) >= 0.95 * len(unpruned.found_pairs)


if __name__ == "__main__":
    FIXTURES.mkdir(parents=True, exist_ok=True)
    LINKAGE_FIXTURE.write_text(
        json.dumps(build_linkage_shape(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {LINKAGE_FIXTURE}")
    METABLOCK_FIXTURE.write_text(
        json.dumps(build_metablock_shape(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {METABLOCK_FIXTURE}")
