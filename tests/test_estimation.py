"""Unit tests for duplicate and cost estimation (Equations 2-5)."""

import pytest

from repro.blocking import Block, citeseer_scheme
from repro.core.config import citeseer_config
from repro.core.estimation import (
    FRACTION_BINS,
    EstimationModel,
    LearnedEstimator,
    OracleEstimator,
    UniformEstimator,
    _fraction_bin,
)
from repro.data import Dataset, Entity
from repro.mapreduce import CostModel
from repro.mechanisms import window_pairs_count


def _tree():
    """root(10) -> [mid(6) -> leaf(3), leaf2(2)]"""
    root = Block(family="X", level=1, key="r", entity_ids=(), size_override=10)
    mid = Block(family="X", level=2, key="rm", entity_ids=(), size_override=6)
    leaf = Block(family="X", level=3, key="rml", entity_ids=(), size_override=3)
    leaf2 = Block(family="X", level=2, key="rl", entity_ids=(), size_override=2)
    root.add_child(mid)
    mid.add_child(leaf)
    root.add_child(leaf2)
    return root, mid, leaf, leaf2


def _model(estimator, dataset_size=100):
    config = citeseer_config()
    return EstimationModel(
        config, CostModel(), estimator, dataset_size, avg_cost_factor=1.0
    )


def _coverage(root):
    # Full coverage (no dominating overlap) for the synthetic tree.
    return {b.uid: b.total_pairs for b in root.subtree()}


class TestFractionBins:
    def test_bins_are_increasing(self):
        assert list(FRACTION_BINS) == sorted(FRACTION_BINS)

    def test_extremes(self):
        assert _fraction_bin(0.0) == 0
        assert _fraction_bin(1.0) == len(FRACTION_BINS) - 1

    def test_mid_bin(self):
        assert FRACTION_BINS[_fraction_bin(0.002)] >= 0.002


class TestUniformEstimator:
    def test_estimate_scales_with_pairs(self):
        est = UniformEstimator(0.1)
        block = Block(family="X", level=1, key="a", entity_ids=(), size_override=10)
        assert est.estimate(block, cov=45, dataset_size=100) == pytest.approx(4.5)

    def test_clamped_to_coverage(self):
        est = UniformEstimator(1.0)
        block = Block(family="X", level=1, key="a", entity_ids=(), size_override=10)
        assert est.estimate(block, cov=3, dataset_size=100) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformEstimator(1.5)


class TestLearnedEstimator:
    def test_requires_ground_truth(self):
        ds = Dataset(entities=[Entity(id=0, attrs={"title": "ab"})])
        with pytest.raises(ValueError):
            LearnedEstimator().fit(ds, citeseer_scheme())

    def test_requires_fit_before_use(self):
        with pytest.raises(RuntimeError):
            LearnedEstimator().probability("X", 1, 0.5)

    def test_learns_size_dependence(self, citeseer_medium):
        training = citeseer_medium.sample(0.4, seed=1)
        learned = LearnedEstimator().fit(training, citeseer_scheme())
        # Smaller blocks should carry a duplicate probability at least as
        # high as huge blocks (the paper's observation in VI-A4).
        small = learned.probability("X", 3, 0.002)
        huge = learned.probability("X", 1, 0.4)
        assert small >= huge

    def test_probabilities_in_range(self, citeseer_small):
        learned = LearnedEstimator().fit(citeseer_small, citeseer_scheme())
        for fraction in (1e-5, 1e-3, 0.05, 0.5, 1.0):
            for family in ("X", "Y", "Z"):
                assert 0.0 <= learned.probability(family, 1, fraction) <= 1.0


class TestOracleEstimator:
    def test_counts_true_pairs(self):
        entities = [Entity(id=i, attrs={"title": "same title"}) for i in range(4)]
        ds = Dataset(entities=entities, clusters={0: 0, 1: 0, 2: 1, 3: 2})
        scheme = citeseer_scheme()
        oracle = OracleEstimator().fit(ds, scheme)
        block = Block(
            family="X", level=1, key="sa", entity_ids=(0, 1, 2, 3)
        )
        # Only pair (0, 1) is a true duplicate.
        assert oracle.estimate(block, cov=6, dataset_size=4) == 1.0


class TestEquations:
    def test_leaf_dup_is_frac_times_d(self):
        root, mid, leaf, leaf2 = _tree()
        estimator = UniformEstimator(0.2)
        model = _model(estimator)
        model.estimate_tree(root, _coverage(root))
        est = model.estimates[leaf.uid]
        # Equation 2 with no children: Dup = Frac * d.
        assert est.dup == pytest.approx(est.frac * est.d)

    def test_parent_dup_subtracts_children(self):
        root, mid, leaf, leaf2 = _tree()
        model = _model(UniformEstimator(0.2))
        model.estimate_tree(root, _coverage(root))
        mid_est = model.estimates[mid.uid]
        leaf_est = model.estimates[leaf.uid]
        expected = max(
            0.0, mid_est.frac * mid_est.d - leaf_est.frac * leaf_est.d
        )
        assert mid_est.dup == pytest.approx(expected)

    def test_root_frac_is_one_and_full(self):
        root, *_ = _tree()
        model = _model(UniformEstimator(0.2))
        model.estimate_tree(root, _coverage(root))
        est = model.estimates[root.uid]
        assert est.frac == 1.0
        assert est.full

    def test_dis_bounded_by_threshold(self):
        root, mid, leaf, leaf2 = _tree()
        model = _model(UniformEstimator(0.01))
        model.estimate_tree(root, _coverage(root))
        for block in (mid, leaf, leaf2):
            est = model.estimates[block.uid]
            assert est.dis <= est.th  # Th(X) = |X| per Section VI-A5
            assert est.th == block.size

    def test_cost_positive_and_utility_consistent(self):
        root, *_ = _tree()
        model = _model(UniformEstimator(0.2))
        model.estimate_tree(root, _coverage(root))
        for block in root.subtree():
            est = model.estimates[block.uid]
            assert est.cost > 0
            assert est.util == pytest.approx(est.dup / est.cost)

    def test_windows_follow_level_policy(self):
        root, mid, leaf, leaf2 = _tree()
        model = _model(UniformEstimator(0.2))
        model.estimate_tree(root, _coverage(root))
        assert model.estimates[root.uid].window == 15
        assert model.estimates[mid.uid].window == 10
        assert model.estimates[leaf.uid].window == 5
        assert model.estimates[leaf2.uid].window == 5


class TestSplitUpdates:
    def test_split_makes_child_full_root(self):
        root, mid, leaf, leaf2 = _tree()
        model = _model(UniformEstimator(0.2))
        coverage = _coverage(root)
        model.estimate_tree(root, coverage)
        model.apply_split(root, mid)
        assert mid.is_root
        child_est = model.estimates[mid.uid]
        assert child_est.full
        assert child_est.frac == 1.0
        assert child_est.window == 15

    def test_split_reduces_parent_coverage(self):
        root, mid, leaf, leaf2 = _tree()
        model = _model(UniformEstimator(0.2))
        model.estimate_tree(root, _coverage(root))
        cov_before = model.estimates[root.uid].cov
        child_cov = model.estimates[mid.uid].cov
        model.apply_split(root, mid)
        assert model.estimates[root.uid].cov == pytest.approx(cov_before - child_cov)

    def test_split_increases_child_cost(self):
        root, mid, leaf, leaf2 = _tree()
        model = _model(UniformEstimator(0.2))
        model.estimate_tree(root, _coverage(root))
        cost_before = model.estimates[mid.uid].cost
        model.apply_split(root, mid)
        # Full resolution costs at least as much as the Th-bounded one here.
        assert model.estimates[mid.uid].cost >= cost_before * 0.5

    def test_split_decreases_parent_dup(self):
        root, mid, leaf, leaf2 = _tree()
        model = _model(UniformEstimator(0.2))
        model.estimate_tree(root, _coverage(root))
        dup_before = model.estimates[root.uid].dup
        model.apply_split(root, mid)
        assert model.estimates[root.uid].dup <= dup_before + 1e-9

    def test_split_cost_preview_matches_actual(self):
        root, mid, leaf, leaf2 = _tree()
        model = _model(UniformEstimator(0.2))
        model.estimate_tree(root, _coverage(root))
        # Preview the cost of keeping only leaf2 (i.e. splitting mid off).
        preview = model.split_cost_preview(root, [leaf2])
        model.apply_split(root, mid)
        assert model.estimates[root.uid].cost == pytest.approx(preview)
