"""Pin the legacy ``map_failures`` / ``reduce_failures`` retry path.

The ``{task_id: n}`` failure dicts predate :class:`FaultPlan` and model
Hadoop's deterministic full-cost retry: a failed attempt occupies its slot
for the task's entire cost, then the task re-executes from scratch.  These
tests pin the exact arithmetic (attempt placement, timeline stretch, slot
choice, counters, trace spans) so the path can later be refactored onto
:class:`~repro.mapreduce.faults.RetryPolicy` without behaviour drift.
"""

from __future__ import annotations

import pytest

from repro.mapreduce import Cluster, MapReduceJob, Mapper, Reducer, SlotPool
from repro.mapreduce.engine import Cluster as EngineCluster
from repro.observability import Tracer


class _Identity(Mapper):
    def map(self, record, context):
        context.emit(record, 1)


class _Count(Reducer):
    def reduce(self, key, values, context):
        context.charge(1.0)
        context.write((key, len(values)))


def _job(name="legacy"):
    return MapReduceJob(_Identity, _Count, name=name)


class TestScheduleAttempts:
    """`Cluster._schedule_attempts` is the whole legacy model: one slot,
    ``failures + 1`` back-to-back full-cost attempts."""

    def test_failed_attempts_occupy_full_cost(self):
        pool = SlotPool(2, 0.0)
        start, end, attempt_start, slot = EngineCluster._schedule_attempts(
            pool, 3.0, 2
        )
        assert (start, end, attempt_start, slot) == (0.0, 9.0, 6.0, 0)

    def test_zero_failures_degenerates_to_plain_schedule(self):
        pool = SlotPool(2, 5.0)
        start, end, attempt_start, slot = EngineCluster._schedule_attempts(
            pool, 4.0, 0
        )
        assert (start, end, attempt_start, slot) == (5.0, 9.0, 5.0, 0)

    def test_all_attempts_stay_on_one_slot(self):
        """Legacy retries never migrate: a 7-unit task with 3 failures
        blocks its slot for 28 units while the other slot stays free."""
        pool = SlotPool(2, 0.0)
        EngineCluster._schedule_attempts(pool, 7.0, 3)
        start, end, slot = pool.schedule(1.0)
        assert (start, slot) == (0.0, 1)  # slot 1 untouched at t=0

    def test_attempts_follow_earliest_free_slot_order(self):
        pool = SlotPool(2, 0.0)
        EngineCluster._schedule_attempts(pool, 10.0, 0)  # slot 0 until 10
        _, _, attempt_start, slot = EngineCluster._schedule_attempts(
            pool, 2.0, 1
        )
        assert slot == 1  # earliest-free wins
        assert attempt_start == 2.0  # one failed attempt first


class TestLegacyTimelineStretch:
    def test_map_failure_stretches_by_full_costs(self):
        records = ["a", "b", "c", "d"]
        clean = Cluster(1).run_job(_job(), records, num_map_tasks=2)
        failed = Cluster(1).run_job(
            _job(), records, num_map_tasks=2, map_failures={0: 2}
        )
        clean_task = clean.map_tasks[0]
        failed_task = failed.map_tasks[0]
        cost = clean_task.cost
        # Two failed attempts prepend exactly 2 * cost to the task.
        assert failed_task.end_time == pytest.approx(
            clean_task.end_time + 2 * cost
        )
        assert failed_task.start_time == clean_task.start_time
        assert failed_task.num_failed_attempts == 2
        assert not failed_task.speculative

    def test_reduce_phase_waits_for_stretched_map(self):
        records = ["a", "b"]
        clean = Cluster(1).run_job(_job(), records, num_map_tasks=1)
        failed = Cluster(1).run_job(
            _job(), records, num_map_tasks=1, map_failures={0: 1}
        )
        cost = clean.map_tasks[0].cost
        assert failed.map_phase_end == pytest.approx(
            clean.map_phase_end + cost
        )
        # The reduce barrier moves with the map phase.
        for clean_t, failed_t in zip(clean.reduce_tasks, failed.reduce_tasks):
            assert failed_t.start_time == pytest.approx(
                clean_t.start_time + cost
            )

    def test_retry_counters_match_injection(self):
        result = Cluster(2).run_job(
            _job(), ["a", "b", "c"], map_failures={0: 2, 1: 1},
            reduce_failures={0: 3},
        )
        assert result.counters.get("engine", "map_retries") == 3
        assert result.counters.get("engine", "reduce_retries") == 3

    def test_failed_attempt_count_lands_on_task_results(self):
        result = Cluster(2).run_job(
            _job(), ["a", "b", "c"], map_failures={1: 2}
        )
        per_task = {t.task_id: t.num_failed_attempts for t in result.map_tasks}
        assert per_task[1] == 2
        assert all(n == 0 for tid, n in per_task.items() if tid != 1)


class TestLegacyTraceSpans:
    def test_attempt_spans_tile_the_task_slot(self):
        tracer = Tracer()
        Cluster(1, tracer=tracer).run_job(
            _job(), ["a", "b"], num_map_tasks=1, map_failures={0: 2}
        )
        attempts = sorted(
            (s for s in tracer.spans if s.category == "attempt"),
            key=lambda s: s.start,
        )
        task = next(
            s
            for s in tracer.spans
            if s.category == "task" and s.arg("phase") == "map"
        )
        assert len(attempts) == 2
        assert all(s.arg("failed") for s in attempts)
        # Back-to-back on the same track, ending where the success begins.
        assert attempts[0].end == attempts[1].start
        assert attempts[1].end == task.start
        assert {s.track for s in attempts} == {task.track}
        assert [s.name for s in attempts] == [
            "map-0/attempt-0",
            "map-0/attempt-1",
        ]
