"""Unit and property tests for the edit-distance kernels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.edit_distance import (
    _banded_dp,
    _full_dp,
    _myers_dp,
    edit_similarity,
    edit_similarity_at_least,
    levenshtein,
)

words = st.text(alphabet="abcdef ", min_size=0, max_size=40)
long_words = st.text(alphabet="abcdefghij ", min_size=50, max_size=150)


class TestKnownDistances:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("intention", "execution", 5),
            ("charles", "gharles", 1),  # the paper's toy typo
            ("abcd", "badc", 3),
        ],
    )
    def test_classic_cases(self, a, b, d):
        assert levenshtein(a, b) == d

    def test_bounded_returns_bound_plus_one_when_exceeded(self):
        assert levenshtein("aaaa", "bbbb", max_distance=2) == 3

    def test_bounded_exact_when_within(self):
        assert levenshtein("kitten", "sitting", max_distance=5) == 3

    def test_length_gap_short_circuits(self):
        assert levenshtein("a", "abcdefgh", max_distance=3) == 4


class TestProperties:
    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(words, words)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(words, words)
    def test_at_least_length_difference(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @given(words, words, words)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, words)
    def test_myers_matches_reference_dp(self, a, b):
        if a and b:
            assert _myers_dp(a, b) == _full_dp(a, b)

    @given(long_words, long_words)
    @settings(max_examples=30)
    def test_myers_matches_reference_on_long_strings(self, a, b):
        assert _myers_dp(a, b) == _full_dp(a, b)

    @given(words, words, st.integers(0, 10))
    def test_banded_agrees_with_full(self, a, b, bound):
        true_distance = levenshtein(a, b)
        banded = levenshtein(a, b, max_distance=bound)
        if true_distance <= bound:
            assert banded == true_distance
        else:
            assert banded == bound + 1


class TestEditSimilarity:
    def test_identical(self):
        assert edit_similarity("abc", "abc") == 1.0

    def test_both_empty(self):
        assert edit_similarity("", "") == 1.0

    def test_one_empty(self):
        assert edit_similarity("", "abc") == 0.0

    def test_half_similar(self):
        assert edit_similarity("ab", "ax") == pytest.approx(0.5)

    @given(words, words)
    def test_range(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0

    @given(words, words, st.floats(0.01, 1.0))
    @settings(max_examples=80)
    def test_threshold_check_agrees_with_similarity(self, a, b, threshold):
        assert edit_similarity_at_least(a, b, threshold) == (
            edit_similarity(a, b) >= threshold - 1e-12
        )
