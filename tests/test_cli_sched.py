"""CLI tests for the multi-tenant scheduler demo: `repro sched`."""

from __future__ import annotations

import json

from repro.cli import main
from repro.observability import validate_chrome_trace


class TestSched:
    def test_demo_prints_report_and_writes_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        report_path = tmp_path / "report.json"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "sched", "--family", "citeseer", "--size", "160",
                "--jobs", "5", "--tenants", "2", "--machines", "2",
                "--policy", "fair", "--interactive-fraction", "0.4",
                "--trace", str(trace), "--report-out", str(report_path),
                "--metrics", str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy" in out and "fair" in out
        assert "job-0" in out

        report = json.loads(report_path.read_text())
        assert len(report["outcomes"]) == 5
        assert all(o["finished_at"] is not None for o in report["outcomes"])
        assert report["open_leases"] == 0

        events = json.loads(trace.read_text())
        validate_chrome_trace(events)
        assert any(e.get("cat") == "sched-lease" for e in events)

        snapshots = json.loads(metrics.read_text())["snapshots"]
        assert any(s["scope"] == "sched" for s in snapshots)
        assert any(s["scope"].startswith("sched.tenant.") for s in snapshots)

    def test_fifo_policy_and_admission_caps(self, capsys):
        code = main(
            [
                "sched", "--family", "citeseer", "--size", "120",
                "--jobs", "4", "--tenants", "2", "--machines", "2",
                "--policy", "fifo", "--max-active", "2", "--max-queued", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fifo" in out
