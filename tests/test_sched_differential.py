"""Differential oracle for the multi-tenant scheduler.

The isolation invariant: running a job *through the shared scheduler* —
interleaved with another tenant's work on the same slot pool — must
produce the identical found-pair set and identical job counters
(comparisons included) as running the same job *alone* on a private
cluster.  Sharing changes only when phases start, never what they
compute, because task payloads are computed before placement and fault
decisions key on task ids and attempt ordinals, not on absolute times.

The oracle runs the grid backend × balance × fault (serial/process ×
slack/blocksplit × clean/faulty).  The faulty plan injects crashes,
retries and a straggler slot but **no speculation**: speculative
kill/win accounting is legitimately placement-dependent (a busier
timeline changes which attempt finishes first), so it is exercised by
the fault suite, not by this counter-equality oracle.

The second guarantee pinned here is trace determinism: one fixed
arrival trace replayed on the serial and process backends yields
bit-identical decision logs, virtual start/finish times and latencies.
"""

from __future__ import annotations

import pytest

from repro.core import skewed_config
from repro.data.skewed import make_skewed
from repro.evaluation import ExperimentRun, RunSpec
from repro.mapreduce import FaultPlan, RetryPolicy
from repro.scheduling import JobScheduler
from repro.service import ResolverService
from repro.similarity import citeseer_matcher

MACHINES = 3
BACKENDS = ("serial", "process")
BALANCES = ("slack", "blocksplit")
FAULT_PLANS = {
    "clean": None,
    # Crashes + retries + a slow slot, but no speculation: speculative
    # outcomes depend on which lane an attempt landed on, so they are
    # excluded from a counter-equality oracle by design.
    "faulty": FaultPlan(
        seed=99,
        fault_rate=0.15,
        slot_slowdowns={1: 2.0},
        retry=RetryPolicy(),
    ),
}


@pytest.fixture(scope="module")
def dataset():
    return make_skewed(300, seed=5, hub_fraction=0.6)


@pytest.fixture(scope="module")
def rival_dataset():
    return make_skewed(160, seed=11, hub_fraction=0.5)


@pytest.fixture(scope="module")
def cfg():
    # Dedicated caching matcher: the session-wide shared matchers keep an
    # id-keyed cache that is only valid against their own dataset.
    return skewed_config(matcher=citeseer_matcher(cache=True))


def _spec(dataset, cfg, *, backend, balance, faults, label):
    return RunSpec(
        dataset,
        cfg,
        machines=MACHINES,
        balance=balance,
        backend=None if backend == "serial" else backend,
        workers=2 if backend == "process" else None,
        faults=faults,
        label=label,
    )


def _job_counters(run_result):
    """Both jobs' full counter dicts — comparisons, retries, everything."""
    result = run_result.result
    return (
        result.job1.counters.as_flat_dict(),
        result.job2.counters.as_flat_dict(),
    )


@pytest.fixture(scope="module")
def grid(dataset, rival_dataset, cfg):
    """(backend, balance, fault) → (solo RunResult, scheduled RunResult)."""
    cells = {}
    for backend in BACKENDS:
        for balance in BALANCES:
            for fault_name, plan in FAULT_PLANS.items():
                solo = ExperimentRun(
                    _spec(dataset, cfg, backend=backend, balance=balance,
                          faults=plan, label="solo")
                ).run()

                scheduler = JobScheduler(machines=MACHINES, policy="fair")
                scheduler.add_tenant("rival", 2.0)
                scheduler.add_tenant("target", 1.0)
                scheduler.submit_spec(
                    _spec(rival_dataset, cfg, backend=backend, balance=balance,
                          faults=None, label="rival"),
                    tenant="rival",
                    lane="interactive",
                    arrival=0.0,
                )
                handle = scheduler.submit_spec(
                    _spec(dataset, cfg, backend=backend, balance=balance,
                          faults=plan, label="target"),
                    tenant="target",
                    lane="batch",
                    arrival=1.0,
                )
                scheduler.run()
                cells[(backend, balance, fault_name)] = (solo, handle.result)
    return cells


class TestIsolationInvariant:
    def test_grid_is_complete(self, grid):
        assert len(grid) == len(BACKENDS) * len(BALANCES) * len(FAULT_PLANS)

    def test_found_pairs_identical_to_solo_run(self, grid):
        for cell, (solo, scheduled) in grid.items():
            assert solo.found_pairs, f"oracle is vacuous in {cell}"
            assert scheduled.found_pairs == solo.found_pairs, cell

    def test_job_counters_identical_to_solo_run(self, grid):
        """Comparison counts (and every other counter) must not move."""
        for cell, (solo, scheduled) in grid.items():
            assert _job_counters(scheduled) == _job_counters(solo), cell

    def test_duplicate_event_multisets_match_solo(self, grid):
        """Same occurrences; *times* legitimately shift on a shared
        timeline, so order is not part of the invariant."""
        for cell, (solo, scheduled) in grid.items():
            solo_pairs = sorted(e.payload for e in solo.duplicate_events)
            sched_pairs = sorted(e.payload for e in scheduled.duplicate_events)
            assert sched_pairs == solo_pairs, cell

    def test_scheduling_only_delays_never_shrinks(self, grid):
        """The shared timeline can push work later, never earlier.

        Clean cells only: under a fault plan with a slow slot the
        *makespan* is legitimately placement-dependent — a later start
        can route work away from the straggler lane and finish sooner.
        """
        for cell, (solo, scheduled) in grid.items():
            if cell[2] != "clean":
                continue
            assert scheduled.total_time >= solo.total_time, cell


class TestServiceIsolation:
    """The same invariant for ResolverService batches."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scheduled_batches_match_solo_service(self, backend, dataset, cfg):
        batches = [dataset.entities[i * 75:(i + 1) * 75] for i in range(4)]
        kwargs = dict(
            machines=MACHINES,
            backend=None if backend == "serial" else backend,
            workers=2 if backend == "process" else None,
        )
        solo = ResolverService(cfg, **kwargs)
        for batch in batches:
            solo.submit(batch)

        scheduler = JobScheduler(machines=MACHINES, policy="fair")
        target = ResolverService(
            cfg, scheduler=scheduler, tenant="target", **kwargs
        )
        rival = ResolverService(
            cfg, scheduler=scheduler, tenant="rival", **kwargs
        )
        for index, batch in enumerate(batches):
            scheduler.submit_batch(
                target, batch, arrival=float(index), lane="batch"
            )
            scheduler.submit_batch(
                rival, batch, arrival=float(index) + 0.5, lane="interactive"
            )
        report = scheduler.run()

        assert target.found_pairs == solo.found_pairs
        assert target.total_comparisons == solo.total_comparisons
        # The rival ran the identical stream, so it must agree too.
        assert rival.found_pairs == solo.found_pairs
        assert rival.total_comparisons == solo.total_comparisons
        assert report.open_leases == 0


class TestSnapshotRestoreUnderScheduler:
    """Regression: a snapshot/restore round-trip while the shared pool is
    live (another tenant mid-stream, immediate-mode leases open) must not
    leak slots, and must leave the other tenant's virtual clock exactly
    where it would have been had the round-trip never happened."""

    def _rival_batches(self, rival_dataset):
        return [rival_dataset.entities[i * 40:(i + 1) * 40] for i in range(3)]

    def _run_rival(self, cfg, rival_dataset, *, interrupt):
        """Drive a rival tenant through a shared scheduler; optionally
        snapshot/restore a target tenant between the rival's batches."""
        scheduler = JobScheduler(machines=MACHINES, policy="fair")
        rival = ResolverService(
            cfg, machines=MACHINES, scheduler=scheduler, tenant="rival"
        )
        target = ResolverService(
            cfg, machines=MACHINES, scheduler=scheduler, tenant="target"
        )
        batches = self._rival_batches(rival_dataset)
        rival.submit(batches[0])
        target.submit(batches[0])
        if interrupt:
            # The rival's immediate-mode lease from its last submit is
            # still settling lazily; round-trip the target NOW.
            snap = target.snapshot()
            target = ResolverService.restore(
                snap, cfg, machines=MACHINES,
                scheduler=scheduler, tenant="target",
            )
        rival.submit(batches[1])
        target.submit(batches[1])
        rival.submit(batches[2])
        scheduler.quiesce()
        return scheduler, rival, target

    def test_round_trip_leaks_no_slots_and_rival_clock_is_unperturbed(
        self, cfg, rival_dataset
    ):
        control_sched, control_rival, control_target = self._run_rival(
            cfg, rival_dataset, interrupt=False
        )
        sched, rival, target = self._run_rival(
            cfg, rival_dataset, interrupt=True
        )

        assert sched.pool.open_leases == 0
        assert control_sched.pool.open_leases == 0
        # The other tenant never notices the round-trip: same clock, same
        # batch timings, same results.
        assert rival.clock == control_rival.clock
        assert [
            (r.start_time, r.end_time) for r in rival.receipts
        ] == [(r.start_time, r.end_time) for r in control_rival.receipts]
        assert rival.found_pairs == control_rival.found_pairs

    def test_restored_service_matches_uninterrupted_target(
        self, cfg, rival_dataset
    ):
        _, _, control_target = self._run_rival(
            cfg, rival_dataset, interrupt=False
        )
        _, _, target = self._run_rival(cfg, rival_dataset, interrupt=True)
        assert target.found_pairs == control_target.found_pairs
        assert target.total_comparisons == control_target.total_comparisons


class TestTraceDeterminism:
    """One fixed arrival trace ⇒ one schedule, on every backend."""

    def _run_trace(self, backend, dataset, rival_dataset, cfg):
        scheduler = JobScheduler(machines=MACHINES, policy="fair")
        scheduler.add_tenant("a", 2.0)
        scheduler.add_tenant("b", 1.0)
        specs = [
            (rival_dataset, "a", "interactive", 0.0, "j0"),
            (dataset, "b", "batch", 2.0, "j1"),
            (rival_dataset, "b", "batch", 3.0, "j2"),
        ]
        for ds, tenant, lane, arrival, label in specs:
            scheduler.submit_spec(
                _spec(ds, cfg, backend=backend, balance="slack",
                      faults=None, label=label),
                tenant=tenant, lane=lane, arrival=arrival,
            )
        report = scheduler.run()
        schedule = [
            (d["job"], d["kind"], d["ready"], d["dispatch"])
            for d in report.decisions
        ]
        timings = [
            (o.job, o.started_at, o.finished_at, o.latency, o.slot_seconds)
            for o in report.outcomes
        ]
        return schedule, timings

    def test_schedule_bit_identical_across_backends(
        self, dataset, rival_dataset, cfg
    ):
        serial = self._run_trace("serial", dataset, rival_dataset, cfg)
        process = self._run_trace("process", dataset, rival_dataset, cfg)
        assert serial == process

    def test_schedule_reproducible_within_backend(
        self, dataset, rival_dataset, cfg
    ):
        first = self._run_trace("serial", dataset, rival_dataset, cfg)
        second = self._run_trace("serial", dataset, rival_dataset, cfg)
        assert first == second
