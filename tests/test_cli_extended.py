"""Extended CLI tests: the profile subcommand, the people family, and
budget-weighted scheduling through the public config API."""

import pytest

from repro.cli import main
from repro.core import ProgressiveER, citeseer_config, make_budget_weighting
from repro.mapreduce import Cluster


class TestProfileCommand:
    def test_profile_generated_dataset(self, capsys):
        code = main(["profile", "--family", "citeseer", "--size", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "attribute" in out
        assert "title.sub(0, 2)" in out
        assert "suggested dominance order" in out

    def test_profile_from_csv(self, tmp_path, capsys):
        out_path = tmp_path / "ds.csv"
        main(["generate", "--family", "people", "--size", "200", "--out", str(out_path)])
        code = main(["profile", "--dataset", str(out_path), "--family", "people"])
        assert code == 0
        assert "surname" in capsys.readouterr().out


class TestPeopleFamilyCli:
    def test_generate_people(self, tmp_path):
        out_path = tmp_path / "people.csv"
        code = main(
            ["generate", "--family", "people", "--size", "150", "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()

    def test_run_people(self, capsys):
        code = main(
            ["run", "--family", "people", "--size", "250", "--machines", "2"]
        )
        assert code == 0
        assert "final recall" in capsys.readouterr().out

    def test_basic_people_uses_psnm(self, capsys):
        code = main(
            [
                "run", "--family", "people", "--size", "250", "--machines", "2",
                "--approach", "basic", "--threshold", "0.05",
            ]
        )
        assert code == 0


class TestBudgetWeighting:
    def test_budget_weighted_run_is_valid(
        self, citeseer_small, shared_citeseer_matcher
    ):
        """[17]'s budget-optimized variant: a step weighting produces a
        well-formed schedule and a complete run."""
        config = citeseer_config(
            matcher=shared_citeseer_matcher,
            weighting=make_budget_weighting(0.4),
        )
        result = ProgressiveER(config, Cluster(2)).run(citeseer_small)
        assert result.found_pairs
        weights = result.schedule.weights
        assert all(
            weights[i] >= weights[i + 1] - 1e-12 for i in range(len(weights) - 1)
        )

    def test_budget_weighting_front_loads(
        self, citeseer_small, shared_citeseer_matcher
    ):
        """At the budget point, the budget-weighted schedule is at least as
        good as the default one (it optimizes exactly that point)."""
        from repro.evaluation import recall_curve

        runs = {}
        for name, weighting in (
            ("linear", None),
            ("budget", make_budget_weighting(0.35)),
        ):
            kwargs = {"matcher": shared_citeseer_matcher}
            if weighting is not None:
                kwargs["weighting"] = weighting
            config = citeseer_config(**kwargs)
            result = ProgressiveER(config, Cluster(2)).run(citeseer_small)
            runs[name] = recall_curve(
                result.duplicate_events, citeseer_small, end_time=result.total_time
            )
        # Tolerant comparison: the schedules rarely differ much at small
        # scale, but the budget run must not be dramatically worse early.
        budget_point = min(c.end_time for c in runs.values()) * 0.35
        assert (
            runs["budget"].recall_at(budget_point)
            >= runs["linear"].recall_at(budget_point) - 0.1
        )
