"""Tests for the multi-pass MR Sorted-Neighborhood baseline."""

import pytest

from repro.baselines import MrsnConfig, MultiPassMRSN
from repro.blocking import citeseer_scheme
from repro.mapreduce import Cluster
from repro.evaluation import recall_curve


@pytest.fixture(scope="module")
def mrsn_runs(request):
    dataset = request.getfixturevalue("citeseer_small")
    matcher = request.getfixturevalue("shared_citeseer_matcher")
    config = MrsnConfig(scheme=citeseer_scheme(), matcher=matcher, window=15)
    return dataset, {
        machines: MultiPassMRSN(config, Cluster(machines)).run(dataset)
        for machines in (1, 3)
    }


class TestCorrectness:
    def test_results_invariant_to_partitioning(self, mrsn_runs):
        """RepSN's boundary replication: the pair set must not depend on
        how many reduce tasks split the sorted order."""
        _, runs = mrsn_runs
        assert runs[1].found_pairs == runs[3].found_pairs

    def test_finds_most_duplicates(self, mrsn_runs):
        dataset, runs = mrsn_runs
        recall = len(runs[3].found_pairs & dataset.true_pairs) / dataset.num_true_pairs
        assert recall > 0.8

    def test_one_job_per_family(self, mrsn_runs):
        _, runs = mrsn_runs
        assert len(runs[3].jobs) == 3  # X, Y, Z passes

    def test_passes_run_sequentially(self, mrsn_runs):
        _, runs = mrsn_runs
        jobs = runs[3].jobs
        for earlier, later in zip(jobs, jobs[1:]):
            assert later.start_time == earlier.end_time

    def test_events_deduplicated(self, mrsn_runs):
        _, runs = mrsn_runs
        pairs = [e.payload for e in runs[3].duplicate_events]
        assert len(pairs) == len(set(pairs))

    def test_high_precision(self, mrsn_runs):
        dataset, runs = mrsn_runs
        found = runs[3].found_pairs
        assert len(found & dataset.true_pairs) / len(found) > 0.9


class TestScaling:
    def test_more_machines_not_slower(self, citeseer_small, shared_citeseer_matcher):
        config = MrsnConfig(
            scheme=citeseer_scheme(), matcher=shared_citeseer_matcher, window=10
        )
        slow = MultiPassMRSN(config, Cluster(1)).run(citeseer_small)
        fast = MultiPassMRSN(config, Cluster(6)).run(citeseer_small)
        assert fast.total_time <= slow.total_time

    def test_progressive_approach_beats_mrsn_early(
        self, citeseer_medium, shared_citeseer_matcher
    ):
        """The related-work claim (Section VII): fixed parallel SN has no
        prioritization; our approach finds duplicates at a higher early
        rate even though MRSN's final recall can be competitive."""
        from repro.core import ProgressiveER, citeseer_config

        config = MrsnConfig(
            scheme=citeseer_scheme(), matcher=shared_citeseer_matcher, window=15
        )
        mrsn = MultiPassMRSN(config, Cluster(4)).run(citeseer_medium)
        ours = ProgressiveER(
            citeseer_config(matcher=shared_citeseer_matcher), Cluster(4)
        ).run(citeseer_medium)

        mrsn_curve = recall_curve(
            mrsn.duplicate_events, citeseer_medium, end_time=mrsn.total_time
        )
        ours_curve = recall_curve(
            ours.duplicate_events, citeseer_medium, end_time=ours.total_time
        )
        horizon = min(mrsn.total_time, ours.total_time)
        quarter = horizon * 0.25
        assert ours_curve.recall_at(quarter) > mrsn_curve.recall_at(quarter)
        # ... and in aggregate progressiveness over the common horizon.
        assert ours_curve.area_under(horizon) > mrsn_curve.area_under(horizon)
