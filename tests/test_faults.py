"""Unit tests for the seeded fault-injection subsystem.

Covers :mod:`repro.mapreduce.faults` in isolation (plan validation, draw
determinism, the discrete-event scheduler's retry / blacklist /
speculation behaviour) and its integration with the engine (zero-plan
byte-identity, result invariance, ``fault.*`` counters, the abort path).
"""

from __future__ import annotations

import pytest

from repro.mapreduce import (
    Cluster,
    FaultPlan,
    FaultScheduler,
    JobAbortedError,
    MapReduceJob,
    Mapper,
    Reducer,
    RetryPolicy,
    SlotPool,
    SpeculationConfig,
)
from repro.mapreduce.faults import (
    MAX_CRASH_FRACTION,
    MIN_CRASH_FRACTION,
    AttemptSpan,
    TaskSchedule,
)

from test_executor_parity import _LINES, _wordcount_job, job_fingerprint


# ---------------------------------------------------------------------------
# Plan / policy validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_retry_policy_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_speculation_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            SpeculationConfig(threshold=1.0)
        assert SpeculationConfig(threshold=1.01).threshold == 1.01

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fault_rate": -0.1},
            {"fault_rate": 1.5},
            {"straggler_rate": 2.0},
            {"straggler_factor": 0.5},
            {"blacklist_after": 0},
            {"slot_slowdowns": {0: 0.5}},
        ],
    )
    def test_fault_plan_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_slot_slowdowns_mapping_normalized_and_hashable(self):
        plan = FaultPlan(slot_slowdowns={3: 2.0, 1: 4.0})
        assert plan.slot_slowdowns == ((1, 4.0), (3, 2.0))
        hash(plan)  # frozen dataclass stays hashable after conversion

    def test_default_plan_is_inert(self):
        assert FaultPlan().is_inert
        assert not FaultPlan(fault_rate=0.1).is_inert
        assert not FaultPlan(slot_slowdowns={0: 2.0}).is_inert
        assert not FaultPlan(
            speculation=SpeculationConfig(enabled=True)
        ).is_inert
        # A straggler rate with factor 1 cannot change anything.
        assert FaultPlan(straggler_rate=0.5, straggler_factor=1.0).is_inert


class TestDraws:
    def test_draws_are_deterministic(self):
        a = FaultPlan(seed=42, fault_rate=0.3)
        b = FaultPlan(seed=42, fault_rate=0.3)
        for task in range(20):
            for attempt in range(4):
                assert a.attempt_fails("j", "map", task, attempt) == b.attempt_fails(
                    "j", "map", task, attempt
                )
                assert a.crash_fraction("j", "map", task, attempt) == pytest.approx(
                    b.crash_fraction("j", "map", task, attempt)
                )

    def test_failure_sets_nested_in_rate(self):
        low = FaultPlan(seed=5, fault_rate=0.1)
        high = FaultPlan(seed=5, fault_rate=0.4)
        for task in range(50):
            for attempt in range(4):
                if low.attempt_fails("j", "reduce", task, attempt):
                    assert high.attempt_fails("j", "reduce", task, attempt)

    def test_retry_draws_are_independent(self):
        """The avalanche fix: consecutive attempt ordinals of one task must
        not produce nearly identical uniforms (a task that failed once must
        not be doomed to fail forever at moderate rates)."""
        plan = FaultPlan(seed=0, fault_rate=0.3)
        always_failing = 0
        for task in range(100):
            if all(plan.attempt_fails("j", "map", task, a) for a in range(6)):
                always_failing += 1
        assert always_failing == 0  # 0.3 ** 6 per task; ~0.07 expected over 100

    def test_crash_fraction_bounds(self):
        plan = FaultPlan(seed=1, fault_rate=1.0)
        for task in range(50):
            fraction = plan.crash_fraction("j", "map", task, 0)
            assert MIN_CRASH_FRACTION <= fraction <= MAX_CRASH_FRACTION

    def test_slot_slowdown_override_beats_seeded_draw(self):
        plan = FaultPlan(
            seed=2, straggler_rate=1.0, straggler_factor=5.0,
            slot_slowdowns={0: 2.0},
        )
        assert plan.slot_slowdown(0) == 2.0
        assert plan.slot_slowdown(1) == 5.0  # rate 1.0: every slot straggles

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base=2.0, backoff_factor=3.0)
        assert policy.backoff(1) == 2.0
        assert policy.backoff(2) == 6.0
        assert policy.backoff(3) == 18.0
        assert RetryPolicy(backoff_base=0.0).backoff(5) == 0.0


# ---------------------------------------------------------------------------
# Scheduler behaviour
# ---------------------------------------------------------------------------


def _schedules(plan, costs, num_slots=2, ready=0.0):
    return FaultScheduler(plan, num_slots, ready, job="j", phase="map").run(costs)


class TestFaultScheduler:
    def test_inert_plan_matches_slot_pool_placement(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        schedules = _schedules(FaultPlan(), costs, num_slots=3, ready=10.0)
        pool = SlotPool(3, 10.0)
        for task_id, cost in enumerate(costs):
            start, end, slot = pool.schedule(cost)
            sched = schedules[task_id]
            assert len(sched.attempts) == 1
            win = sched.winning
            assert (win.start, win.end, win.slot) == (start, end, slot)
            assert win.outcome == "success" and not win.speculative

    def test_crash_loses_partial_cost_then_retries(self):
        plan = FaultPlan(seed=3, fault_rate=0.5, retry=RetryPolicy(max_attempts=50))
        schedules = _schedules(plan, [4.0] * 8, num_slots=8)
        failed_any = False
        for sched in schedules:
            win = sched.winning
            assert win.outcome == "success"
            for span in sched.attempts:
                if span.outcome == "failed":
                    failed_any = True
                    # Partial-cost loss: the crashed attempt is strictly
                    # shorter than the full (unslowed) cost.
                    assert 0 < span.duration < 4.0
                    assert (
                        MIN_CRASH_FRACTION * 4.0
                        <= span.duration
                        <= MAX_CRASH_FRACTION * 4.0
                    )
        assert failed_any, "seed must produce at least one crash at rate 0.5"

    def test_backoff_delays_the_retry(self):
        base = FaultPlan(seed=9, fault_rate=0.6, retry=RetryPolicy(max_attempts=50))
        delayed = FaultPlan(
            seed=9, fault_rate=0.6,
            retry=RetryPolicy(max_attempts=50, backoff_base=5.0),
        )
        fast = _schedules(base, [2.0] * 4, num_slots=4)
        slow = _schedules(delayed, [2.0] * 4, num_slots=4)
        assert any(len(s.attempts) > 1 for s in fast)
        for f, s in zip(fast, slow):
            # Same failure pattern (same seed), strictly later commits when
            # a retry happened.
            assert len(f.attempts) == len(s.attempts)
            if len(f.attempts) > 1:
                assert s.winning.start > f.winning.start

    def test_exhausted_retries_abort_the_job(self):
        plan = FaultPlan(seed=0, fault_rate=1.0, retry=RetryPolicy(max_attempts=3))
        with pytest.raises(JobAbortedError) as err:
            _schedules(plan, [1.0, 1.0])
        assert err.value.attempts == 3
        assert err.value.phase == "map"

    def test_blacklist_never_removes_last_slot(self):
        plan = FaultPlan(
            seed=0, fault_rate=1.0, blacklist_after=1,
            retry=RetryPolicy(max_attempts=4),
        )
        scheduler = FaultScheduler(plan, 2, 0.0, job="j", phase="map")
        with pytest.raises(JobAbortedError):
            scheduler.run([1.0])
        # First failure blacklists slot 0; later failures land on slot 1,
        # which survives as the last slot standing.
        assert scheduler.stats.blacklisted_slots == 1

    def test_speculation_rescues_straggler_slot(self):
        costs = [5.0, 1.0, 1.0]
        slow = FaultPlan(slot_slowdowns={0: 10.0})
        spec = FaultPlan(
            slot_slowdowns={0: 10.0},
            speculation=SpeculationConfig(enabled=True, threshold=1.5),
        )
        plain = _schedules(slow, costs)
        rescued = _schedules(spec, costs)
        # Without speculation task 0 is stuck on the slow slot: 5 * 10.
        assert max(s.winning.end for s in plain) == 50.0
        # With it, a backup on the healthy slot (free at t=2) finishes at 7.
        assert max(s.winning.end for s in rescued) == 7.0
        win = rescued[0].winning
        assert win.speculative and win.slot == 1
        killed = [a for a in rescued[0].attempts if a.outcome == "killed"]
        assert len(killed) == 1 and killed[0].slot == 0
        # The loser dies at the winner's finish time, freeing its slot.
        assert killed[0].end == 7.0

    def test_speculation_stats_recorded(self):
        spec = FaultPlan(
            slot_slowdowns={0: 10.0},
            speculation=SpeculationConfig(enabled=True, threshold=1.5),
        )
        scheduler = FaultScheduler(spec, 2, 0.0, job="j", phase="map")
        scheduler.run([5.0, 1.0, 1.0])
        stats = scheduler.stats
        assert stats.speculative_launched == 1
        assert stats.speculative_wins == 1
        assert stats.killed_attempts == 1
        assert stats.failed_attempts == 0

    def test_at_most_one_backup_per_task(self):
        spec = FaultPlan(
            slot_slowdowns={0: 100.0},
            speculation=SpeculationConfig(enabled=True, threshold=1.5),
        )
        scheduler = FaultScheduler(spec, 4, 0.0, job="j", phase="map")
        schedules = scheduler.run([5.0, 1.0, 1.0, 1.0])
        backups = [
            a
            for s in schedules
            for a in s.attempts
            if a.speculative
        ]
        assert len(backups) == 1

    def test_empty_phase_is_a_noop(self):
        assert _schedules(FaultPlan(fault_rate=0.5), []) == []

    def test_winning_raises_without_success_span(self):
        sched = TaskSchedule(
            task_id=0,
            attempts=(AttemptSpan(0, 0, 0.0, 1.0, "failed"),),
        )
        with pytest.raises(ValueError):
            sched.winning

    def test_scheduler_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            FaultScheduler(FaultPlan(), 0, 0.0, job="j", phase="map")


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_zero_plan_is_byte_identical_to_no_plan(self):
        base = Cluster(2).run_job(_wordcount_job(), _LINES)
        zero = Cluster(2, faults=FaultPlan()).run_job(_wordcount_job(), _LINES)
        assert job_fingerprint(base) == job_fingerprint(zero)
        assert not any(
            group == "fault" for (group, _), _ in zero.counters.items()
        )

    def test_results_invariant_under_faults(self):
        plan = FaultPlan(
            seed=7, fault_rate=0.3,
            retry=RetryPolicy(max_attempts=50, backoff_base=0.5),
        )
        base = Cluster(2).run_job(_wordcount_job(), _LINES)
        faulty = Cluster(2, faults=plan).run_job(_wordcount_job(), _LINES)
        assert faulty.output == base.output
        assert faulty.end_time >= base.end_time
        assert sorted((e.kind, repr(e.payload)) for e in faulty.events) == sorted(
            (e.kind, repr(e.payload)) for e in base.events
        )

    def test_fault_counters_and_task_fields(self):
        plan = FaultPlan(
            seed=7, fault_rate=0.3, retry=RetryPolicy(max_attempts=50)
        )
        result = Cluster(2, faults=plan).run_job(_wordcount_job(), _LINES)
        flat = result.counters.as_flat_dict()
        fault_keys = {k for k in flat if k.startswith("fault.")}
        assert fault_keys, "rate 0.3 must record fault counters"
        total_failed = sum(
            t.num_failed_attempts
            for t in result.map_tasks + result.reduce_tasks
        )
        assert total_failed == flat.get(
            "fault.map_failed_attempts", 0
        ) + flat.get("fault.reduce_failed_attempts", 0)

    def test_speculative_win_reaches_task_result(self):
        plan = FaultPlan(
            slot_slowdowns={0: 10.0},
            speculation=SpeculationConfig(enabled=True, threshold=1.5),
        )
        result = Cluster(1, faults=plan).run_job(_wordcount_job(), _LINES)
        assert any(
            t.speculative for t in result.map_tasks + result.reduce_tasks
        )

    def test_plan_and_legacy_failures_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Cluster(2, faults=FaultPlan(fault_rate=0.1)).run_job(
                _wordcount_job(), _LINES, map_failures={0: 1}
            )

    def test_per_job_plan_overrides_cluster_plan(self):
        cluster = Cluster(2, faults=FaultPlan(fault_rate=1.0))
        # The per-job inert plan overrides the cluster's always-crashing one.
        result = cluster.run_job(_wordcount_job(), _LINES, faults=FaultPlan())
        base = Cluster(2).run_job(_wordcount_job(), _LINES)
        assert job_fingerprint(result) == job_fingerprint(base)

    def test_abort_propagates_from_engine(self):
        plan = FaultPlan(seed=0, fault_rate=1.0)
        with pytest.raises(JobAbortedError):
            Cluster(2, faults=plan).run_job(_wordcount_job(), _LINES)

    def test_straggler_stretches_events_and_files(self):
        class TickReducer(Reducer):
            def reduce(self, key, values, context):
                context.charge(5.0)
                context.record_event("tick", key)
                context.write(key)

        class Identity(Mapper):
            def map(self, record, context):
                context.emit(record, 1)

        def job():
            return MapReduceJob(Identity, TickReducer, alpha=2.0)

        clean = Cluster(1).run_job(job(), ["a"], num_reduce_tasks=1)
        slowed = Cluster(
            1, faults=FaultPlan(slot_slowdowns={0: 4.0})
        ).run_job(job(), ["a"], num_reduce_tasks=1)
        clean_tick = next(e for e in clean.events if e.kind == "tick")
        slow_tick = next(e for e in slowed.events if e.kind == "tick")
        assert slow_tick.time > clean_tick.time
        assert min(f.close_time for f in slowed.output_files) > min(
            f.close_time for f in clean.output_files
        )
