"""Skew-aware load balancing for the resolution job.

The schedule generator places responsible trees on reduce tasks by maximum
weighted slack (Figure 6), but a single oversized block can still dominate
one task and flatten the progressive curve — the data-skew failure mode
analyzed by Kolb, Thor & Rahm in *Load Balancing for MapReduce-based Entity
Resolution* (BlockSplit / PairRange).  This module adds a post-pass over a
generated :class:`~repro.core.schedule.ProgressiveSchedule`:

* **skew detection** — per-task planned virtual loads from the Job-1
  estimates, summarized by Gini coefficient and max-over-mean ratio and
  surfaced as ``balance.*`` counters;
* **``blocksplit``** — oversized *root* blocks are decomposed into
  contiguous pair-range shards of their mechanism pair stream, then all
  work units (whole trees, split-tree remainders, shards) are LPT-placed.
  Only roots are ever sharded: a root is resolved to stream exhaustion
  (``full=True``), so its output is independent of where the stream is
  cut, while a non-root's :class:`~repro.mechanisms.base.DistinctBudget`
  stop condition depends on stream order and must never be sharded;
* **``pairrange``** — Kolb's *global* PairRange enumeration: the estimated
  pair stream of every full root block is laid out on one cumulative cost
  axis (canonical uid order), the axis is cut into ``num_tasks`` equal
  contiguous ranges, and any block a cut lands inside is split there into
  :class:`BlockShard` slices — so per-task loads are near-uniform no
  matter how skewed individual blocks are, with no oversize threshold;
* **``pairrange-tree``** — deprecated alias for the pre-global version:
  whole trees placed by contiguous cost ranges.  It cannot split a block,
  so a single hot block still bounds the makespan; kept only so existing
  configs keep running (prefer ``pairrange``);
* **``slack``** — the paper baseline: the schedule is left untouched and
  only the skew report is computed.

Everything is derived from the schedule's deterministic estimates — no
wall-clock input, no randomness beyond :func:`~repro.mapreduce.job.stable_hash`
tie-breaking — so a balanced schedule is bit-identical across execution
backends and under fault injection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mapreduce.job import stable_hash
from ..mechanisms.base import window_pairs_count
from .schedule import ProgressiveSchedule, build_block_orders, recompute_sequence

#: Recognised placement strategies (CLI ``--balance`` / ``RunSpec.balance``).
#: ``pairrange-tree`` is a deprecated alias for the old tree-granularity
#: placement; ``pairrange`` is the faithful global enumeration.
BALANCE_STRATEGIES = ("slack", "blocksplit", "pairrange", "pairrange-tree")

#: Separator inside shard routing keys; never appears in block uids.
SHARD_SEP = "\x1f"

#: A tree is considered oversized when its root's estimated cost exceeds
#: this multiple of the mean per-task load.
OVERSIZE_FACTOR = 1.0

_EPS = 1e-9


@dataclass(frozen=True)
class BlockShard:
    """One contiguous pair-range slice of a root block's pair stream.

    ``start``/``stop`` index positions of the mechanism's *raw* pair
    stream (before any SHOULD-RESOLVE veto), which is a deterministic
    enumeration — both SN-hint and PSNM yield pairs in (rank distance,
    position) order with exactly ``window_pairs_count(n, w)`` entries — so
    every shard resolves the same pairs no matter which task, backend or
    faulty timeline executes it.

    Shard 0 stays on the tree's home reduce task (it reuses the tree's
    normal routing and the home task's per-tree resolved-pair skip);
    shards 1.. are routed under :attr:`key` to wherever placement put them.
    """

    key: str
    block_uid: str
    tree_uid: str
    index: int
    num_shards: int
    start: int
    stop: int
    cost: float


@dataclass(frozen=True)
class SkewReport:
    """Planned per-task virtual loads and their skew statistics."""

    loads: Tuple[float, ...]

    @property
    def total(self) -> float:
        return sum(self.loads)

    @property
    def mean(self) -> float:
        return self.total / len(self.loads) if self.loads else 0.0

    @property
    def max(self) -> float:
        return max(self.loads) if self.loads else 0.0

    @property
    def max_over_mean(self) -> float:
        """Skew ratio: 1.0 is perfectly balanced."""
        mean = self.mean
        return self.max / mean if mean > 0 else 0.0

    @property
    def gini(self) -> float:
        """Gini coefficient of the load distribution (0 = equal)."""
        n = len(self.loads)
        total = self.total
        if n == 0 or total <= 0:
            return 0.0
        ordered = sorted(self.loads)
        weighted = sum((2 * i - n + 1) * x for i, x in enumerate(ordered))
        return weighted / (n * total)


@dataclass(frozen=True)
class BalancePlan:
    """The outcome of one :func:`apply_balance` pass (observational)."""

    strategy: str
    num_tasks: int
    before: SkewReport
    after: SkewReport
    shards: Tuple[BlockShard, ...]
    split_blocks: Tuple[str, ...]
    moved_trees: int
    top_blocks: Tuple[Tuple[str, float], ...]

    def counter_items(self) -> Dict[str, int]:
        """Integer ``balance.*`` counter values (ratios in milli-units).

        Derived purely from the deterministic plan, so they are safe to
        merge into the backend-identical job counters.
        """
        return {
            "shards": len(self.shards),
            "split_blocks": len(self.split_blocks),
            "moved_trees": self.moved_trees,
            "gini_before_milli": _milli(self.before.gini),
            "gini_after_milli": _milli(self.after.gini),
            "max_over_mean_before_milli": _milli(self.before.max_over_mean),
            "max_over_mean_after_milli": _milli(self.after.max_over_mean),
            "planned_makespan_before_milli": _milli(self.before.max),
            "planned_makespan_after_milli": _milli(self.after.max),
        }


def _milli(value: float) -> int:
    return int(round(value * 1000))


def shard_key(block_uid: str, index: int) -> str:
    """Routing key of one shard (distinct from every tree uid)."""
    return f"{block_uid}{SHARD_SEP}shard{index}"


def shard_bounds(total_pairs: int, num_shards: int) -> List[int]:
    """Equal-width position boundaries: ``num_shards + 1`` non-decreasing
    values from 0 to ``total_pairs`` whose consecutive ranges partition
    ``[0, total_pairs)`` exactly."""
    if total_pairs < 0:
        raise ValueError(f"total_pairs must be >= 0, got {total_pairs}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return [total_pairs * i // num_shards for i in range(num_shards + 1)]


def planned_loads(schedule: ProgressiveSchedule) -> List[float]:
    """Per-task planned virtual cost under the schedule's block orders.

    Shard entries contribute their pair-range share; plain block entries
    contribute the block's estimated cost.
    """
    loads = [0.0] * schedule.num_tasks
    for task, order in enumerate(schedule.block_order):
        for entry in order:
            shard = schedule.shards.get(entry)
            if shard is not None:
                loads[task] += shard.cost
            else:
                loads[task] += schedule.estimates[entry].cost
    return loads


def skew_report(schedule: ProgressiveSchedule) -> SkewReport:
    """The schedule's current planned-load skew."""
    return SkewReport(loads=tuple(planned_loads(schedule)))


def place_units(
    units: Sequence[Tuple[str, float]], num_tasks: int
) -> Dict[str, int]:
    """LPT placement of ``(key, cost)`` work units over ``num_tasks``.

    Deterministic and order-insensitive: units are processed by
    non-increasing cost (key tie-break) onto the least-loaded task; load
    ties rotate by ``stable_hash(key)`` so equal-cost streaks spread over
    the tasks instead of piling onto task 0.
    """
    if num_tasks < 1:
        raise ValueError(f"need at least one task, got {num_tasks}")
    loads = [0.0] * num_tasks
    assignment: Dict[str, int] = {}
    for key, cost in sorted(units, key=lambda u: (-u[1], u[0])):
        offset = stable_hash(key) % num_tasks
        best = min(
            range(num_tasks),
            key=lambda t: (loads[t], (t - offset) % num_tasks),
        )
        assignment[key] = best
        loads[best] += cost
    return assignment


def apply_balance(
    schedule: ProgressiveSchedule, *, strategy: str = "slack"
) -> BalancePlan:
    """Rebalance ``schedule`` in place and return the observational plan.

    ``slack`` leaves the schedule byte-identical to the generator's output
    (only the skew report is computed), so the default path costs nothing
    and stays pinned by the existing golden fixtures.
    """
    if strategy not in BALANCE_STRATEGIES:
        raise ValueError(
            f"unknown balance strategy {strategy!r}; "
            f"expected one of {BALANCE_STRATEGIES}"
        )
    before = skew_report(schedule)
    top = _top_blocks(schedule)
    shards: Tuple[BlockShard, ...] = ()
    split_blocks: Tuple[str, ...] = ()
    moved = 0
    if strategy == "blocksplit":
        shards, split_blocks, moved = _apply_blocksplit(schedule)
    elif strategy == "pairrange":
        shards, split_blocks, moved = _apply_pairrange(schedule)
    elif strategy == "pairrange-tree":
        moved = _apply_pairrange_tree(schedule)
    after = skew_report(schedule)
    return BalancePlan(
        strategy=strategy,
        num_tasks=schedule.num_tasks,
        before=before,
        after=after,
        shards=shards,
        split_blocks=split_blocks,
        moved_trees=moved,
        top_blocks=top,
    )


def _top_blocks(
    schedule: ProgressiveSchedule, limit: int = 5
) -> Tuple[Tuple[str, float], ...]:
    """The heaviest blocks by estimated cost (for reports)."""
    ranked = sorted(
        ((uid, schedule.estimates[uid].cost) for uid in schedule.tree_of_block),
        key=lambda item: (-item[1], item[0]),
    )
    return tuple(ranked[:limit])


def _subtree_costs(schedule: ProgressiveSchedule) -> Dict[str, float]:
    """Total estimated cost per tree."""
    return {
        uid: sum(schedule.estimates[b.uid].cost for b in root.subtree())
        for uid, root in schedule.trees.items()
    }


# ---------------------------------------------------------------------------
# pairrange: global enumeration of the pair stream, cut into equal ranges
# ---------------------------------------------------------------------------


def _apply_pairrange(
    schedule: ProgressiveSchedule,
) -> Tuple[Tuple[BlockShard, ...], Tuple[str, ...], int]:
    """Faithful global PairRange (Kolb, Thor & Rahm).

    The estimated pair stream of *all* full root blocks is enumerated on
    one cumulative cost axis in canonical uid order: each tree contributes
    its non-splittable lump (children plus the root's setup cost) followed
    by the root's comparison span spread uniformly over its raw pair
    stream.  The axis is cut at ``t * total / num_tasks``; a cut that
    lands inside a block's span splits the block there into contiguous
    :class:`BlockShard` slices — no oversize threshold gates the split,
    any block a cut crosses is split, exactly as in the paper's PairRange.
    Every work unit then lands on the task whose range contains its
    midpoint, so per-task loads are near-uniform regardless of skew (max
    load exceeds the mean by at most one unit's residual cost).

    Shard 0 rides home with the tree's lump — children memberships are
    derived from the home task's buffered entities — so the home unit is
    the contiguous axis interval ``[tree start, end of shard 0)``.
    """
    num_tasks = schedule.num_tasks
    tree_costs = _subtree_costs(schedule)
    total = sum(tree_costs.values())
    if total <= 0 or num_tasks < 1:
        return (), (), 0
    cuts = [total * t / num_tasks for t in range(1, num_tasks)]

    def task_of(midpoint: float) -> int:
        return min(num_tasks - 1, int(midpoint * num_tasks / total))

    home_tasks: Dict[str, int] = {}
    shards_of_tree: Dict[str, List[BlockShard]] = {}
    shard_tasks: Dict[str, int] = {}
    all_shards: List[BlockShard] = []
    axis = 0.0
    for uid in sorted(schedule.trees):
        root = schedule.trees[uid]
        estimate = schedule.estimates[uid]
        tree_start = axis
        axis += tree_costs[uid]
        span = max(0.0, estimate.cost - estimate.cost_a)
        total_pairs = window_pairs_count(root.size, estimate.window)
        # Only full=True roots may be cut: their output is independent of
        # where the stream splits (resolved to exhaustion), while a
        # DistinctBudget stop depends on stream order.
        if not (estimate.full and total_pairs >= 2 and span > 0.0):
            home_tasks[uid] = task_of(tree_start + tree_costs[uid] / 2.0)
            continue
        span_start = axis - span
        per_pair = span / total_pairs
        interior = sorted({
            min(total_pairs - 1,
                max(1, int(round((cut - span_start) / per_pair))))
            for cut in cuts
            if span_start + _EPS < cut < axis - _EPS
        })
        if not interior:
            home_tasks[uid] = task_of(tree_start + tree_costs[uid] / 2.0)
            continue
        bounds = [0, *interior, total_pairs]
        num_shards = len(bounds) - 1
        shards = []
        for index in range(num_shards):
            start, stop = bounds[index], bounds[index + 1]
            shards.append(
                BlockShard(
                    key=shard_key(uid, index),
                    block_uid=uid,
                    tree_uid=uid,
                    index=index,
                    num_shards=num_shards,
                    start=start,
                    stop=stop,
                    cost=estimate.cost_a + per_pair * (stop - start),
                )
            )
        shards_of_tree[uid] = shards
        all_shards.extend(shards)
        home_end = span_start + per_pair * bounds[1]
        home_tasks[uid] = task_of((tree_start + home_end) / 2.0)
        for index in range(1, num_shards):
            mid = span_start + per_pair * (bounds[index] + bounds[index + 1]) / 2.0
            shard_tasks[shards[index].key] = task_of(mid)

    moved = _install_placement(
        schedule, home_tasks, shards_of_tree, shard_tasks, all_shards
    )
    return tuple(all_shards), tuple(sorted(shards_of_tree)), moved


# ---------------------------------------------------------------------------
# pairrange-tree: contiguous global cost ranges at tree granularity
# ---------------------------------------------------------------------------


def _apply_pairrange_tree(schedule: ProgressiveSchedule) -> int:
    """Reassign whole trees to tasks by contiguous cost ranges.

    .. deprecated::
        This is the pre-global ``pairrange``, kept as the
        ``pairrange-tree`` alias.  Trees keep their internal structure, so
        a single oversized block still bounds the makespan — prefer the
        global ``pairrange`` (or ``blocksplit``) which can split blocks.

    Trees are enumerated in canonical uid order; the cumulative cost axis
    is cut into ``num_tasks`` equal ranges and each tree lands on the
    range containing its midpoint.  Helps multi-tree skew (many mid-sized
    trees stacked on one task) and stays compatible with block routing
    because it never creates shards.
    """
    costs = _subtree_costs(schedule)
    order = sorted(schedule.trees)
    total = sum(costs.values())
    if total <= 0:
        return 0
    moved = 0
    num_tasks = schedule.num_tasks
    cumulative = 0.0
    new_assignment: Dict[str, int] = {}
    for uid in order:
        midpoint = cumulative + costs[uid] / 2.0
        task = min(num_tasks - 1, int(midpoint * num_tasks / total))
        new_assignment[uid] = task
        if task != schedule.assignment[uid]:
            moved += 1
        cumulative += costs[uid]
    schedule.assignment = new_assignment
    schedule.block_order = build_block_orders(
        schedule.trees, schedule.estimates, new_assignment, num_tasks
    )
    recompute_sequence(schedule)
    return moved


# ---------------------------------------------------------------------------
# blocksplit: shard oversized root blocks, LPT-place all units
# ---------------------------------------------------------------------------


def _apply_blocksplit(
    schedule: ProgressiveSchedule,
) -> Tuple[Tuple[BlockShard, ...], Tuple[str, ...], int]:
    """Shard oversized roots and re-place every work unit with LPT."""
    num_tasks = schedule.num_tasks
    tree_costs = _subtree_costs(schedule)
    total = sum(tree_costs.values())
    mean_load = total / num_tasks if num_tasks else 0.0

    units: List[Tuple[str, float]] = []
    all_shards: List[BlockShard] = []
    shards_of_tree: Dict[str, List[BlockShard]] = {}
    for uid in sorted(schedule.trees):
        root = schedule.trees[uid]
        shards = _shard_root(schedule, uid, mean_load)
        if shards is None:
            units.append((uid, tree_costs[uid]))
            continue
        shards_of_tree[uid] = shards
        all_shards.extend(shards)
        # The home unit keeps the tree's children plus shard 0 of the root
        # (children memberships are derived from the tree's buffered
        # entities, so they cannot leave the home task).
        home_cost = (tree_costs[uid] - schedule.estimates[uid].cost) + shards[0].cost
        units.append((uid, home_cost))
        units.extend((shard.key, shard.cost) for shard in shards[1:])

    placement = place_units(units, num_tasks)
    home_tasks = {uid: placement[uid] for uid in schedule.trees}
    shard_tasks = {
        shard.key: placement[shard.key]
        for shards in shards_of_tree.values()
        for shard in shards[1:]
    }
    moved = _install_placement(
        schedule, home_tasks, shards_of_tree, shard_tasks, all_shards
    )
    split = tuple(sorted(shards_of_tree))
    return tuple(all_shards), split, moved


def _install_placement(
    schedule: ProgressiveSchedule,
    home_tasks: Dict[str, int],
    shards_of_tree: Dict[str, List[BlockShard]],
    shard_tasks: Dict[str, int],
    all_shards: List[BlockShard],
) -> int:
    """Write a placement back into the schedule (shared by ``blocksplit``
    and global ``pairrange``): assignment, shard table, per-task block
    orders with shard 0 spliced into the tree's home order and remote
    shards leading their task, and the recomputed resolution sequence.
    Returns how many trees changed home task."""
    num_tasks = schedule.num_tasks
    moved = 0
    new_assignment: Dict[str, int] = {}
    for uid in schedule.trees:
        new_assignment[uid] = home_tasks[uid]
        if home_tasks[uid] != schedule.assignment[uid]:
            moved += 1
    for shards in shards_of_tree.values():
        for shard in shards[1:]:
            new_assignment[shard.key] = shard_tasks[shard.key]
    schedule.assignment = new_assignment
    schedule.shards = {shard.key: shard for shard in all_shards}

    orders = build_block_orders(
        schedule.trees, schedule.estimates, home_tasks, num_tasks,
    )
    for uid, shards in shards_of_tree.items():
        home = home_tasks[uid]
        orders[home] = [
            shards[0].key if entry == uid else entry for entry in orders[home]
        ]
    # Remote shards carry the split blocks' comparison mass, so they lead
    # their task's order: starting the critical path first minimizes the
    # task's finish time without touching output sets.
    extra: Dict[int, List[BlockShard]] = {}
    for shards in shards_of_tree.values():
        for shard in shards[1:]:
            extra.setdefault(shard_tasks[shard.key], []).append(shard)
    for task, shard_list in extra.items():
        shard_list.sort(key=lambda s: (-s.cost, s.key))
        orders[task] = [shard.key for shard in shard_list] + orders[task]
    schedule.block_order = orders
    recompute_sequence(schedule)
    return moved


def _shard_root(
    schedule: ProgressiveSchedule, tree_uid: str, mean_load: float
) -> Optional[List[BlockShard]]:
    """Shards for one tree's root block, or ``None`` when it is not worth
    splitting (root under the oversize threshold, or a trivial stream)."""
    root = schedule.trees[tree_uid]
    estimate = schedule.estimates[tree_uid]
    if mean_load <= 0 or estimate.cost <= mean_load * OVERSIZE_FACTOR + _EPS:
        return None
    total_pairs = window_pairs_count(root.size, estimate.window)
    if total_pairs < 2:
        return None
    num_shards = min(
        schedule.num_tasks,
        math.ceil(estimate.cost / mean_load),
        total_pairs,
    )
    if num_shards <= 1:
        return None
    bounds = shard_bounds(total_pairs, num_shards)
    # Every shard replays the mechanism's setup (sort / hint) on its copy
    # of the block, so CostA is charged per shard; the comparison cost
    # splits proportionally to the pair range.
    per_pair = max(0.0, estimate.cost - estimate.cost_a) / total_pairs
    shards: List[BlockShard] = []
    for index in range(num_shards):
        start, stop = bounds[index], bounds[index + 1]
        shards.append(
            BlockShard(
                key=shard_key(tree_uid, index),
                block_uid=tree_uid,
                tree_uid=tree_uid,
                index=index,
                num_shards=num_shards,
                start=start,
                stop=stop,
                cost=estimate.cost_a + per_pair * (stop - start),
            )
        )
    return shards


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def format_balance_summary(plan: BalancePlan) -> str:
    """A terminal table of the plan: skew before/after, shards, top blocks."""
    lines = [
        f"load balance — strategy {plan.strategy!r} over {plan.num_tasks} reduce tasks",
        f"  {'':14s}{'before':>12s}{'after':>12s}",
    ]
    rows = [
        ("makespan", plan.before.max, plan.after.max),
        ("mean load", plan.before.mean, plan.after.mean),
        ("max/mean", plan.before.max_over_mean, plan.after.max_over_mean),
        ("gini", plan.before.gini, plan.after.gini),
    ]
    for name, b, a in rows:
        lines.append(f"  {name:14s}{b:12.2f}{a:12.2f}")
    lines.append(
        f"  split blocks: {len(plan.split_blocks)}  shards: {len(plan.shards)}"
        f"  moved trees: {plan.moved_trees}"
    )
    if plan.top_blocks:
        lines.append("  heaviest blocks (estimated cost):")
        for uid, cost in plan.top_blocks:
            marker = " [split]" if uid in plan.split_blocks else ""
            lines.append(f"    {uid:24s}{cost:12.2f}{marker}")
    return "\n".join(lines)


__all__ = [
    "BALANCE_STRATEGIES",
    "BlockShard",
    "SkewReport",
    "BalancePlan",
    "apply_balance",
    "planned_loads",
    "skew_report",
    "place_units",
    "shard_bounds",
    "shard_key",
    "format_balance_summary",
]
