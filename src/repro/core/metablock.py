"""Meta-blocking pre-pass: block filtering and weighted node pruning.

Meta-blocking (Papadakis et al., "Meta-Blocking: Taking Entity Resolution
to the Next Level", TKDE 2014; block filtering per "Scaling Entity
Resolution to Large, Heterogeneous Data with Enhanced Meta-blocking",
EDBT 2016) restructures a redundancy-positive block collection *before*
resolution: every pair's co-occurrence pattern across blocks is evidence
of match likelihood, so low-evidence candidates can be discarded without
ever comparing them.

This module implements the two classic schemes on the *level-1* block
collection of a :class:`~repro.blocking.functions.BlockingScheme` (one
block per family main key — the redundancy-positive layer; sub-blocks
refine rather than add co-occurrence evidence):

* **Block filtering** (``bf``): each entity keeps only its
  ``ceil(ratio * k)`` smallest level-1 blocks (smaller blocks are more
  discriminative).  The dropped ``(entity, family)`` memberships are
  removed *at annotation time*, so Job 1's statistics, the schedule and
  Job 2's routing all see the shrunken blocks — no per-pair veto needed.
* **Weighted node pruning** (``wnp``): every co-occurring pair is weighed
  (``cbs`` — common level-1 blocks — or ``js`` — Jaccard over the key
  sets), each entity's retention threshold is the mean weight of its
  incident pairs, and a pair survives if *either* endpoint retains it
  (weight >= min of the endpoint thresholds, ties kept).  The blocks are
  untouched; the decision ships to Job 2's reducers as a picklable
  :class:`WnpPruner` consulted per pair at zero virtual cost.

Both schemes are pure functions of the dataset and scheme, so the
pre-pass is bit-identical across serial and process backends and under
fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..blocking.functions import BlockingScheme
from ..data.entity import Entity, Pair, pair_key, pairs_count

#: Recognized values of the ``metablock`` knob.
METABLOCK_MODES: Tuple[str, ...] = ("off", "bf", "wnp")

#: An entity's level-1 signature: family -> main blocking key (only
#: families whose key function applies to the entity).
Signature = Dict[str, str]


def level1_signatures(
    entities: Iterable[Entity], scheme: BlockingScheme
) -> Dict[int, Signature]:
    """Per entity id, its non-``None`` level-1 keys by family."""
    mains = [(family, scheme.main_function(family)) for family in scheme.family_order]
    signatures: Dict[int, Signature] = {}
    for entity in entities:
        sig: Signature = {}
        for family, function in mains:
            key = function.key_of(entity)
            if key is not None:
                sig[family] = key
        signatures[entity.id] = sig
    return signatures


def level1_blocks(
    signatures: Dict[int, Signature], family_order: Sequence[str]
) -> Dict[Tuple[str, str], List[int]]:
    """``(family, key) -> sorted member ids`` of every level-1 block."""
    blocks: Dict[Tuple[str, str], List[int]] = {}
    for eid in sorted(signatures):
        for family in family_order:
            key = signatures[eid].get(family)
            if key is not None:
                blocks.setdefault((family, key), []).append(eid)
    return blocks


def pair_weight(sig_i: Signature, sig_j: Signature, weighting: str) -> float:
    """Meta-blocking edge weight of a pair from its level-1 signatures.

    ``cbs``: number of level-1 blocks the pair co-occurs in.  ``js``:
    Jaccard similarity of the two entities' block sets.  Both are exact
    rationals of small integers, so recomputing the weight worker-side
    from the shipped signatures is bit-identical to the driver's pass.
    """
    common = sum(1 for family, key in sig_i.items() if sig_j.get(family) == key)
    if weighting == "cbs":
        return float(common)
    if weighting == "js":
        union = len(sig_i) + len(sig_j) - common
        return common / union if union else 0.0
    raise ValueError(f"unknown metablock weighting {weighting!r}")


def block_filter(
    signatures: Dict[int, Signature],
    scheme: BlockingScheme,
    ratio: float,
) -> FrozenSet[Tuple[int, str]]:
    """Block filtering: the ``(entity id, family)`` memberships to drop.

    Each entity ranks its level-1 blocks by ``(size, dominance rank,
    key)`` ascending and keeps the first ``ceil(ratio * k)`` — the
    deterministic tie-break makes the pruned set a pure function of the
    dataset and scheme.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"metablock ratio must be in (0, 1], got {ratio}")
    blocks = level1_blocks(signatures, scheme.family_order)
    sizes = {block_key: len(members) for block_key, members in blocks.items()}
    rank = {family: index for index, family in enumerate(scheme.family_order)}
    pruned: Set[Tuple[int, str]] = set()
    for eid, sig in signatures.items():
        mine = [
            (sizes[(family, key)], rank[family], key, family)
            for family, key in sig.items()
        ]
        keep = ceil(ratio * len(mine))
        if keep >= len(mine):
            continue
        mine.sort()
        for _, _, _, family in mine[keep:]:
            pruned.add((eid, family))
    return frozenset(pruned)


class WnpPruner:
    """Weighted-node-pruning pair veto, shippable to reduce tasks.

    Holds the level-1 signatures and the per-entity mean-weight retention
    thresholds; :meth:`keep` recomputes the pair weight from the
    signatures (pure, deterministic) and retains the pair when either
    endpoint's threshold admits it.  Plain-dict state keeps the object
    picklable for process backends and service snapshots.
    """

    def __init__(
        self,
        signatures: Dict[int, Signature],
        thresholds: Dict[int, float],
        weighting: str,
    ) -> None:
        self.signatures = signatures
        self.thresholds = thresholds
        self.weighting = weighting

    def keep(self, e1: Entity, e2: Entity) -> bool:
        """Whether the pair survives pruning (ties kept)."""
        sig_i = self.signatures.get(e1.id)
        sig_j = self.signatures.get(e2.id)
        if not sig_i or not sig_j:
            return True
        th_i = self.thresholds.get(e1.id)
        th_j = self.thresholds.get(e2.id)
        if th_i is None or th_j is None:
            # An endpoint that never weighed a pair imposes no bound.
            return True
        return pair_weight(sig_i, sig_j, self.weighting) >= min(th_i, th_j)


def _responsible(
    sig_i: Signature, sig_j: Signature, family: str, family_order: Sequence[str]
) -> bool:
    """Whether ``family``'s block is the pair's *first* common block —
    the one that weighs the pair, so each pair counts exactly once."""
    for candidate in family_order:
        key = sig_i.get(candidate)
        if key is not None and sig_j.get(candidate) == key:
            return candidate == family
    return False


@dataclass
class MetablockPlan:
    """Everything one meta-blocking pre-pass produced.

    Attributes:
        mode: ``"bf"`` or ``"wnp"`` (``"off"`` runs build no plan).
        weighting: edge-weighting scheme (``wnp`` only; recorded for
            reports either way).
        ratio: block-filtering retention ratio (``bf`` only).
        pruned: ``(entity id, family)`` memberships dropped by ``bf``
            (empty for ``wnp`` — its blocks are untouched).
        pruner: the per-pair veto for ``wnp`` (``None`` for ``bf``).
        keep_ratios: per level-1 block ``(family, key)``, the fraction of
            its pairs that survive pruning — feeds the cost re-estimation
            of full (root) block resolutions.
        memberships_total / memberships_kept: level-1 block memberships
            before / after ``bf``.
        pairs_total / pairs_kept: distinct level-1 candidate pairs before
            / after the pre-pass.
    """

    mode: str
    weighting: str
    ratio: float
    pruned: FrozenSet[Tuple[int, str]] = frozenset()
    pruner: Optional[WnpPruner] = None
    keep_ratios: Dict[Tuple[str, str], float] = field(default_factory=dict)
    memberships_total: int = 0
    memberships_kept: int = 0
    pairs_total: int = 0
    pairs_kept: int = 0

    @property
    def pair_reduction(self) -> float:
        """``pairs_total / pairs_kept`` (1.0 when nothing was pruned)."""
        return self.pairs_total / self.pairs_kept if self.pairs_kept else float("inf")

    def counter_items(self) -> Dict[str, int]:
        """Integer counters for the job-counter merge (backend-invariant)."""
        return {
            "memberships_total": self.memberships_total,
            "memberships_kept": self.memberships_kept,
            "memberships_pruned": self.memberships_total - self.memberships_kept,
            "pairs_total": self.pairs_total,
            "pairs_kept": self.pairs_kept,
            "pairs_pruned": self.pairs_total - self.pairs_kept,
        }


def candidate_pairs(
    entities: Sequence[Entity],
    scheme: BlockingScheme,
    *,
    pruned: FrozenSet[Tuple[int, str]] = frozenset(),
    pruner: Optional[WnpPruner] = None,
    cross_source_only: bool = False,
) -> Set[Pair]:
    """The distinct level-1 candidate-pair set under the given pre-pass.

    This is the *pair universe* the progressive pipeline can ever compare
    (windowing may visit fewer): pairs co-occurring in at least one
    unfiltered level-1 block, surviving the ``wnp`` veto and — in linkage
    mode — joining entities of different sources.  Used by the property
    and differential suites as the reference oracle.
    """
    signatures = level1_signatures(entities, scheme)
    if pruned:
        signatures = {
            eid: {f: k for f, k in sig.items() if (eid, f) not in pruned}
            for eid, sig in signatures.items()
        }
    by_id = {e.id: e for e in entities}
    pairs: Set[Pair] = set()
    for members in level1_blocks(signatures, scheme.family_order).values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = by_id[members[i]], by_id[members[j]]
                key = pair_key(a.id, b.id)
                if key in pairs:
                    continue
                if cross_source_only and a.source == b.source:
                    continue
                if pruner is not None and not pruner.keep(a, b):
                    continue
                pairs.add(key)
    return pairs


def build_metablock_plan(
    entities: Sequence[Entity],
    scheme: BlockingScheme,
    mode: str,
    *,
    ratio: float = 0.8,
    weighting: str = "cbs",
) -> MetablockPlan:
    """Run the selected pre-pass over the dataset's level-1 blocks."""
    if mode not in METABLOCK_MODES or mode == "off":
        raise ValueError(f"no metablock plan to build for mode {mode!r}")
    signatures = level1_signatures(entities, scheme)
    blocks = level1_blocks(signatures, scheme.family_order)
    memberships_total = sum(len(members) for members in blocks.values())
    pairs_total = len(_distinct_pairs(blocks))

    if mode == "bf":
        pruned = block_filter(signatures, scheme, ratio)
        filtered = {
            eid: {f: k for f, k in sig.items() if (eid, f) not in pruned}
            for eid, sig in signatures.items()
        }
        kept_blocks = level1_blocks(filtered, scheme.family_order)
        return MetablockPlan(
            mode=mode,
            weighting=weighting,
            ratio=ratio,
            pruned=pruned,
            memberships_total=memberships_total,
            memberships_kept=memberships_total - len(pruned),
            pairs_total=pairs_total,
            pairs_kept=len(_distinct_pairs(kept_blocks)),
        )

    # -- wnp ------------------------------------------------------------
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for family in scheme.family_order:
        for (block_family, _), members in blocks.items():
            if block_family != family:
                continue
            for i in range(len(members)):
                sig_i = signatures[members[i]]
                for j in range(i + 1, len(members)):
                    sig_j = signatures[members[j]]
                    if not _responsible(sig_i, sig_j, family, scheme.family_order):
                        continue
                    weight = pair_weight(sig_i, sig_j, weighting)
                    for eid in (members[i], members[j]):
                        sums[eid] = sums.get(eid, 0.0) + weight
                        counts[eid] = counts.get(eid, 0) + 1
    thresholds = {eid: sums[eid] / counts[eid] for eid in sums}
    pruner = WnpPruner(signatures, thresholds, weighting)

    keep_ratios: Dict[Tuple[str, str], float] = {}
    kept_pairs: Set[Pair] = set()
    for block_key, members in blocks.items():
        total = pairs_count(len(members))
        if total == 0:
            continue
        kept = 0
        for i in range(len(members)):
            sig_i = signatures[members[i]]
            th_i = thresholds.get(members[i])
            for j in range(i + 1, len(members)):
                th_j = thresholds.get(members[j])
                if th_i is None or th_j is None:
                    retained = True
                else:
                    weight = pair_weight(sig_i, signatures[members[j]], weighting)
                    retained = weight >= min(th_i, th_j)
                if retained:
                    kept += 1
                    kept_pairs.add(pair_key(members[i], members[j]))
        keep_ratios[block_key] = kept / total
    return MetablockPlan(
        mode=mode,
        weighting=weighting,
        ratio=ratio,
        pruner=pruner,
        keep_ratios=keep_ratios,
        memberships_total=memberships_total,
        memberships_kept=memberships_total,
        pairs_total=pairs_total,
        pairs_kept=len(kept_pairs),
    )


def _distinct_pairs(blocks: Dict[Tuple[str, str], List[int]]) -> Set[Pair]:
    pairs: Set[Pair] = set()
    for members in blocks.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                pairs.add(pair_key(members[i], members[j]))
    return pairs


def format_metablock_summary(plan: MetablockPlan) -> str:
    """Human-readable pruning summary table for reports and the CLI."""
    rows = [
        ("mode", plan.mode),
        ("weighting", plan.weighting if plan.mode == "wnp" else "-"),
        ("ratio", f"{plan.ratio:.2f}" if plan.mode == "bf" else "-"),
        ("memberships", f"{plan.memberships_kept}/{plan.memberships_total}"),
        ("candidate pairs", f"{plan.pairs_kept}/{plan.pairs_total}"),
        (
            "pair reduction",
            "inf" if not plan.pairs_kept else f"{plan.pair_reduction:.2f}x",
        ),
    ]
    width = max(len(name) for name, _ in rows)
    lines = ["meta-blocking pre-pass"]
    lines += [f"  {name.ljust(width)}  {value}" for name, value in rows]
    return "\n".join(lines)


__all__ = [
    "METABLOCK_MODES",
    "Signature",
    "level1_signatures",
    "level1_blocks",
    "pair_weight",
    "block_filter",
    "WnpPruner",
    "MetablockPlan",
    "candidate_pairs",
    "build_metablock_plan",
    "format_metablock_summary",
]
