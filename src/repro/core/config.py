"""Configuration of the progressive approach.

Bundles everything Section VI-A fixes per dataset: the blocking scheme
(Table II), the match function, the progressive mechanism M, the per-level
window sizes ``w``, termination thresholds ``Th`` and fraction values
``Frac`` (Section VI-A5), plus the schedule-generation knobs (cost vector
``C``, weighting function ``W``, split batch size ``b``) and the
incremental-output period α.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..blocking.blocks import Block
from ..blocking.functions import (
    BlockingScheme,
    books_scheme,
    citeseer_scheme,
    linkage_scheme,
    people_scheme,
    prefix_function,
)
from ..mechanisms.base import Mechanism
from ..mechanisms.psnm import PSNM
from ..mechanisms.sorted_neighbor import SortedNeighborHint
from ..similarity.matchers import (
    WeightedMatcher,
    books_matcher,
    citeseer_matcher,
    linkage_matcher,
    people_matcher,
)


@dataclass(frozen=True)
class LevelPolicy:
    """Per-block-level parameters (Section VI-A5).

    The paper sets the window, termination threshold and fraction value
    "based on the level of that block": leaves are resolved the most
    aggressively, inner blocks less so, roots fully.
    """

    root_window: int = 15
    mid_window: int = 10
    leaf_window: int = 5
    leaf_frac: float = 0.8
    mid_frac: float = 0.9

    def window_of(self, block: Block) -> int:
        """``w`` for a block, by its current tree position."""
        if block.is_root:
            return self.root_window
        if block.is_leaf:
            return self.leaf_window
        return self.mid_window

    def frac_of(self, block: Block) -> float:
        """``Frac(X^i_j)``: expected fraction of duplicates found by the
        partial resolution.  Roots are resolved fully (1.0)."""
        if block.is_root:
            return 1.0
        if block.is_leaf:
            return self.leaf_frac
        return self.mid_frac

    def threshold_of(self, block: Block) -> int:
        """``Th(X^i_j)``: distinct-pair budget.  The paper uses the block
        size, which guarantees a child's budget is below its parent's."""
        return block.size


WeightingFunction = Callable[[int, int], float]


def linear_weights(index: int, total: int) -> float:
    """``W(c_i)`` decreasing linearly from 1 to 1/total (paper: any
    non-increasing weights in [0, 1])."""
    return (total - index) / total


def exponential_weights(index: int, total: int) -> float:
    """``W(c_i)`` halving with each interval — emphasizes the earliest cost
    intervals more strongly than :func:`linear_weights`."""
    return 0.5**index


def make_budget_weighting(budget_fraction: float) -> WeightingFunction:
    """``W`` for budget-constrained cleaning (the extended report's [17]
    budget-optimized variant): intervals within the first
    ``budget_fraction`` of the cost vector weigh 1, everything after the
    budget weighs ~0 — the schedule then maximizes quality *within* the
    budget rather than overall progressiveness.

    A tiny tail weight keeps ``W`` strictly positive so post-budget work is
    still ordered sensibly if the run is allowed to continue.
    """
    if not 0.0 < budget_fraction <= 1.0:
        raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")

    def weighting(index: int, total: int) -> float:
        cutoff = budget_fraction * total
        return 1.0 if index < cutoff else 1e-3

    return weighting


@dataclass
class ApproachConfig:
    """Full configuration of the parallel progressive approach.

    Attributes:
        scheme: blocking scheme (families in dominance order).
        matcher: the resolve/match function.
        mechanism: progressive mechanism M for resolving blocks.
        levels: per-level window / Frac / Th policy.
        cost_vector: sampled cost values ``C`` (per reduce task); ``None``
            derives |C| equal intervals from the estimated total cost.
        num_intervals: |C| when the cost vector is derived automatically.
        weighting: ``W(.)`` over cost-interval indices.
        split_batch: ``b`` — overflowed trees split per iteration.
        alpha: reduce-side incremental output period (cost units).
        train_fraction: fraction of the dataset sampled (with ground truth)
            to fit the duplicate-probability model of Section VI-A4.
        estimator: override for the duplicate estimator ("learned",
            "oracle", "uniform") — ablation hook.
        redundancy_free: apply Section V's SHOULD-RESOLVE check.  Disabling
            it (ablation) resolves every shared pair in every tree
            containing it.
        routing: how Job 2's mapper routes entities.  ``"tree"`` (default)
            is the paper's actual implementation — one emission per tree
            containing the entity, sub-block membership re-derived reduce
            side (footnote 5).  ``"block"`` is the naive implementation the
            paper describes first: one emission per *block*, keyed by the
            block's sequence value ``SQ``, so the reduce function is called
            once per block in block-schedule order.  Same results, larger
            shuffle.
        mode: ``"dirty"`` (default) resolves duplicates anywhere in one
            source; ``"linkage"`` is clean-clean record linkage — entities
            carry ``source`` tags and only *cross-source* pairs are
            candidates (same-source pairs are vetoed at zero cost, and the
            cost estimates scale to the cross-pair fraction).
        metablock_ratio: block-filtering retention ratio ``r`` — under
            ``--metablock bf`` each entity keeps its ``ceil(r * k)``
            smallest level-1 blocks (Papadakis et al.'s Block Filtering).
        metablock_weighting: edge-weighting scheme for ``--metablock wnp``
            (weighted node pruning): ``"cbs"`` (common blocks) or ``"js"``
            (Jaccard over the entities' key sets).
    """

    scheme: BlockingScheme
    matcher: WeightedMatcher
    mechanism: Mechanism
    levels: LevelPolicy = field(default_factory=LevelPolicy)
    cost_vector: Optional[List[float]] = None
    num_intervals: int = 10
    weighting: WeightingFunction = linear_weights
    split_batch: int = 4
    alpha: float = 200.0
    train_fraction: float = 0.1
    estimator: str = "learned"
    redundancy_free: bool = True
    routing: str = "tree"
    mode: str = "dirty"
    metablock_ratio: float = 0.8
    metablock_weighting: str = "cbs"

    def __post_init__(self) -> None:
        if self.num_intervals < 1:
            raise ValueError("num_intervals must be at least 1")
        if self.split_batch < 1:
            raise ValueError("split_batch must be at least 1")
        if not 0.0 < self.train_fraction <= 1.0:
            raise ValueError("train_fraction must be in (0, 1]")
        if self.estimator not in ("learned", "oracle", "uniform"):
            raise ValueError(f"unknown estimator {self.estimator!r}")
        if self.routing not in ("tree", "block"):
            raise ValueError(f"unknown routing {self.routing!r}")
        if self.mode not in ("dirty", "linkage"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if not 0.0 < self.metablock_ratio <= 1.0:
            raise ValueError("metablock_ratio must be in (0, 1]")
        if self.metablock_weighting not in ("cbs", "js"):
            raise ValueError(
                f"unknown metablock_weighting {self.metablock_weighting!r}"
            )

    def sort_attribute(self, family: str) -> str:
        """Attribute the blocks of ``family`` are sorted on (the paper sorts
        each block by the attribute its blocking function is defined on)."""
        description = self.scheme.main_function(family).description
        return description.split(".", 1)[0]


def citeseer_config(**overrides) -> ApproachConfig:
    """Paper settings for CiteSeerX: SN + hint, Frac 0.8 / 0.9."""
    defaults = dict(
        scheme=citeseer_scheme(),
        matcher=citeseer_matcher(),
        mechanism=SortedNeighborHint(),
        levels=LevelPolicy(leaf_frac=0.8, mid_frac=0.9),
    )
    defaults.update(overrides)
    return ApproachConfig(**defaults)


def books_config(**overrides) -> ApproachConfig:
    """Paper settings for OL-Books: PSNM, Frac 0.85 / 0.95."""
    defaults = dict(
        scheme=books_scheme(),
        matcher=books_matcher(),
        mechanism=PSNM(),
        levels=LevelPolicy(leaf_frac=0.85, mid_frac=0.95),
    )
    defaults.update(overrides)
    return ApproachConfig(**defaults)


def people_config(**overrides) -> ApproachConfig:
    """Settings for the census-style people family: PSNM (short values
    make the materialized SN hint a poor trade), default Frac levels.

    The windows are wider than the paper datasets' (25/12/6): person
    records sort duplicates further apart (surnames are short and
    low-entropy), and the paper's own tuning rule — pick the smallest root
    window that still captures nearly all duplicates — lands higher here.
    """
    defaults = dict(
        scheme=people_scheme(),
        matcher=people_matcher(),
        mechanism=PSNM(),
        levels=LevelPolicy(
            root_window=25, mid_window=12, leaf_window=6,
            leaf_frac=0.8, mid_frac=0.9,
        ),
    )
    defaults.update(overrides)
    return ApproachConfig(**defaults)


def skewed_config(**overrides) -> ApproachConfig:
    """Adversarial single-family configuration for load-balancing studies.

    One shallow blocking family (a short title prefix with no sub-blocking
    functions) makes every tree a childless root: the Figure-6 splitter
    has nothing to split, so a hub blocking key yields a single giant
    block that dominates whichever reduce task the slack partitioner picks
    — the workload :mod:`repro.core.balance` is designed to fix.  Pairs
    with :func:`repro.data.skewed.make_skewed`.
    """
    defaults = dict(
        scheme=BlockingScheme(
            families={"X": [prefix_function("X", 1, "title", 2)]}
        ),
        matcher=citeseer_matcher(),
        mechanism=PSNM(),
    )
    defaults.update(overrides)
    return ApproachConfig(**defaults)


def linkage_config(**overrides) -> ApproachConfig:
    """Settings for clean-clean linkage over the two-source dataset:
    blocking and matching on the shared title/authors/year attributes,
    SN + hint, ``mode="linkage"`` restricting candidates to cross-source
    pairs."""
    defaults = dict(
        scheme=linkage_scheme(),
        matcher=linkage_matcher(),
        mechanism=SortedNeighborHint(),
        levels=LevelPolicy(leaf_frac=0.8, mid_frac=0.9),
        mode="linkage",
    )
    defaults.update(overrides)
    return ApproachConfig(**defaults)


__all__ = [
    "LevelPolicy",
    "ApproachConfig",
    "WeightingFunction",
    "linear_weights",
    "exponential_weights",
    "make_budget_weighting",
    "citeseer_config",
    "books_config",
    "people_config",
    "skewed_config",
    "linkage_config",
]
