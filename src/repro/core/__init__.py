"""The paper's contribution: progressive blocking statistics, duplicate and
cost estimation, schedule generation, redundancy-free resolution, and the
two-job MapReduce driver."""

from .balance import (
    BALANCE_STRATEGIES,
    BalancePlan,
    BlockShard,
    SkewReport,
    apply_balance,
    format_balance_summary,
    planned_loads,
    skew_report,
)
from .calibration import (
    CalibrationFit,
    TaskSample,
    calibration_report,
    fit_cost_model,
    task_samples,
)
from .config import (
    ApproachConfig,
    LevelPolicy,
    books_config,
    citeseer_config,
    exponential_weights,
    linear_weights,
    make_budget_weighting,
    people_config,
    skewed_config,
)
from .driver import ProgressiveER, ProgressiveResult
from .estimation import (
    BlockEstimate,
    DuplicateEstimator,
    EstimationModel,
    LearnedEstimator,
    OracleEstimator,
    UniformEstimator,
)
from .redundancy import build_dominance_list, missing_sentinel, should_resolve
from .responsibility import compute_coverage, covered_pairs, uncovered_pairs
from .schedule import ProgressiveSchedule, generate_schedule
from .serialize import (
    load_events,
    load_schedule,
    save_events,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from .statistics import (
    AnnotatedEntity,
    BlockRecord,
    DatasetStatistics,
    run_statistics_job,
)

__all__ = [
    "BALANCE_STRATEGIES",
    "BalancePlan",
    "BlockShard",
    "SkewReport",
    "apply_balance",
    "format_balance_summary",
    "planned_loads",
    "skew_report",
    "CalibrationFit",
    "TaskSample",
    "calibration_report",
    "fit_cost_model",
    "task_samples",
    "ApproachConfig",
    "LevelPolicy",
    "citeseer_config",
    "books_config",
    "people_config",
    "skewed_config",
    "linear_weights",
    "exponential_weights",
    "make_budget_weighting",
    "ProgressiveER",
    "ProgressiveResult",
    "BlockEstimate",
    "DuplicateEstimator",
    "EstimationModel",
    "LearnedEstimator",
    "OracleEstimator",
    "UniformEstimator",
    "build_dominance_list",
    "missing_sentinel",
    "should_resolve",
    "compute_coverage",
    "covered_pairs",
    "uncovered_pairs",
    "ProgressiveSchedule",
    "generate_schedule",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "save_events",
    "load_events",
    "AnnotatedEntity",
    "BlockRecord",
    "DatasetStatistics",
    "run_statistics_job",
]
