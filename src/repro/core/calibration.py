"""Cost-model calibration: fit virtual-cost constants to real wall-clock.

The simulator's :class:`~repro.mapreduce.clock.CostModel` prices every
operation in abstract units; the paper's curves are recall versus *real*
seconds.  This module closes that gap.  Every task computation records its
wall-clock duration (``wall_ns``) and a category breakdown of its virtual
charges (``charge_profile``: compare / emit / shuffle / sort / read, plus
an untagged remainder) — both ride the existing payload path through the
engine into :class:`~repro.mapreduce.types.TaskResult`, in the serial and
the process backend alike.  :func:`fit_cost_model` then solves the least
squares problem

    ``wall_seconds(task)  ≈  Σ_k  seconds_per_unit[k] · units[k](task)``

over the observed tasks, yielding a real-seconds price for each virtual
unit by category.  From those, :func:`calibration_report` derives

* *fitted CostModel constants*: the categories re-expressed in compare
  units (what :class:`CostModel` would look like if its ratios matched
  this machine), and
* an *error band*: the median absolute percentage error between predicted
  and observed task seconds — the factor within which virtual makespans
  predict real time on this host.

The fit is observational: nothing here feeds back into virtual time, so
calibrated and uncalibrated runs remain bit-identical.  Fits from hosts
whose CPU affinity cannot actually run the requested workers in parallel
are flagged ``parallelism_limited`` (queueing inflates per-task wall time
under contention) rather than silently trusted.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..mapreduce.clock import CostModel
from ..mapreduce.types import JobResult, TaskResult

#: Charge categories the fit solves for, in reporting order.  ``other`` is
#: the untagged remainder of a task's cost (mechanism setup, bookkeeping);
#: ``task`` is a constant 1 per task — an intercept absorbing fixed
#: per-task overhead (dispatch, deserialization, interpreter warm-up) that
#: no virtual charge scales with.
CATEGORIES = ("compare", "emit", "shuffle", "sort", "read", "other", "task")

#: Tasks whose wall clock is below this floor are excluded from the error
#: statistic (not from the fit): timer resolution and interpreter noise
#: dominate sub-millisecond tasks.
MIN_WALL_SECONDS = 1e-3

#: Tiny ridge keeping the normal equations solvable when categories are
#: collinear on a small workload.
_RIDGE = 1e-9


@dataclass(frozen=True)
class TaskSample:
    """One task's calibration observation."""

    phase: str
    task_id: int
    cost: float
    wall_seconds: float
    units: Tuple[float, ...]  # per CATEGORIES


@dataclass
class CalibrationFit:
    """Result of one least-squares calibration fit.

    Attributes:
        seconds_per_unit: fitted real seconds per virtual unit, keyed by
            category (0.0 for categories absent from the workload).
        samples_used: tasks that entered the fit.
        samples_scored: tasks (wall >= :data:`MIN_WALL_SECONDS`) that
            entered the error statistic.
        median_ape: median absolute percentage error of predicted versus
            observed task seconds over the scored tasks.
        residual_rms: root-mean-square residual in seconds over all fit
            samples (finite by construction, asserted by CI).
    """

    seconds_per_unit: Dict[str, float]
    samples_used: int
    samples_scored: int
    median_ape: float
    residual_rms: float
    predictions: List[Tuple[float, float]] = field(default_factory=list)

    def predict_seconds(self, units: Mapping[str, float]) -> float:
        """Predicted wall seconds for a per-category unit vector."""
        return sum(
            self.seconds_per_unit.get(cat, 0.0) * value
            for cat, value in units.items()
        )


def task_samples(
    results: Iterable[JobResult], *, phases: Sequence[str] = ("map", "reduce")
) -> List[TaskSample]:
    """Extract calibration samples from executed job results."""
    samples: List[TaskSample] = []
    for result in results:
        for phase, tasks in (("map", result.map_tasks), ("reduce", result.reduce_tasks)):
            if phase not in phases:
                continue
            for task in tasks:
                sample = _sample_of(phase, task)
                if sample is not None:
                    samples.append(sample)
    return samples


def _sample_of(phase: str, task: TaskResult) -> Optional[TaskSample]:
    if task.wall_ns <= 0:
        return None
    profile = dict(task.charge_profile)
    tagged = sum(profile.values())
    units = [profile.get(cat, 0.0) for cat in CATEGORIES[:-2]]
    units.append(max(0.0, task.cost - tagged))
    units.append(1.0)  # intercept: fixed per-task overhead
    return TaskSample(
        phase=phase,
        task_id=task.task_id,
        cost=task.cost,
        wall_seconds=task.wall_ns / 1e9,
        units=tuple(units),
    )


def fit_cost_model(samples: Sequence[TaskSample]) -> CalibrationFit:
    """Fit per-category seconds-per-unit prices by least squares.

    Solves the normal equations with a tiny ridge (pure Python — the
    design matrix is ``len(samples) x 6``), then clamps any negative
    coefficient to zero and refits without that column: a negative price
    is always a collinearity artifact, never physics.
    """
    if not samples:
        raise ValueError("no calibration samples: run a workload first "
                         "(tasks need wall_ns > 0)")
    active = [
        k for k in range(len(CATEGORIES))
        if any(s.units[k] > 0.0 for s in samples)
    ]
    coef = _least_squares(samples, active)
    # Drop negative-price columns (collinearity artifacts) and refit.
    for _ in range(len(CATEGORIES)):
        negative = [k for k in active if coef.get(k, 0.0) < 0.0]
        if not negative:
            break
        active = [k for k in active if k not in negative]
        coef = _least_squares(samples, active) if active else {}

    seconds_per_unit = {
        cat: coef.get(k, 0.0) for k, cat in enumerate(CATEGORIES)
    }
    predictions: List[Tuple[float, float]] = []
    sq_residual = 0.0
    apes: List[float] = []
    for s in samples:
        predicted = sum(
            seconds_per_unit[CATEGORIES[k]] * s.units[k]
            for k in range(len(CATEGORIES))
        )
        predictions.append((predicted, s.wall_seconds))
        sq_residual += (predicted - s.wall_seconds) ** 2
        if s.wall_seconds >= MIN_WALL_SECONDS:
            apes.append(abs(predicted - s.wall_seconds) / s.wall_seconds)
    return CalibrationFit(
        seconds_per_unit=seconds_per_unit,
        samples_used=len(samples),
        samples_scored=len(apes),
        median_ape=_median(apes) if apes else float("inf"),
        residual_rms=(sq_residual / len(samples)) ** 0.5,
        predictions=predictions,
    )


def _least_squares(
    samples: Sequence[TaskSample], active: Sequence[int]
) -> Dict[int, float]:
    """Ridge-stabilized weighted normal equations over the active columns.

    Weights are ``1 / max(wall, floor)^2`` — relative least squares, so the
    fit minimizes squared *percentage* residuals rather than absolute ones
    (the error band is a percentage statistic; unweighted LS would let the
    few largest tasks dominate and leave small tasks badly mispredicted).
    """
    if not active:
        return {}
    n = len(active)
    ata = [[0.0] * n for _ in range(n)]
    aty = [0.0] * n
    for s in samples:
        weight = 1.0 / max(s.wall_seconds, MIN_WALL_SECONDS) ** 2
        row = [s.units[k] for k in active]
        for i in range(n):
            if row[i] == 0.0:
                continue
            aty[i] += weight * row[i] * s.wall_seconds
            for j in range(n):
                ata[i][j] += weight * row[i] * row[j]
    scale = max(ata[i][i] for i in range(n))
    ridge = _RIDGE * (scale if scale > 0 else 1.0)
    for i in range(n):
        ata[i][i] += ridge
    solution = _solve(ata, aty)
    return {k: solution[i] for i, k in enumerate(active)}


def _solve(matrix: List[List[float]], vector: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting (matrix is tiny)."""
    n = len(vector)
    a = [row[:] + [vector[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        a[col], a[pivot] = a[pivot], a[col]
        if a[col][col] == 0.0:
            continue
        for r in range(n):
            if r == col:
                continue
            factor = a[r][col] / a[col][col]
            if factor == 0.0:
                continue
            for c in range(col, n + 1):
                a[r][c] -= factor * a[col][c]
    return [
        a[i][n] / a[i][i] if a[i][i] != 0.0 else 0.0 for i in range(n)
    ]


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def visible_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def calibration_report(
    fit: CalibrationFit,
    *,
    cost_model: Optional[CostModel] = None,
    workload: Optional[Mapping[str, Any]] = None,
    workers: int = 1,
    backend: str = "process",
) -> Dict[str, Any]:
    """JSON-ready calibration report.

    ``fitted_constants`` re-expresses the per-category prices in compare
    units — what the :class:`CostModel` ratios *would* be if they matched
    this machine (``compare`` itself stays the 1.0 reference).  The
    ``parallelism_limited`` flag marks fits taken on hosts that cannot run
    the requested workers in parallel: under contention, queueing inflates
    per-task wall time, so such fits are contention-biased upper bounds,
    not hardware truth.
    """
    cost_model = cost_model or CostModel()
    cpus = visible_cpus()
    per_unit = fit.seconds_per_unit
    compare_price = per_unit.get("compare", 0.0)
    # Seconds per *operation* at the cost model's unit prices.
    per_op = {
        "compare": compare_price * cost_model.compare,
        "emit": per_unit.get("emit", 0.0) * cost_model.emit_pair,
        "shuffle": per_unit.get("shuffle", 0.0) * cost_model.shuffle_record,
        "read": per_unit.get("read", 0.0) * cost_model.read_record,
        "sort_item": per_unit.get("sort", 0.0) * cost_model.sort_item,
    }
    fitted_constants = {
        cat: (per_unit.get(cat, 0.0) / compare_price if compare_price > 0 else 0.0)
        for cat in CATEGORIES
    }
    return {
        "format": 1,
        "backend": backend,
        "workers": workers,
        "cpus_visible": cpus,
        "parallelism_limited": cpus < workers,
        "workload": dict(workload or {}),
        "seconds_per_unit": per_unit,
        "seconds_per_op": per_op,
        "fitted_constants": fitted_constants,
        "samples_used": fit.samples_used,
        "samples_scored": fit.samples_scored,
        "median_ape": fit.median_ape,
        "residual_rms_seconds": fit.residual_rms,
        "error_band": (
            f"virtual makespans predict real task seconds within "
            f"±{fit.median_ape * 100.0:.0f}% (median APE, "
            f"{fit.samples_scored} tasks >= {MIN_WALL_SECONDS * 1e3:.0f}ms)"
        ),
    }


__all__ = [
    "CATEGORIES",
    "MIN_WALL_SECONDS",
    "TaskSample",
    "CalibrationFit",
    "task_samples",
    "fit_cost_model",
    "calibration_report",
    "visible_cpus",
]
