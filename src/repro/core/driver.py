"""The two-job progressive ER pipeline (paper Section III).

Job 1 (:mod:`repro.core.statistics`) annotates the dataset and gathers the
block statistics.  This module implements Job 2 and the end-to-end driver:

* the **map side** regenerates the progressive schedule in its setup (the
  cost is charged per map task, exactly the overhead visible in Figures 10
  and 11), then routes each annotated entity once per tree containing it
  (footnote 5's one-emission-per-tree implementation), attaching the
  dominance list of Section V;
* the **partition function** routes trees to their scheduled reduce tasks;
* the **reduce side** buffers its trees, re-derives block memberships
  locally, and resolves its blocks in the block-schedule order with the
  configured mechanism M — aggressively (distinct budget ``Th``) for
  non-roots, fully for roots — skipping pairs another block is responsible
  for (``SHOULD-RESOLVE``) and pairs already resolved inside the same tree,
  while flushing discovered duplicates incrementally every α cost units.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..blocking.functions import BlockingScheme
from ..data.dataset import Dataset
from ..data.entity import Entity, Pair, cross_pairs_count, pair_key, pairs_count
from ..mapreduce.engine import Cluster
from ..mapreduce.job import MapReduceJob, Mapper, Partitioner, Reducer, TaskContext
from ..mapreduce.types import Event, JobResult
from ..mechanisms.base import DistinctBudget, block_sort_key, resolve_block
from .config import ApproachConfig
from .metablock import METABLOCK_MODES, MetablockPlan, WnpPruner, build_metablock_plan
from .estimation import (
    DuplicateEstimator,
    EstimationModel,
    LearnedEstimator,
    OracleEstimator,
    UniformEstimator,
)
from .balance import BalancePlan, apply_balance
from .redundancy import build_dominance_list, should_resolve
from .schedule import ProgressiveSchedule, generate_schedule
from .statistics import AnnotatedEntity, DatasetStatistics, run_statistics_job

#: Value type shipped to the reduce side: (entity, dominance list).
RoutedEntity = Tuple[Entity, Tuple[int, ...]]


class ResolutionMapper(Mapper):
    """Job-2 mapper: route each entity once per tree containing it.

    When a balance pass sharded a tree's root block, every *remote* shard
    (index >= 1) gets its own copy of the tree's entities under the shard
    routing key — the BlockSplit replication cost, charged like any other
    emission.  Shard 0 rides the tree's normal emission.
    """

    def __init__(self, schedule: ProgressiveSchedule, scheme: BlockingScheme) -> None:
        self._schedule = schedule
        self._scheme = scheme
        routes: Dict[str, List[str]] = {}
        for shard in schedule.shards.values():
            if shard.index > 0:
                routes.setdefault(shard.tree_uid, []).append(shard.key)
        self._shard_routes: Dict[str, Tuple[str, ...]] = {
            uid: tuple(sorted(keys)) for uid, keys in routes.items()
        }

    def setup(self, context: TaskContext) -> None:
        """Charge the progressive-schedule generation performed in the map
        setup (Section III-B) — the constant overhead of our approach."""
        start = context.clock.now
        context.charge(self._schedule.generation_cost)
        context.record_span(
            "schedule-generation", "setup", start, context.clock.now,
            blocks=len(self._schedule.blocks),
        )

    def map(self, record: AnnotatedEntity, context: TaskContext) -> None:
        entity, main_keys = record
        schedule = self._schedule
        scheme = self._scheme
        n = scheme.num_families

        # Per family: the dominance value of the entity's *main* tree.
        family_doms: List[Optional[int]] = []
        for family in scheme.family_order:
            key = main_keys.get(family)
            uid = schedule.main_tree.get((family, key)) if key is not None else None
            family_doms.append(schedule.dominance[uid] if uid is not None else None)

        for index, family in enumerate(scheme.family_order, start=1):
            key = main_keys.get(family)
            if key is None:
                continue
            chain = self._tree_chain(entity, family, key)
            for position, tree_uid in enumerate(chain):
                next_uid = chain[position + 1] if position + 1 < len(chain) else None
                dom_list = build_dominance_list(
                    entity_id=entity.id,
                    own_index=index,
                    num_families=n,
                    family_trees=family_doms,
                    emitted_tree=schedule.dominance[tree_uid],
                    split_descendant=(
                        schedule.dominance[next_uid] if next_uid is not None else None
                    ),
                )
                value = (entity, tuple(dom_list))
                context.emit(tree_uid, value)
                for route in self._shard_routes.get(tree_uid, ()):
                    context.emit(route, value)

    def _tree_chain(self, entity: Entity, family: str, main_key: str) -> List[str]:
        """Trees of ``family`` containing the entity, outermost first:
        the main tree, then every split-off sub-tree, by level."""
        chain: List[str] = []
        main_uid = self._schedule.main_tree.get((family, main_key))
        if main_uid is not None:
            chain.append(main_uid)
        functions = self._scheme.families[family]
        for level, key, uid in self._schedule.split_roots.get(family, ()):  # by level
            if functions[level - 1].key_of(entity) == key:
                chain.append(uid)
        return chain


class SchedulePartitioner(Partitioner):
    """Route each tree to the reduce task the tree schedule assigned."""

    def __init__(self, schedule: ProgressiveSchedule) -> None:
        self._schedule = schedule

    def partition(self, key: str, num_reduce_tasks: int) -> int:
        try:
            return self._schedule.assignment[key]
        except KeyError:
            raise ValueError(
                f"tree {key!r} has no reduce-task assignment in the "
                "schedule; Job-2 mappers must only emit scheduled tree uids"
            ) from None


class ResolutionReducer(Reducer):
    """Job-2 reducer: buffer the task's trees, then resolve its blocks in
    block-schedule order (the shuffle delivers all groups before reduce
    work can begin in Hadoop, so buffering adds no delay)."""

    def __init__(
        self,
        schedule: ProgressiveSchedule,
        config: ApproachConfig,
        pruner: Optional[WnpPruner] = None,
    ) -> None:
        self._schedule = schedule
        self._config = config
        self._pruner = pruner
        self._buffered: Dict[str, List[RoutedEntity]] = {}

    def reduce(
        self, key: str, values: Sequence[RoutedEntity], context: TaskContext
    ) -> None:
        context.charge(context.cost_model.read_record * len(values), "read")
        self._buffered[key] = list(values)

    def cleanup(self, context: TaskContext) -> None:
        members = self._derive_memberships(context)
        order = self._schedule.block_order[context.task_id]
        resolved_in_tree: Dict[str, Set[Pair]] = {}
        for entry in order:
            shard = self._schedule.shards.get(entry)
            if shard is not None:
                # Shard 0 reuses the tree's derived root membership (home
                # task); remote shards got their own routed copies.
                routed = (
                    members.get(shard.block_uid)
                    if shard.index == 0
                    else self._buffered.get(entry)
                )
                if routed:
                    resolve_scheduled_block(
                        self._schedule,
                        self._config,
                        shard.block_uid,
                        routed,
                        resolved_in_tree,
                        context,
                        pair_range=(shard.start, shard.stop),
                        pruner=self._pruner,
                    )
                continue
            if entry not in members:
                continue  # tree produced no routed entities (fully pruned)
            self._resolve_one_block(entry, members[entry], resolved_in_tree, context)

    # ------------------------------------------------------------------

    def _derive_memberships(
        self, context: TaskContext
    ) -> Dict[str, List[RoutedEntity]]:
        """Re-derive each scheduled block's members from the buffered trees
        (footnote 5: sub-block membership is recomputed reduce-side)."""
        members: Dict[str, List[RoutedEntity]] = {}
        for tree_uid, routed in self._buffered.items():
            if tree_uid in self._schedule.shards:
                continue  # remote shard group: consumed whole in cleanup
            root = self._schedule.trees[tree_uid]
            functions = {
                f.level: f for f in self._config.scheme.families[root.family]
            }
            members[root.uid] = routed
            stack = [root]
            while stack:
                block = stack.pop()
                parent_members = members[block.uid]
                for child in block.children:
                    function = functions[child.level]
                    context.charge(
                        context.cost_model.stat_record * len(parent_members)
                    )
                    members[child.uid] = [
                        rv
                        for rv in parent_members
                        if function.key_of(rv[0]) == child.key
                    ]
                    stack.append(child)
        return members

    def _resolve_one_block(
        self,
        block_uid: str,
        routed: List[RoutedEntity],
        resolved_in_tree: Dict[str, Set[Pair]],
        context: TaskContext,
    ) -> None:
        """Resolve one block with mechanism M under the schedule's policy."""
        resolve_scheduled_block(
            self._schedule,
            self._config,
            block_uid,
            routed,
            resolved_in_tree,
            context,
            pruner=self._pruner,
        )


def _cross_source_only(e1: Entity, e2: Entity) -> bool:
    """Clean-clean linkage candidate predicate: both sources are internally
    duplicate-free, so only cross-source pairs can match."""
    return e1.source != e2.source


def resolve_scheduled_block(
    schedule: ProgressiveSchedule,
    config: ApproachConfig,
    block_uid: str,
    routed: List[RoutedEntity],
    resolved_in_tree: Dict[str, Set[Pair]],
    context: TaskContext,
    *,
    pair_range: Optional[Tuple[int, int]] = None,
    pruner: Optional[WnpPruner] = None,
) -> None:
    """Resolve one scheduled block (shared by both routing modes):
    mechanism M, window/Th from the schedule, SHOULD-RESOLVE veto, and
    per-tree skip of pairs already resolved in descendants.

    In linkage mode same-source pairs are rejected by the scenario
    ``pair_filter`` at zero cost; ``pruner`` (weighted node pruning)
    likewise vetoes low-weight pairs for free, with the pruned positions
    still consuming the distinct-pair budget (see
    :func:`~repro.mechanisms.base.resolve_block`).

    ``pair_range`` restricts the resolution to a slice of the raw pair
    stream — a balance shard of an oversized root.  Only roots are ever
    sharded, and roots run to exhaustion (no stream-order-dependent stop
    condition), so shard output is independent of placement.

    Comparisons run through :func:`resolve_block`'s batched kernel path:
    pairs are decided dozens at a time by
    :class:`~repro.similarity.batch.BatchMatcher` and the outcomes replayed
    in stream order, so the ``ok_to_resolve`` veto / ``tree_resolved``
    bookkeeping here observes exactly the scalar sequence of events (both
    are keyed by the entity-id pair, which the driver's same-pair flush
    guard relies on).  Decisions, charges, events and stop points are
    bit-identical to per-pair ``matcher.is_match`` resolution.
    """
    if len(routed) < 2:
        return
    block = schedule.blocks[block_uid]
    estimate = schedule.estimates[block_uid]
    tree_uid = schedule.tree_of_block[block_uid]
    tree_resolved = resolved_in_tree.setdefault(tree_uid, set())

    entities = [entity for entity, _ in routed]
    dom_lists = {entity.id: dom_list for entity, dom_list in routed}
    index = config.scheme.index_of(block.family)
    n = config.scheme.num_families
    sort_attribute = config.sort_attribute(block.family)

    def ok_to_resolve(e1: Entity, e2: Entity) -> bool:
        if pair_key(e1.id, e2.id) in tree_resolved:
            return False
        if not config.redundancy_free:
            return True
        return should_resolve(dom_lists[e1.id], dom_lists[e2.id], index, n)

    def on_resolved(e1: Entity, e2: Entity, is_dup: bool) -> None:
        tree_resolved.add(pair_key(e1.id, e2.id))

    found = 0

    def on_duplicate(e1: Entity, e2: Entity) -> None:
        nonlocal found
        found += 1
        context.counters.increment("driver", "duplicates")
        pair = pair_key(e1.id, e2.id)
        context.record_event("duplicate", pair)
        context.write(pair)

    trace = context.tracing
    span_start = context.clock.now if trace else 0.0
    stop = None if estimate.full else DistinctBudget(estimate.th)
    pair_filter = _cross_source_only if config.mode == "linkage" else None
    stats = resolve_block(
        entities,
        config.mechanism,
        window=estimate.window,
        sort_key=lambda e: block_sort_key(e, sort_attribute),
        matcher=config.matcher,
        cost_model=context.cost_model,
        charge=context.charge,
        on_duplicate=on_duplicate,
        should_resolve=ok_to_resolve,
        pair_filter=pair_filter,
        prune=pruner.keep if pruner is not None else None,
        stop=stop,
        on_resolved=on_resolved,
        pair_range=pair_range,
        charge_compare=lambda units: context.charge(units, "compare"),
    )
    if stats.filtered:
        context.counters.increment("resolve", "pairs_filtered", stats.filtered)
    if stats.pruned:
        context.counters.increment("resolve", "pairs_pruned", stats.pruned)
    if pair_range is None:
        context.counters.increment("driver", "blocks_resolved")
        span_name = f"resolve:{block_uid}"
    else:
        context.counters.increment("driver", "shards_resolved")
        span_name = f"resolve:{block_uid}@{pair_range[0]}-{pair_range[1]}"
    if trace:
        context.record_span(
            span_name, "block", span_start, context.clock.now,
            block=block_uid, entities=len(entities), duplicates=found,
        )


class BlockRoutingMapper(ResolutionMapper):
    """The naive Job-2 mapper (Section III-B before footnote 5): one
    key-value pair per *block* containing the entity, keyed by the block's
    sequence value ``SQ``."""

    def map(self, record: AnnotatedEntity, context: TaskContext) -> None:
        entity, main_keys = record
        schedule = self._schedule
        scheme = self._scheme
        n = scheme.num_families

        family_doms: List[Optional[int]] = []
        for family in scheme.family_order:
            key = main_keys.get(family)
            uid = schedule.main_tree.get((family, key)) if key is not None else None
            family_doms.append(schedule.dominance[uid] if uid is not None else None)

        for index, family in enumerate(scheme.family_order, start=1):
            key = main_keys.get(family)
            if key is None:
                continue
            chain = self._tree_chain(entity, family, key)
            functions = {f.level: f for f in scheme.families[family]}
            for position, tree_uid in enumerate(chain):
                next_uid = chain[position + 1] if position + 1 < len(chain) else None
                dom_list = tuple(
                    build_dominance_list(
                        entity_id=entity.id,
                        own_index=index,
                        num_families=n,
                        family_trees=family_doms,
                        emitted_tree=schedule.dominance[tree_uid],
                        split_descendant=(
                            schedule.dominance[next_uid] if next_uid is not None else None
                        ),
                    )
                )
                # Walk the scheduled tree top-down; emit at every block
                # whose key matches the entity's key at that level.
                node = schedule.trees[tree_uid]
                while node is not None:
                    context.emit(schedule.sequence[node.uid], (entity, dom_list))
                    node = next(
                        (
                            child
                            for child in node.children
                            if functions[child.level].key_of(entity) == child.key
                        ),
                        None,
                    )


class SequencePartitioner(Partitioner):
    """Route an ``SQ`` key to its reduce task (``SQ // stride``)."""

    def __init__(self, schedule: ProgressiveSchedule) -> None:
        self._stride = schedule.sequence_stride

    def partition(self, key: int, num_reduce_tasks: int) -> int:
        return key // self._stride


class BlockRoutingReducer(Reducer):
    """The naive Job-2 reducer: called once per block, in sequence-value
    order (the engine sorts groups by key), resolving immediately."""

    def __init__(
        self,
        schedule: ProgressiveSchedule,
        config: ApproachConfig,
        pruner: Optional[WnpPruner] = None,
    ) -> None:
        self._schedule = schedule
        self._config = config
        self._pruner = pruner
        self._uid_of_sequence = {sq: uid for uid, sq in schedule.sequence.items()}
        self._resolved_in_tree: Dict[str, Set[Pair]] = {}

    def reduce(
        self, key: int, values: Sequence[RoutedEntity], context: TaskContext
    ) -> None:
        context.charge(context.cost_model.read_record * len(values), "read")
        block_uid = self._uid_of_sequence[key]
        resolve_scheduled_block(
            self._schedule,
            self._config,
            block_uid,
            list(values),
            self._resolved_in_tree,
            context,
            pruner=self._pruner,
        )


# ---------------------------------------------------------------------------
# End-to-end driver
# ---------------------------------------------------------------------------


@dataclass
class ProgressiveResult:
    """Everything one end-to-end run produces.

    ``duplicate_events`` are ``(global time, pair)`` occurrences across both
    phases, already deduplicated to the first discovery of each pair.
    """

    dataset: Dataset
    stats: DatasetStatistics
    schedule: ProgressiveSchedule
    job1: JobResult
    job2: JobResult
    duplicate_events: List[Event]
    balance: Optional["BalancePlan"] = None
    metablock: Optional[MetablockPlan] = None

    @property
    def total_time(self) -> float:
        """End of the second job (start of Job 1 is time zero)."""
        return self.job2.end_time

    @cached_property
    def found_pairs(self) -> Set[Pair]:
        """All distinct pairs reported as duplicates (computed once; the
        event list is never mutated after construction)."""
        return {event.payload for event in self.duplicate_events}


class ProgressiveER:
    """The parallel progressive ER approach, end to end.

    Args:
        config: dataset-specific configuration (see
            :func:`repro.core.config.citeseer_config` /
            :func:`~repro.core.config.books_config`).
        cluster: the simulated Hadoop cluster to run on.
        strategy: tree scheduler — ``"ours"``, ``"nosplit"`` or ``"lpt"``
            (Section VI-B2's comparison).
        seed: seed for training-sample selection and cost-factor sampling.
        balance: post-pass placement strategy — ``"slack"`` (the paper
            baseline: schedule untouched), ``"blocksplit"``, the global
            ``"pairrange"``, or the deprecated ``"pairrange-tree"`` alias
            (see :mod:`repro.core.balance`).
        metablock: meta-blocking pre-pass between blocking and
            scheduling — ``"off"``, ``"bf"`` (block filtering) or
            ``"wnp"`` (weighted node pruning); knobs on the config
            (``metablock_ratio`` / ``metablock_weighting``).  See
            :mod:`repro.core.metablock`.
    """

    def __init__(
        self,
        config: ApproachConfig,
        cluster: Cluster,
        *,
        strategy: str = "ours",
        seed: int = 0,
        balance: str = "slack",
        metablock: str = "off",
    ) -> None:
        self.config = config
        self.cluster = cluster
        self.strategy = strategy
        self.seed = seed
        self.balance = balance
        self.metablock = metablock
        if balance in ("blocksplit", "pairrange") and config.routing == "block":
            raise ValueError(
                f"balance={balance!r} requires tree routing; the naive "
                "block-routing mapper cannot replicate shard groups"
            )
        if metablock not in METABLOCK_MODES:
            raise ValueError(f"unknown metablock mode {metablock!r}")

    def run(self, dataset: Dataset) -> ProgressiveResult:
        """Execute Job 1, the meta-blocking pre-pass (when enabled),
        schedule generation and Job 2 on ``dataset``."""
        mb_plan: Optional[MetablockPlan] = None
        if self.metablock != "off":
            mb_plan = build_metablock_plan(
                dataset.entities,
                self.config.scheme,
                self.metablock,
                ratio=self.config.metablock_ratio,
                weighting=self.config.metablock_weighting,
            )
        annotated, stats, job1 = run_statistics_job(
            self.cluster,
            dataset,
            self.config.scheme,
            pruned=mb_plan.pruned if mb_plan is not None else None,
        )
        estimator = self._build_estimator(dataset)
        model = EstimationModel(
            self.config,
            self.cluster.cost_model,
            estimator,
            len(dataset),
            avg_cost_factor=self._average_cost_factor(dataset),
            pair_scales=self._pair_scales(annotated, stats, mb_plan),
        )
        schedule = generate_schedule(
            stats,
            model,
            self.config,
            self.cluster.num_reduce_tasks,
            strategy=self.strategy,
        )
        plan = apply_balance(schedule, strategy=self.balance)
        if self.cluster.tracer is not None:
            self.cluster.tracer.record_instant(
                "balance-plan",
                "setup",
                job1.end_time,
                job="progressive-resolution",
                strategy=plan.strategy,
                shards=len(plan.shards),
                split_blocks=len(plan.split_blocks),
                moved_trees=plan.moved_trees,
                planned_makespan_before=plan.before.max,
                planned_makespan_after=plan.after.max,
            )
        job2 = self._run_resolution_job(
            annotated, schedule, job1.end_time,
            pruner=mb_plan.pruner if mb_plan is not None else None,
        )
        # Plan statistics are pure functions of the deterministic schedule,
        # so merging them into the job counters keeps backend parity.
        for name, value in plan.counter_items().items():
            job2.counters.increment("balance", name, value)
        if mb_plan is not None:
            for name, value in mb_plan.counter_items().items():
                job2.counters.increment("metablock", name, value)
        events = _first_discoveries(job2.events)
        return ProgressiveResult(
            dataset=dataset,
            stats=stats,
            schedule=schedule,
            job1=job1,
            job2=job2,
            duplicate_events=events,
            balance=plan,
            metablock=mb_plan,
        )

    # ------------------------------------------------------------------

    def _pair_scales(
        self,
        annotated: Sequence[AnnotatedEntity],
        stats: DatasetStatistics,
        mb_plan: Optional[MetablockPlan],
    ) -> Optional[Dict[str, float]]:
        """Per-block candidate-pair fractions for the estimation model.

        In linkage mode a block of ``n_a`` source-``a`` and ``n_b``
        source-``b`` entities only ever compares its ``n_a * n_b`` cross
        pairs; under weighted node pruning only the plan's keep ratio of
        a block's pairs survives.  Each root's fraction (factors multiply
        when both apply) is assigned to its whole subtree — sub-block
        composition tracks its root's closely, and the estimates only
        steer scheduling, never correctness.
        """
        linkage = self.config.mode == "linkage"
        wnp = mb_plan is not None and mb_plan.mode == "wnp"
        if not linkage and not wnp:
            return None
        source_counts: Dict[Tuple[str, str], Dict[Optional[str], int]] = {}
        if linkage:
            for entity, keys in annotated:
                for family, key in keys.items():
                    if key is None:
                        continue
                    counts = source_counts.setdefault((family, key), {})
                    counts[entity.source] = counts.get(entity.source, 0) + 1
        scales: Dict[str, float] = {}
        for family, roots in stats.roots.items():
            for root in roots:
                scale = 1.0
                if linkage:
                    counts = source_counts.get((family, root.key))
                    if counts:
                        total = pairs_count(sum(counts.values()))
                        if total:
                            scale *= cross_pairs_count(counts.values()) / total
                if wnp:
                    scale *= mb_plan.keep_ratios.get((family, root.key), 1.0)
                if scale != 1.0:
                    for block in root.subtree():
                        scales[block.uid] = scale
        return scales or None

    def _build_estimator(self, dataset: Dataset) -> DuplicateEstimator:
        """The duplicate estimator selected by the configuration."""
        kind = self.config.estimator
        if kind == "oracle":
            return OracleEstimator().fit(dataset, self.config.scheme)
        training = dataset.sample(self.config.train_fraction, seed=self.seed)
        learned = LearnedEstimator().fit(training, self.config.scheme)
        if kind == "learned":
            return learned
        # "uniform": keep the overall density, erase the size-dependence.
        return UniformEstimator(learned.probability("*", -1, 1.0))

    def _average_cost_factor(self, dataset: Dataset, samples: int = 200) -> float:
        """Mean comparison-cost factor over random pairs (feeds CostP)."""
        if len(dataset) < 2:
            return 1.0
        rng = random.Random(self.seed + 1)
        total = 0.0
        for _ in range(samples):
            e1, e2 = rng.sample(dataset.entities, 2)
            total += self.config.matcher.comparison_cost_factor(e1, e2)
        return total / samples

    def _run_resolution_job(
        self,
        annotated: Sequence[AnnotatedEntity],
        schedule: ProgressiveSchedule,
        start_time: float,
        *,
        pruner: Optional[WnpPruner] = None,
    ) -> JobResult:
        if self.config.routing == "block":
            job = MapReduceJob(
                mapper_factory=lambda: BlockRoutingMapper(schedule, self.config.scheme),
                reducer_factory=lambda: BlockRoutingReducer(
                    schedule, self.config, pruner
                ),
                partitioner=SequencePartitioner(schedule),
                alpha=self.config.alpha,
                name="progressive-resolution-naive",
            )
        else:
            job = MapReduceJob(
                mapper_factory=lambda: ResolutionMapper(schedule, self.config.scheme),
                reducer_factory=lambda: ResolutionReducer(
                    schedule, self.config, pruner
                ),
                partitioner=SchedulePartitioner(schedule),
                alpha=self.config.alpha,
                name="progressive-resolution",
            )
        return self.cluster.run_job(job, list(annotated), start_time=start_time)


def _first_discoveries(events: Sequence[Event]) -> List[Event]:
    """Keep only the first event per duplicate pair, in time order."""
    seen: Set[Pair] = set()
    result: List[Event] = []
    for event in sorted(
        (e for e in events if e.kind == "duplicate"), key=lambda e: e.time
    ):
        if event.payload in seen:
            continue
        seen.add(event.payload)
        result.append(event)
    return result


__all__ = [
    "ResolutionMapper",
    "SchedulePartitioner",
    "ResolutionReducer",
    "BlockRoutingMapper",
    "SequencePartitioner",
    "BlockRoutingReducer",
    "resolve_scheduled_block",
    "ProgressiveER",
    "ProgressiveResult",
]
