"""Duplicate and cost estimation (paper Sections IV-B and VI-A4).

For every block the schedule generator needs:

* ``Dup(X^i_j)`` — duplicates the mechanism is expected to find when the
  block is resolved partially (Equation 2), built on a per-function
  estimate ``d(.)`` of the block's covered duplicate pairs;
* ``Cost(X^i_j)`` — Equation 3 for non-roots (``CostA + CostP``) and
  Equation 5 for roots (full resolution minus work already done in
  descendants), with ``Dis`` and ``Remain`` from Equation 4;
* ``Util = Dup / Cost`` — the block-priority measure.

``d(.)`` follows Section VI-A4: ``d = Prob(|X|) · Pairs(|X|)`` where
``Prob`` is learned from a training dataset as a function of the block's
size *fraction* of the dataset, binned into variable-size sub-ranges
(smaller blocks have higher duplicate density).  Oracle and uniform
estimators are provided as ablation hooks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..blocking.blocker import build_forests
from ..blocking.blocks import Block
from ..blocking.functions import BlockingScheme
from ..data.dataset import Dataset
from ..data.entity import pair_key, pairs_count
from ..mapreduce.clock import CostModel
from ..mechanisms.base import Mechanism, window_pairs_count
from .config import ApproachConfig, LevelPolicy

#: Upper bounds of the size-fraction sub-ranges used by the learned model.
FRACTION_BINS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)


class DuplicateEstimator(ABC):
    """``d(.)``: estimated covered duplicate pairs of a block."""

    @abstractmethod
    def estimate(self, block: Block, cov: int, dataset_size: int) -> float:
        """Estimate the covered duplicates of ``block`` (clamped to ``cov``)."""


class LearnedEstimator(DuplicateEstimator):
    """The paper's learned size-fraction probability model.

    ``fit`` builds the training dataset's forests, measures the true
    *covered*-duplicate probability of each block — a pair counts only if
    its entities share no main block of a dominating family, since those
    pairs are another tree's responsibility and resolving this block will
    never surface them — and aggregates it per ``(family, level)`` and
    fraction bin.  Lookup falls back from ``(family, level)`` to ``family``
    to the global bin when a bin has no training mass, and finally to the
    global covered-duplicate density.
    """

    def __init__(self) -> None:
        self._probs: Dict[Tuple[str, int, int], Tuple[float, float]] = {}
        self._global_density = 0.0
        self._fitted = False

    def fit(self, training: Dataset, scheme: BlockingScheme) -> "LearnedEstimator":
        """Learn bin probabilities from a labeled training dataset."""
        if not training.has_ground_truth:
            raise ValueError("the training dataset needs ground-truth clusters")
        forests = build_forests(training, scheme)
        true_pairs = training.true_pairs
        size = len(training)
        total_dups = 0.0
        total_pairs = 0.0
        for family, forest in forests.items():
            dominating = scheme.family_order[: scheme.index_of(family) - 1]
            signatures = _main_key_signatures(training, scheme, dominating)
            for block in forest.blocks():
                dups, pairs = _covered_counts(block, true_pairs, signatures)
                if pairs == 0:
                    continue
                bin_index = _fraction_bin(block.size / size)
                for key in (
                    (family, block.level, bin_index),
                    (family, -1, bin_index),
                    ("*", -1, bin_index),
                ):
                    dup_acc, pair_acc = self._probs.get(key, (0.0, 0.0))
                    self._probs[key] = (dup_acc + dups, pair_acc + pairs)
                total_dups += dups
                total_pairs += pairs
        self._global_density = total_dups / total_pairs if total_pairs else 0.0
        self._fitted = True
        return self

    def probability(self, family: str, level: int, fraction: float) -> float:
        """``Prob(|X|)``: covered-duplicate probability for a block of the
        given family/level/size fraction."""
        if not self._fitted:
            raise RuntimeError("LearnedEstimator.fit was never called")
        bin_index = _fraction_bin(fraction)
        for key in ((family, level, bin_index), (family, -1, bin_index), ("*", -1, bin_index)):
            dups, pairs = self._probs.get(key, (0.0, 0.0))
            if pairs > 0:
                return dups / pairs
        return self._global_density

    def estimate(self, block: Block, cov: int, dataset_size: int) -> float:
        prob = self.probability(block.family, block.level, block.size / dataset_size)
        return prob * cov


class OracleEstimator(DuplicateEstimator):
    """Ablation: exact per-block *covered*-duplicate counts from the
    ground truth (the quantity ``d(.)`` is defined to estimate)."""

    def __init__(self) -> None:
        self._dups: Dict[str, int] = {}

    def fit(self, dataset: Dataset, scheme: BlockingScheme) -> "OracleEstimator":
        """Count the covered true duplicate pairs of every block."""
        forests = build_forests(dataset, scheme)
        true_pairs = dataset.true_pairs
        for family, forest in forests.items():
            dominating = scheme.family_order[: scheme.index_of(family) - 1]
            signatures = _main_key_signatures(dataset, scheme, dominating)
            for block in forest.blocks():
                dups, _ = _covered_counts(block, true_pairs, signatures)
                self._dups[block.uid] = dups
        return self

    def estimate(self, block: Block, cov: int, dataset_size: int) -> float:
        return min(float(cov), float(self._dups.get(block.uid, 0)))


class UniformEstimator(DuplicateEstimator):
    """Ablation: a single duplicate probability for every block, erasing
    the size-dependence the learned model captures."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability

    def estimate(self, block: Block, cov: int, dataset_size: int) -> float:
        return self.probability * cov


def _main_key_signatures(dataset: Dataset, scheme: BlockingScheme, dominating):
    """Entity id -> tuple of main keys under the dominating families."""
    mains = [scheme.main_function(f) for f in dominating]
    return {
        e.id: tuple(main.key_of(e) for main in mains) for e in dataset.entities
    }


def _covered_counts(block: Block, true_pairs, signatures) -> Tuple[int, int]:
    """(covered duplicate pairs, covered pairs) of a block.

    A pair is *covered* by this block's family when its entities share no
    main block of a dominating family (Section IV-A).
    """
    ids = block.entity_ids
    dups = 0
    pairs = 0
    for i in range(len(ids)):
        sig_i = signatures[ids[i]]
        for j in range(i + 1, len(ids)):
            sig_j = signatures[ids[j]]
            if any(a is not None and a == b for a, b in zip(sig_i, sig_j)):
                continue  # another family's responsibility
            pairs += 1
            if pair_key(ids[i], ids[j]) in true_pairs:
                dups += 1
    return dups, pairs


def _fraction_bin(fraction: float) -> int:
    """Index of the size-fraction sub-range containing ``fraction``."""
    return min(bisect_left(FRACTION_BINS, fraction), len(FRACTION_BINS) - 1)


# ---------------------------------------------------------------------------


@dataclass
class BlockEstimate:
    """All per-block values the schedule generator works with.

    ``full`` marks blocks resolved to stream exhaustion (roots — including
    roots created by tree splits).
    """

    cov: float
    d: float
    frac: float
    th: int
    window: int
    dup: float = 0.0
    dis: float = 0.0
    cost_a: float = 0.0
    cost_p: float = 0.0
    cost: float = 1.0
    util: float = 0.0
    full: bool = False

    def refresh_util(self) -> None:
        """Recompute ``Util = Dup / Cost``."""
        self.util = self.dup / self.cost if self.cost > 0 else 0.0


class EstimationModel:
    """Computes and maintains :class:`BlockEstimate` values for all blocks.

    The model is *mutable with respect to tree splits*: when the schedule
    generator detaches a sub-tree it calls :meth:`apply_split`, which
    updates the estimates of the split root and its former parent exactly
    as Section IV-C2 prescribes.
    """

    def __init__(
        self,
        config: ApproachConfig,
        cost_model: CostModel,
        estimator: DuplicateEstimator,
        dataset_size: int,
        *,
        avg_cost_factor: float = 1.0,
        pair_scales: Optional[Dict[str, float]] = None,
    ) -> None:
        self.config = config
        self.cost_model = cost_model
        self.estimator = estimator
        self.dataset_size = dataset_size
        self.pair_cost = cost_model.compare * avg_cost_factor
        #: Per-block fraction of raw pairs that are actual candidates —
        #: the cross-source fraction in clean-clean linkage and/or the
        #: meta-blocking keep ratio.  Scaling ``cov`` by it propagates
        #: through Equations 2-5 (``d``, ``Remain``, ``CostP``) and —
        #: since ``CostF`` multiplies the reachable pairs by
        #: ``cov / total`` — shrinks full-resolution costs to the pairs
        #: the mechanism will really charge, keeping PairRange's
        #: uniform-per-position load model accurate.
        self.pair_scales = pair_scales or {}
        self.estimates: Dict[str, BlockEstimate] = {}

    # -- initial bottom-up pass -----------------------------------------

    def estimate_tree(self, root: Block, coverage: Dict[str, int]) -> None:
        """Estimate every block of ``root``'s tree, children before parents."""
        for block in root.subtree_bottom_up():
            self._estimate_block(block, float(coverage[block.uid]))

    def _estimate_block(self, block: Block, cov: float) -> None:
        cov *= self.pair_scales.get(block.uid, 1.0)
        levels = self.config.levels
        estimate = BlockEstimate(
            cov=cov,
            d=self.estimator.estimate(block, int(cov), self.dataset_size),
            frac=levels.frac_of(block),
            th=levels.threshold_of(block),
            window=levels.window_of(block),
            full=block.is_root,
        )
        self.estimates[block.uid] = estimate
        self._recompute(block)

    # -- recomputation (shared by the initial pass and splits) -----------

    def _recompute(self, block: Block) -> None:
        """Recompute Dup/Dis/Cost/Util of ``block`` from its current
        children's estimates (Equations 2-5)."""
        est = self.estimates[block.uid]
        children = [self.estimates[c.uid] for c in block.children]
        descendants = [self.estimates[d.uid] for d in block.descendants()]

        est.dup = max(0.0, est.frac * est.d - sum(c.frac * c.d for c in children))
        est.cost_a = self.config.mechanism.additional_cost(
            block.size, est.window, self.cost_model
        )
        if est.full:
            est.dis = 0.0
            est.cost_p = 0.0
            cost_f = self._full_resolution_cost(block, est)
            est.cost = max(
                est.cost_a,
                est.cost_a + cost_f - sum(d.cost_p for d in descendants),
            )
        else:
            remain = max(
                0.0, est.cov - est.d - sum(d.dis for d in descendants)
            )
            est.dis = min(float(est.th), remain)
            est.cost_p = (est.dup + est.dis) * self.pair_cost
            est.cost = est.cost_a + est.cost_p
        est.refresh_util()

    def _full_resolution_cost(self, block: Block, est: BlockEstimate) -> float:
        """``CostF``: resolving the block to exhaustion (covered pairs only
        — uncovered shared pairs are skipped by SHOULD-RESOLVE at ~zero
        cost, so they are excluded, as Section IV-A prescribes)."""
        total = block.total_pairs
        covered_ratio = est.cov / total if total > 0 else 0.0
        reachable = window_pairs_count(block.size, est.window)
        return reachable * covered_ratio * self.pair_cost

    # -- tree splits -------------------------------------------------------

    def apply_split(self, parent: Block, child: Block) -> None:
        """Detach ``child``'s sub-tree and update both estimates
        (Section IV-C2's split strategy).

        The child becomes a root resolved fully: ``Frac`` becomes 1, its
        cost switches to Equation 5.  The parent loses the child's covered
        pairs and the *increase* of the child's duplicate estimate.
        """
        child_est = self.estimates[child.uid]
        parent_est = self.estimates[parent.uid]
        old_child_dup = child_est.dup

        parent.detach_child(child)

        levels = self.config.levels
        child_est.frac = 1.0
        child_est.full = True
        child_est.window = levels.root_window
        self._recompute(child)

        parent_est.cov = max(0.0, parent_est.cov - child_est.cov)
        dup_increase = max(0.0, child_est.dup - old_child_dup)
        # Recompute the parent from Equation 5 with the reduced descendant
        # set and coverage, then apply the paper's duplicate adjustment.
        old_parent_dup = parent_est.dup
        self._recompute(parent)
        parent_est.dup = max(0.0, old_parent_dup - dup_increase)
        parent_est.refresh_util()

    def split_cost_preview(self, parent: Block, kept_children: Sequence[Block]) -> float:
        """``SHOULD-SPLIT`` support: the parent's cost if its child set were
        reduced to ``kept_children`` (everything else split off), without
        mutating any state."""
        est = self.estimates[parent.uid]
        kept = {c.uid for c in kept_children}
        removed_cov = sum(
            self.estimates[c.uid].cov for c in parent.children if c.uid not in kept
        )
        cov = max(0.0, est.cov - removed_cov)
        descendants_cost_p = 0.0
        for child in parent.children:
            if child.uid not in kept:
                continue
            for node in child.subtree():
                descendants_cost_p += self.estimates[node.uid].cost_p
        total = parent.total_pairs
        covered_ratio = cov / total if total > 0 else 0.0
        reachable = window_pairs_count(parent.size, est.window)
        cost_f = reachable * covered_ratio * self.pair_cost
        return max(est.cost_a, est.cost_a + cost_f - descendants_cost_p)


__all__ = [
    "DuplicateEstimator",
    "LearnedEstimator",
    "OracleEstimator",
    "UniformEstimator",
    "BlockEstimate",
    "EstimationModel",
    "FRACTION_BINS",
]
