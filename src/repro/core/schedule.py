"""Progressive schedule generation (paper Section IV-C, Figure 6).

Produces a :class:`ProgressiveSchedule` from the Job-1 statistics and the
estimation model:

1. **Block elimination** ([17]): non-root blocks whose expected duplicate
   yield is non-positive are spliced out of their trees (their children
   re-attach to the grandparent) — resolving them would be pure overhead.
2. **Identify/split overflowed trees**: blocks are sorted into the utility
   list ``SL`` and bucketed by the cost vector ``C`` (scaled by the number
   of reduce tasks ``r``); a tree whose per-bucket cost ``VC`` exceeds a
   bucket's width cannot be load-balanced, so up to ``b`` such trees are
   split per iteration with the greedy ``SPLIT-TREE`` (children kept in
   utility order, split off only when keeping them would still overflow).
3. **Partition trees** over the reduce tasks greedily by maximum weighted
   slack ``SK(R)`` (ours / NoSplit) or by the classic LPT rule (baseline).
4. **Block schedules**: each task's blocks sorted by utility, with a
   child-before-parent fix (a parent must not be resolved before its
   children, or their work could not be skipped).

Strategies ``"ours"``, ``"nosplit"`` and ``"lpt"`` correspond to the three
tree schedulers compared in Section VI-B2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..blocking.blocks import Block

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (balance imports us)
    from .balance import BlockShard
from ..mapreduce.clock import CostModel
from .config import ApproachConfig
from .estimation import BlockEstimate, EstimationModel
from .responsibility import compute_coverage
from .statistics import DatasetStatistics

_EPS = 1e-9
_MAX_SPLIT_ITERATIONS = 100
_MAX_ELIMINATION_PASSES = 10


@dataclass
class ProgressiveSchedule:
    """The complete output of schedule generation.

    Attributes:
        num_tasks: number of reduce tasks ``r``.
        trees: tree-root uid -> root block (structure after elimination and
            splits).
        estimates: block uid -> final :class:`BlockEstimate`.
        assignment: tree uid -> reduce-task index (the *tree schedule*).
        block_order: per task, the ordered block uids (the *block
            schedules*).
        dominance: tree uid -> unique dominance value ``Dom(T)``.
        tree_of_block: block uid -> owning tree uid.
        main_tree: (family, main key) -> tree uid for level-1 roots.
        split_roots: family -> [(level, key, tree uid)] for split-off
            trees, sorted by level.
        sequence: block uid -> sequence value ``SQ`` (monotone within each
            task's block schedule; ``SQ // stride`` is the task index).
        sequence_stride: the per-task ``SQ`` range width.
        cost_vector: the cost vector ``C`` actually used (possibly
            auto-extended).
        weights: ``W(c_i)`` per interval.
        generation_cost: virtual cost charged per Job-2 map task for
            generating this schedule.
        shards: routing key -> :class:`~repro.core.balance.BlockShard` for
            pair-range shards of oversized root blocks; empty unless a
            non-``slack`` balance strategy split something (see
            :func:`repro.core.balance.apply_balance`).
    """

    num_tasks: int
    trees: Dict[str, Block]
    estimates: Dict[str, BlockEstimate]
    assignment: Dict[str, int]
    block_order: List[List[str]]
    dominance: Dict[str, int]
    tree_of_block: Dict[str, str]
    main_tree: Dict[Tuple[str, str], str]
    split_roots: Dict[str, List[Tuple[int, str, str]]]
    sequence: Dict[str, int]
    sequence_stride: int
    cost_vector: List[float]
    weights: List[float]
    generation_cost: float
    blocks: Dict[str, Block] = field(default_factory=dict)
    shards: Dict[str, "BlockShard"] = field(default_factory=dict)

    def task_of_tree(self, tree_uid: str) -> int:
        """Reduce task responsible for a tree."""
        return self.assignment[tree_uid]

    @property
    def num_trees(self) -> int:
        return len(self.trees)

    @property
    def num_blocks(self) -> int:
        return len(self.tree_of_block)


class _CostTracker:
    """Accumulates the virtual cost of generating the schedule (charged in
    every Job-2 map task's setup, Section III-B)."""

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self.total = 0.0

    def blocks_processed(self, count: int) -> None:
        self.total += self._cost_model.schedule_block * count

    def sorted_items(self, count: int) -> None:
        self.total += self._cost_model.sort_cost(count)


def generate_schedule(
    stats: DatasetStatistics,
    model: EstimationModel,
    config: ApproachConfig,
    num_tasks: int,
    *,
    strategy: str = "ours",
) -> ProgressiveSchedule:
    """Run the full Figure-6 pipeline and return the schedule.

    ``strategy``: ``"ours"`` (split + slack partition), ``"nosplit"``
    (slack partition without splits), ``"lpt"`` (longest-processing-time
    partition without splits).
    """
    if num_tasks < 1:
        raise ValueError(f"need at least one reduce task, got {num_tasks}")
    if strategy not in ("ours", "nosplit", "lpt"):
        raise ValueError(f"unknown strategy {strategy!r}")

    tracker = _CostTracker(model.cost_model)
    coverage = compute_coverage(stats)
    roots: List[Block] = []
    for family in stats.scheme.family_order:
        roots.extend(stats.roots.get(family, []))
    for root in roots:
        model.estimate_tree(root, coverage)
        tracker.blocks_processed(sum(1 for _ in root.subtree()))

    _eliminate_blocks(roots, model, coverage, tracker)

    trees: Dict[str, Block] = {root.uid: root for root in roots}
    cost_vector, weights = _derive_cost_vector(trees, model, config, num_tasks)

    if strategy == "ours":
        cost_vector, weights = _split_overflowed_trees(
            trees, model, config, num_tasks, cost_vector, weights, tracker
        )

    blocks = _all_blocks(trees)
    sl = _utility_sorted(blocks, model.estimates)
    tracker.sorted_items(len(sl))
    buckets, cost_vector, weights = _bucketize(
        sl, model, cost_vector, weights, num_tasks, config
    )
    widths = _bucket_widths(cost_vector)
    vc = {
        uid: _subtree_vc(root, buckets, model, len(cost_vector))
        for uid, root in trees.items()
    }

    if strategy == "lpt":
        assignment = _partition_lpt(trees, model, num_tasks)
    else:
        assignment = _partition_by_slack(trees, vc, weights, widths, num_tasks)
    tracker.sorted_items(len(trees))

    block_order = build_block_orders(trees, model.estimates, assignment, num_tasks)
    for order in block_order:
        tracker.sorted_items(len(order))

    return _assemble_schedule(
        trees=trees,
        model=model,
        assignment=assignment,
        block_order=block_order,
        num_tasks=num_tasks,
        cost_vector=cost_vector,
        weights=weights,
        generation_cost=tracker.total,
    )


# ---------------------------------------------------------------------------
# Block elimination
# ---------------------------------------------------------------------------


def _eliminate_blocks(
    roots: Sequence[Block],
    model: EstimationModel,
    coverage: Dict[str, int],
    tracker: _CostTracker,
    *,
    threshold: float = _EPS,
) -> None:
    """Splice out non-root blocks with non-positive expected duplicates.

    A block with ``Dup <= 0`` is pure overhead: the mechanism is expected
    to find nothing its children will not already have found.  Children of
    an eliminated block re-attach to its parent, and the tree is
    re-estimated (level roles — leaf/mid — may have changed).
    """
    for root in roots:
        for _ in range(_MAX_ELIMINATION_PASSES):
            victim = next(
                (
                    block
                    for block in root.descendants()
                    if model.estimates[block.uid].dup <= threshold
                ),
                None,
            )
            if victim is None:
                break
            parent = victim.parent
            assert parent is not None  # descendants are never roots
            parent.detach_child(victim)
            for child in list(victim.children):
                victim.detach_child(child)
                parent.add_child(child)
            model.estimate_tree(root, coverage)
            tracker.blocks_processed(sum(1 for _ in root.subtree()))


# ---------------------------------------------------------------------------
# SL, buckets and cost vectors
# ---------------------------------------------------------------------------


def _all_blocks(trees: Dict[str, Block]) -> List[Block]:
    """All blocks of all trees."""
    blocks: List[Block] = []
    for root in trees.values():
        blocks.extend(root.subtree())
    return blocks


def _utility_sorted(
    blocks: Sequence[Block], estimates: Dict[str, BlockEstimate]
) -> List[Block]:
    """``SL``: blocks by non-increasing utility (uid tie-break)."""
    return sorted(
        blocks, key=lambda b: (-estimates[b.uid].util, b.uid)
    )


def _derive_cost_vector(
    trees: Dict[str, Block],
    model: EstimationModel,
    config: ApproachConfig,
    num_tasks: int,
) -> Tuple[List[float], List[float]]:
    """The cost vector ``C`` (per reduce task) and its weights ``W``.

    A user-supplied vector is respected; otherwise ``num_intervals`` equal
    intervals spanning the estimated per-task share of the total cost.
    """
    if config.cost_vector is not None:
        vector = list(config.cost_vector)
        if vector != sorted(vector) or any(c <= 0 for c in vector):
            raise ValueError("cost_vector must be positive and increasing")
    else:
        total = sum(
            model.estimates[b.uid].cost for b in _all_blocks(trees)
        )
        per_task = max(total / num_tasks, 1.0)
        k = config.num_intervals
        vector = [per_task * (i + 1) / k for i in range(k)]
    weights = [config.weighting(i, len(vector)) for i in range(len(vector))]
    return vector, weights


def _bucketize(
    sl: Sequence[Block],
    model: EstimationModel,
    cost_vector: List[float],
    weights: List[float],
    num_tasks: int,
    config: ApproachConfig,
) -> Tuple[Dict[str, int], List[float], List[float]]:
    """Assign every block in ``SL`` to its cost bucket.

    The ``i``-th bucket holds the blocks resolvable during the
    ``(c_{i-1} * r, c_i * r]`` units of cumulative cost.  The vector is
    auto-extended (constant step, minimum weight) when the total cost
    exceeds ``c_|C| * r`` — e.g. after splits increased total cost.
    """
    vector = list(cost_vector)
    wts = list(weights)
    step = vector[-1] - vector[-2] if len(vector) > 1 else vector[-1]
    buckets: Dict[str, int] = {}
    cumulative = 0.0
    index = 0
    for block in sl:
        cumulative += model.estimates[block.uid].cost
        while cumulative > vector[index] * num_tasks + _EPS:
            if index + 1 == len(vector):
                vector.append(vector[-1] + step)
                wts.append(wts[-1])  # weights stay non-increasing
            index += 1
        buckets[block.uid] = index
    return buckets, vector, wts


def _bucket_widths(cost_vector: Sequence[float]) -> List[float]:
    """``c_i - c_{i-1}`` per interval (``c_0 = 0``)."""
    widths = [cost_vector[0]]
    for i in range(1, len(cost_vector)):
        widths.append(cost_vector[i] - cost_vector[i - 1])
    return widths


def _subtree_vc(
    block: Block,
    buckets: Dict[str, int],
    model: EstimationModel,
    num_buckets: int,
) -> List[float]:
    """``VC``: per-bucket total cost of a (sub-)tree's blocks."""
    vc = [0.0] * num_buckets
    for node in block.subtree():
        vc[buckets[node.uid]] += model.estimates[node.uid].cost
    return vc


# ---------------------------------------------------------------------------
# Identify / split overflowed trees
# ---------------------------------------------------------------------------


def _split_overflowed_trees(
    trees: Dict[str, Block],
    model: EstimationModel,
    config: ApproachConfig,
    num_tasks: int,
    cost_vector: List[float],
    weights: List[float],
    tracker: _CostTracker,
) -> Tuple[List[float], List[float]]:
    """The GENERATE-SCHEDULE loop of Figure 6 (lines 2-7).

    Trees that cannot be fixed (childless roots, or splits that make no
    progress) are excluded from further identification so the loop always
    terminates.
    """
    unsplittable: Set[str] = set()
    for _ in range(_MAX_SPLIT_ITERATIONS):
        blocks = _all_blocks(trees)
        sl = _utility_sorted(blocks, model.estimates)
        tracker.sorted_items(len(sl))
        buckets, cost_vector, weights = _bucketize(
            sl, model, cost_vector, weights, num_tasks, config
        )
        widths = _bucket_widths(cost_vector)
        overflowed = _identify_trees(trees, buckets, model, widths, unsplittable)
        if not overflowed:
            break
        for tree_uid in overflowed[: config.split_batch]:
            split_any = _split_tree(
                trees[tree_uid], trees, model, buckets, widths, len(cost_vector)
            )
            if not split_any:
                unsplittable.add(tree_uid)
    return cost_vector, weights


def _identify_trees(
    trees: Dict[str, Block],
    buckets: Dict[str, int],
    model: EstimationModel,
    widths: Sequence[float],
    unsplittable: Set[str],
) -> List[str]:
    """IDENTIFY-TREES: overflowed tree uids, worst excess first."""
    overflowed: List[Tuple[float, str]] = []
    for uid, root in trees.items():
        if uid in unsplittable or not root.children:
            continue
        vc = _subtree_vc(root, buckets, model, len(widths))
        excess = max(
            (vc[h] - widths[h] for h in range(len(widths))), default=0.0
        )
        if excess > _EPS:
            overflowed.append((excess, uid))
    overflowed.sort(key=lambda item: (-item[0], item[1]))
    return [uid for _, uid in overflowed]


def _split_tree(
    root: Block,
    trees: Dict[str, Block],
    model: EstimationModel,
    buckets: Dict[str, int],
    widths: Sequence[float],
    num_buckets: int,
) -> bool:
    """SPLIT-TREE (Figure 6): greedily keep high-utility children, split
    off the children whose retention would still overflow a bucket.

    Returns whether at least one child was split off.
    """
    kept: List[Block] = []
    children = sorted(
        root.children, key=lambda b: (-model.estimates[b.uid].util, b.uid)
    )
    split_any = False
    for child in children:
        if _should_split(child, root, kept, trees, model, buckets, widths, num_buckets):
            model.apply_split(root, child)
            trees[child.uid] = child
            split_any = True
        else:
            kept.append(child)
    return split_any


def _should_split(
    child: Block,
    root: Block,
    kept: List[Block],
    trees: Dict[str, Block],
    model: EstimationModel,
    buckets: Dict[str, int],
    widths: Sequence[float],
    num_buckets: int,
) -> bool:
    """SHOULD-SPLIT: would keeping ``child`` (next to the already-kept
    children) leave some bucket of this tree overflowed?

    ``V*`` is the root's re-estimated cost placed in the root's current SL
    bucket (its position in SL is deliberately not updated, as in the
    paper, to avoid re-sorting per child).
    """
    candidate_set = kept + [child]
    new_root_cost = model.split_cost_preview(root, candidate_set)
    root_bucket = buckets[root.uid]
    for h in range(num_buckets):
        total = new_root_cost if h == root_bucket else 0.0
        for kept_child in candidate_set:
            total += _subtree_vc(kept_child, buckets, model, num_buckets)[h]
        if total > widths[h] + _EPS:
            return True
    return False


# ---------------------------------------------------------------------------
# Partitioning trees over reduce tasks
# ---------------------------------------------------------------------------


def _partition_by_slack(
    trees: Dict[str, Block],
    vc: Dict[str, List[float]],
    weights: Sequence[float],
    widths: Sequence[float],
    num_tasks: int,
) -> Dict[str, int]:
    """PARTITION-TREES: weighted-cost order, maximum-slack greedy."""

    def weighted_cost(uid: str) -> float:
        return sum(w * c for w, c in zip(weights, vc[uid]))

    order = sorted(trees, key=lambda uid: (-weighted_cost(uid), uid))
    assigned_vc = [[0.0] * len(widths) for _ in range(num_tasks)]
    weighted_load = [0.0] * num_tasks
    assignment: Dict[str, int] = {}
    for uid in order:
        tree_vc = vc[uid]
        tree_weighted = sum(w * c for w, c in zip(weights, tree_vc))

        def slack(task: int) -> float:
            total = 0.0
            for h in range(len(widths)):
                if tree_vc[h] > 0.0:
                    total += weights[h] * (widths[h] - assigned_vc[task][h])
            return total

        # Maximum slack first; ties fall back to the least *weighted* load.
        # The weighting is what distinguishes this from LPT: a tree whose
        # cost sits in late (low-weight) buckets barely counts, so cold
        # giants may stack on one task — its early capacity stays free for
        # beneficial blocks — while LPT would waste a whole task per giant.
        best = max(
            range(num_tasks), key=lambda t: (slack(t), -weighted_load[t], -t)
        )
        assignment[uid] = best
        weighted_load[best] += tree_weighted
        for h in range(len(widths)):
            assigned_vc[best][h] += tree_vc[h]
    return assignment


def _partition_lpt(
    trees: Dict[str, Block], model: EstimationModel, num_tasks: int
) -> Dict[str, int]:
    """Longest Processing Time: total-cost order, least-loaded task first
    (the Section VI-B2 baseline scheduler)."""
    totals = {
        uid: sum(model.estimates[b.uid].cost for b in root.subtree())
        for uid, root in trees.items()
    }
    order = sorted(trees, key=lambda uid: (-totals[uid], uid))
    load = [0.0] * num_tasks
    assignment: Dict[str, int] = {}
    for uid in order:
        best = min(range(num_tasks), key=lambda t: (load[t], t))
        assignment[uid] = best
        load[best] += totals[uid]
    return assignment


# ---------------------------------------------------------------------------
# Block schedules and final assembly
# ---------------------------------------------------------------------------


def build_block_orders(
    trees: Dict[str, Block],
    estimates: Dict[str, BlockEstimate],
    assignment: Dict[str, int],
    num_tasks: int,
) -> List[List[str]]:
    """SORT-BLOCKS per task: utility order with a child-before-parent fix.

    When a parent's turn comes before some of its children, the children
    are emitted immediately before it (highest utility first) — without
    this the parent could not skip the work its children were scheduled to
    do ([17]'s guarantee).

    Public so the balance strategies can rebuild orders after reassigning
    trees (they hold only the estimates dict, not the estimation model).
    """
    orders: List[List[str]] = [[] for _ in range(num_tasks)]
    for task in range(num_tasks):
        task_blocks: List[Block] = []
        for uid, root in trees.items():
            if assignment[uid] == task:
                task_blocks.extend(root.subtree())
        ranked = _utility_sorted(task_blocks, estimates)
        emitted: Set[str] = set()
        order: List[str] = []

        def emit(block: Block) -> None:
            for child in sorted(
                block.children, key=lambda b: (-estimates[b.uid].util, b.uid)
            ):
                if child.uid not in emitted:
                    emit(child)
            emitted.add(block.uid)
            order.append(block.uid)

        for block in ranked:
            if block.uid not in emitted:
                emit(block)
        orders[task] = order
    return orders


def _assemble_schedule(
    *,
    trees: Dict[str, Block],
    model: EstimationModel,
    assignment: Dict[str, int],
    block_order: List[List[str]],
    num_tasks: int,
    cost_vector: List[float],
    weights: List[float],
    generation_cost: float,
) -> ProgressiveSchedule:
    """Assign dominance and sequence values and build the final object."""
    dominance = {uid: dom for dom, uid in enumerate(sorted(trees))}
    tree_of_block: Dict[str, str] = {}
    blocks: Dict[str, Block] = {}
    main_tree: Dict[Tuple[str, str], str] = {}
    split_roots: Dict[str, List[Tuple[int, str, str]]] = {}
    for uid, root in trees.items():
        for block in root.subtree():
            tree_of_block[block.uid] = uid
            blocks[block.uid] = block
        if root.level == 1:
            main_tree[(root.family, root.key)] = uid
        else:
            split_roots.setdefault(root.family, []).append(
                (root.level, root.key, uid)
            )
    for family in split_roots:
        split_roots[family].sort()

    stride = len(tree_of_block) + 1
    sequence: Dict[str, int] = {}
    for task, order in enumerate(block_order):
        for position, uid in enumerate(order):
            sequence[uid] = task * stride + position

    return ProgressiveSchedule(
        num_tasks=num_tasks,
        trees=trees,
        estimates=model.estimates,
        assignment=assignment,
        block_order=block_order,
        dominance=dominance,
        tree_of_block=tree_of_block,
        main_tree=main_tree,
        split_roots=split_roots,
        sequence=sequence,
        sequence_stride=stride,
        cost_vector=cost_vector,
        weights=weights,
        generation_cost=generation_cost,
        blocks=blocks,
    )


def recompute_sequence(schedule: ProgressiveSchedule) -> None:
    """Recompute ``SQ`` values after a balance pass rewrote the block
    orders.

    The stride covers the longest possible per-task order (every block or
    shard entry), so ``SQ // stride`` still recovers the task index for
    sequence-based routing.
    """
    stride = sum(len(order) for order in schedule.block_order) + 1
    sequence: Dict[str, int] = {}
    for task, order in enumerate(schedule.block_order):
        for position, uid in enumerate(order):
            sequence[uid] = task * stride + position
    schedule.sequence = sequence
    schedule.sequence_stride = stride


__all__ = [
    "ProgressiveSchedule",
    "generate_schedule",
    "build_block_orders",
    "recompute_sequence",
]
