"""Redundancy-free resolution (paper Section V, Figure 7).

Every tree gets a unique *dominance value* ``Dom(T)``.  The Job-2 mapper
appends to each emitted entity a *dominance list* whose ``j``-th entry
identifies the tree responsible for the entity's pairs under the family
with ``Index = j``; an optional ``(n + 1)``-st entry identifies the highest
split-off sub-tree (below the emitted tree) still containing the entity.
``should_resolve`` (the paper's SHOULD-RESOLVE) compares two entities'
lists to decide whether the *current* block is the one responsible for the
pair — eliminating redundant resolutions without any cross-task
communication.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

#: A dominance-list entry: a tree's dominance value, or an entity-unique
#: sentinel (negative) when the entity is not blocked under that family.
DomValue = int

#: Dominance lists have ``n`` entries (one per main blocking function) plus
#: an optional split-tree entry.
DominanceList = List[DomValue]


def missing_sentinel(entity_id: int) -> DomValue:
    """Entry for an entity with no block under some family.

    Dominance values are non-negative, so ``-(id + 1)`` can never collide
    with a real tree — and never equals another entity's sentinel, which is
    what makes "both unblocked" correctly compare as *not shared*.
    """
    return -(entity_id + 1)


def build_dominance_list(
    *,
    entity_id: int,
    own_index: int,
    num_families: int,
    family_trees: Sequence[Optional[int]],
    emitted_tree: DomValue,
    split_descendant: Optional[DomValue],
) -> DominanceList:
    """Construct ``List(e_i, X^k_l)`` for one (entity, emitted tree) pair.

    Args:
        entity_id: the entity's id (for sentinels).
        own_index: ``Index`` of the family of the emitted tree (1-based).
        num_families: ``n``, the number of main blocking functions.
        family_trees: per family (dominance order), the dominance value of
            the entity's *main* tree under that family, or ``None`` when
            the entity is unblocked there.
        emitted_tree: dominance value of the tree this emission targets.
        split_descendant: dominance value of the highest split-off tree
            strictly below the emitted tree that contains the entity.
    """
    if len(family_trees) != num_families:
        raise ValueError(
            f"need one main-tree entry per family: {len(family_trees)} != {num_families}"
        )
    values: DominanceList = []
    for position, tree in enumerate(family_trees, start=1):
        if position == own_index:
            values.append(emitted_tree)
        elif tree is None:
            values.append(missing_sentinel(entity_id))
        else:
            values.append(tree)
    if split_descendant is not None:
        values.append(split_descendant)
    return values


def should_resolve(
    list_k: DominanceList,
    list_l: DominanceList,
    index: int,
    num_families: int,
) -> bool:
    """Figure 7: is the current block responsible for the pair?

    ``index`` is the 1-based ``Index`` of the current block's family.  The
    loop defers to any *dominating* family whose main block contains both
    entities; the tail check defers pairs that fall inside a split-off
    sub-tree of the current tree (they are resolved there, fully).
    """
    for m in range(index - 1):
        if list_k[m] == list_l[m]:
            return False
    if len(list_k) > num_families and len(list_l) > num_families:
        if list_k[num_families] == list_l[num_families]:
            return False
    return True


__all__ = [
    "DomValue",
    "DominanceList",
    "missing_sentinel",
    "build_dominance_list",
    "should_resolve",
]
