"""JSON (de)serialization of progressive schedules and run results.

In a production deployment the schedule is generated once (from Job-1
statistics) and shipped to every Job-2 task; results are archived for
later analysis.  This module provides stable, dependency-free JSON forms
for both.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Tuple

from ..blocking.blocks import Block
from ..mapreduce.types import Event
from .balance import BlockShard
from .estimation import BlockEstimate
from .schedule import ProgressiveSchedule

_SCHEDULE_FORMAT = 1
_RESULT_FORMAT = 1


def schedule_to_dict(schedule: ProgressiveSchedule) -> Dict[str, Any]:
    """A JSON-ready representation of a :class:`ProgressiveSchedule`."""
    blocks = []
    for uid, block in schedule.blocks.items():
        blocks.append(
            {
                "uid": uid,
                "family": block.family,
                "level": block.level,
                "key": block.key,
                "size": block.size,
                "parent": block.parent.uid if block.parent is not None else None,
            }
        )
    estimates = {
        uid: asdict(schedule.estimates[uid])
        for uid in schedule.blocks
    }
    return {
        "format": _SCHEDULE_FORMAT,
        "num_tasks": schedule.num_tasks,
        "blocks": blocks,
        "estimates": estimates,
        "assignment": dict(schedule.assignment),
        "block_order": [list(order) for order in schedule.block_order],
        "dominance": dict(schedule.dominance),
        "main_tree": [
            {"family": family, "key": key, "tree": uid}
            for (family, key), uid in schedule.main_tree.items()
        ],
        "split_roots": {
            family: [list(entry) for entry in entries]
            for family, entries in schedule.split_roots.items()
        },
        "sequence": dict(schedule.sequence),
        "sequence_stride": schedule.sequence_stride,
        "cost_vector": list(schedule.cost_vector),
        "weights": list(schedule.weights),
        "generation_cost": schedule.generation_cost,
        # Optional key: absent (or empty) unless a balance pass sharded
        # oversized roots — format 1 readers without shard support can
        # still parse unbalanced schedules.
        "shards": [
            asdict(schedule.shards[key]) for key in sorted(schedule.shards)
        ],
    }


def schedule_from_dict(data: Dict[str, Any]) -> ProgressiveSchedule:
    """Rebuild a :class:`ProgressiveSchedule` from its JSON form."""
    if data.get("format") != _SCHEDULE_FORMAT:
        raise ValueError(f"unsupported schedule format: {data.get('format')!r}")
    blocks: Dict[str, Block] = {}
    for spec in data["blocks"]:
        blocks[spec["uid"]] = Block(
            family=spec["family"],
            level=spec["level"],
            key=spec["key"],
            entity_ids=(),
            size_override=spec["size"],
        )
    trees: Dict[str, Block] = {}
    tree_of_block: Dict[str, str] = {}
    for spec in data["blocks"]:
        block = blocks[spec["uid"]]
        if spec["parent"] is None:
            trees[block.uid] = block
        else:
            blocks[spec["parent"]].add_child(block)
    for uid, root in trees.items():
        for block in root.subtree():
            tree_of_block[block.uid] = uid

    estimates = {
        uid: BlockEstimate(**values) for uid, values in data["estimates"].items()
    }
    return ProgressiveSchedule(
        num_tasks=data["num_tasks"],
        trees=trees,
        estimates=estimates,
        assignment=dict(data["assignment"]),
        block_order=[list(order) for order in data["block_order"]],
        dominance=dict(data["dominance"]),
        tree_of_block=tree_of_block,
        main_tree={
            (entry["family"], entry["key"]): entry["tree"]
            for entry in data["main_tree"]
        },
        split_roots={
            family: [tuple(entry) for entry in entries]
            for family, entries in data["split_roots"].items()
        },
        sequence=dict(data["sequence"]),
        sequence_stride=data["sequence_stride"],
        cost_vector=list(data["cost_vector"]),
        weights=list(data["weights"]),
        generation_cost=data["generation_cost"],
        blocks=blocks,
        shards={
            spec["key"]: BlockShard(**spec) for spec in data.get("shards", ())
        },
    )


def save_schedule(schedule: ProgressiveSchedule, path: Path | str) -> None:
    """Write a schedule to a JSON file."""
    Path(path).write_text(json.dumps(schedule_to_dict(schedule)), encoding="utf-8")


def load_schedule(path: Path | str) -> ProgressiveSchedule:
    """Read a schedule back from a JSON file."""
    return schedule_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# ---------------------------------------------------------------------------
# Result archives
# ---------------------------------------------------------------------------


def events_to_dict(events: List[Event], *, total_time: float) -> Dict[str, Any]:
    """A JSON-ready archive of a run's duplicate events."""
    return {
        "format": _RESULT_FORMAT,
        "total_time": total_time,
        "events": [
            {"time": event.time, "pair": list(event.payload)} for event in events
        ],
    }


def events_from_dict(data: Dict[str, Any]) -> Tuple[List[Event], float]:
    """Rebuild (events, total_time) from a result archive."""
    if data.get("format") != _RESULT_FORMAT:
        raise ValueError(f"unsupported result format: {data.get('format')!r}")
    events = [
        Event(time=entry["time"], kind="duplicate", payload=tuple(entry["pair"]))
        for entry in data["events"]
    ]
    return events, data["total_time"]


def save_events(events: List[Event], total_time: float, path: Path | str) -> None:
    """Write a run's duplicate events to a JSON file."""
    Path(path).write_text(
        json.dumps(events_to_dict(events, total_time=total_time)), encoding="utf-8"
    )


def load_events(path: Path | str) -> Tuple[List[Event], float]:
    """Read duplicate events back from a JSON file."""
    return events_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "events_to_dict",
    "events_from_dict",
    "save_events",
    "load_events",
]
