"""The first MapReduce job: progressive blocking statistics (Section III-B).

The job produces the two outputs the paper describes:

1. an **annotated dataset** — each entity together with its main blocking
   key values (emitted by the map phase), consumed by Job 2's mappers so
   they need not recompute keys; and
2. **block statistics** — for every block of every tree: its size, its
   child blocks, and the overlap information needed to evaluate the
   inclusion–exclusion ``Uncov`` formula (the ``OLP`` values): a histogram
   of the block's entities over the main-key tuples of all *dominating*
   families.

Statistics blocks are *structural*: they carry sizes and tree links but not
entity memberships (Job 2's reducers re-derive memberships locally, as in
the paper's actual implementation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..blocking.blocks import Block
from ..blocking.functions import BlockingFunction, BlockingScheme
from ..data.dataset import Dataset
from ..data.entity import Entity
from ..mapreduce.engine import Cluster
from ..mapreduce.job import MapReduceJob, Mapper, Reducer, TaskContext
from ..mapreduce.types import JobResult

#: An entity annotated with its main blocking keys: (entity, {family: key}).
AnnotatedEntity = Tuple[Entity, Dict[str, Optional[str]]]

#: Histogram of a block's entities over dominating-family main-key tuples.
OverlapHistogram = Dict[Tuple[Optional[str], ...], int]


@dataclass
class BlockRecord:
    """One block's statistics as emitted by the reduce phase."""

    family: str
    level: int
    key: str
    size: int
    parent_uid: Optional[str]
    overlap: OverlapHistogram


@dataclass
class DatasetStatistics:
    """Aggregated Job-1 output: structural forests plus overlap data.

    Attributes:
        scheme: the blocking scheme the statistics were computed under.
        blocks: uid -> structural block (tree links intact, no entity ids).
        roots: family -> list of root blocks (the family's forest).
        overlaps: uid -> overlap histogram over dominating-family keys.
    """

    scheme: BlockingScheme
    blocks: Dict[str, Block] = field(default_factory=dict)
    roots: Dict[str, List[Block]] = field(default_factory=dict)
    overlaps: Dict[str, OverlapHistogram] = field(default_factory=dict)

    @classmethod
    def from_records(
        cls, scheme: BlockingScheme, records: Sequence[BlockRecord]
    ) -> "DatasetStatistics":
        """Rebuild the structural forests from reduce-phase records."""
        stats = cls(scheme=scheme)
        # First pass: create blocks; second pass: link parents.
        for record in records:
            block = Block(
                family=record.family,
                level=record.level,
                key=record.key,
                entity_ids=(),
                size_override=record.size,
            )
            uid = block.uid
            if uid in stats.blocks:
                raise ValueError(
                    f"duplicate block uid {uid!r}: sub-blocking keys must "
                    "refine their parent keys"
                )
            stats.blocks[uid] = block
            stats.overlaps[uid] = dict(record.overlap)
        for record in records:
            uid = f"{record.family}{record.level}:{record.key}"
            block = stats.blocks[uid]
            if record.parent_uid is None:
                stats.roots.setdefault(record.family, []).append(block)
            else:
                stats.blocks[record.parent_uid].add_child(block)
        for family in stats.roots:
            stats.roots[family].sort(key=lambda b: b.key)
        return stats

    def size_of(self, block: Block) -> int:
        """Block cardinality from the statistics."""
        return block.size

    @property
    def num_blocks(self) -> int:
        """Total number of blocks across all families."""
        return len(self.blocks)


class AnnotateMapper(Mapper):
    """Map phase: annotate each entity with its main keys and route it to
    every main block containing it.

    ``pruned`` is an optional set of ``(entity id, family)`` memberships
    dropped by a meta-blocking block-filtering pre-pass: a pruned key is
    annotated as ``None``, so the membership disappears from the block
    statistics *and* — because Job 2's mappers route from these same
    annotations — from resolution routing, with no further plumbing.
    """

    def __init__(
        self,
        scheme: BlockingScheme,
        pruned: Optional[FrozenSet[Tuple[int, str]]] = None,
    ) -> None:
        self._scheme = scheme
        self._pruned = pruned
        self.annotated: List[AnnotatedEntity] = []

    def map(self, record: Entity, context: TaskContext) -> None:
        keys: Dict[str, Optional[str]] = {}
        for family in self._scheme.family_order:
            key = self._scheme.main_function(family).key_of(record)
            if (
                key is not None
                and self._pruned is not None
                and (record.id, family) in self._pruned
            ):
                key = None
            keys[family] = key
        annotated: AnnotatedEntity = (record, keys)
        self.annotated.append(annotated)
        for family, key in keys.items():
            if key is not None:
                context.emit((family, key), annotated)


class BlockStatsReducer(Reducer):
    """Reduce phase: per main block, derive the tree of sub-blocks and the
    overlap histograms (the ``OLP`` statistics)."""

    def __init__(self, scheme: BlockingScheme) -> None:
        self._scheme = scheme

    def reduce(
        self, key: Tuple[str, str], values: Sequence[AnnotatedEntity], context: TaskContext
    ) -> None:
        family, block_key = key
        trace = context.tracing
        span_start = context.clock.now if trace else 0.0
        context.charge(context.cost_model.stat_record * len(values))
        if len(values) < 2:
            return  # singleton main blocks produce no pairs
        dominating = self._scheme.family_order[: self._scheme.index_of(family) - 1]
        functions = self._scheme.families[family]
        self._emit_block(
            family, 1, block_key, list(values), None, dominating, functions, context
        )
        if trace:
            context.record_span(
                f"stats:{family}:{block_key}", "block",
                span_start, context.clock.now,
                family=family, key=block_key, entities=len(values),
            )

    def _emit_block(
        self,
        family: str,
        level: int,
        key: str,
        members: List[AnnotatedEntity],
        parent_uid: Optional[str],
        dominating: Sequence[str],
        functions: Sequence[BlockingFunction],
        context: TaskContext,
    ) -> None:
        """Write this block's record, then recurse into its children."""
        overlap: OverlapHistogram = {}
        for _, keys in members:
            signature = tuple(keys[f] for f in dominating)
            overlap[signature] = overlap.get(signature, 0) + 1
        uid = f"{family}{level}:{key}"
        context.write(
            BlockRecord(
                family=family,
                level=level,
                key=key,
                size=len(members),
                parent_uid=parent_uid,
                overlap=overlap,
            )
        )
        context.counters.increment("driver", "stat_blocks")
        context.charge(context.cost_model.stat_record * len(members))
        self._emit_children(family, level, key, uid, members, dominating, functions, context)

    def _emit_children(
        self,
        family: str,
        level: int,
        key: str,
        uid: str,
        members: List[AnnotatedEntity],
        dominating: Sequence[str],
        functions: Sequence[BlockingFunction],
        context: TaskContext,
    ) -> None:
        """Subdivide with the next sub-function (same pruning as the blocker)."""
        next_index = level  # functions[level] has .level == level + 1
        if next_index >= len(functions):
            return
        function = functions[next_index]
        groups: Dict[str, List[AnnotatedEntity]] = {}
        for annotated in members:
            sub_key = function.key_of(annotated[0])
            if sub_key is None:
                continue
            groups.setdefault(sub_key, []).append(annotated)
        for sub_key in sorted(groups):
            group = groups[sub_key]
            if len(group) < 2:
                continue
            if len(group) == len(members):
                # Sub-key failed to subdivide; skip through to deeper levels.
                self._emit_children(
                    family, function.level, key, uid, members, dominating, functions, context
                )
                return
            self._emit_block(
                family,
                function.level,
                sub_key,
                group,
                uid,
                dominating,
                functions,
                context,
            )


def run_statistics_job(
    cluster: Cluster,
    dataset: Dataset,
    scheme: BlockingScheme,
    *,
    start_time: float = 0.0,
    pruned: Optional[FrozenSet[Tuple[int, str]]] = None,
) -> Tuple[List[AnnotatedEntity], DatasetStatistics, JobResult]:
    """Execute Job 1 and return (annotated dataset, statistics, job result).

    ``pruned`` applies a block-filtering pre-pass (see
    :class:`AnnotateMapper`): both the worker-side annotation and the
    driver-side derivation below mask the dropped memberships, so the two
    stay the same deterministic function of the input.
    """
    job = MapReduceJob(
        mapper_factory=lambda: AnnotateMapper(scheme, pruned),
        reducer_factory=lambda: BlockStatsReducer(scheme),
        name="progressive-blocking-statistics",
    )
    result = cluster.run_job(job, dataset.entities, start_time=start_time)

    def _key(entity: Entity, family: str) -> Optional[str]:
        if pruned is not None and (entity.id, family) in pruned:
            return None
        return scheme.main_function(family).key_of(entity)

    # The annotated dataset is a deterministic function of the input — the
    # job charges its cost, but the driver derives it directly rather than
    # collecting mapper side effects (which would be lost on a process
    # backend, where mappers run in worker processes).
    annotated: List[AnnotatedEntity] = [
        (
            entity,
            {family: _key(entity, family) for family in scheme.family_order},
        )
        for entity in dataset.entities
    ]
    annotated.sort(key=lambda a: a[0].id)
    stats = DatasetStatistics.from_records(scheme, result.output)
    return annotated, stats, result


__all__ = [
    "AnnotatedEntity",
    "OverlapHistogram",
    "BlockRecord",
    "DatasetStatistics",
    "AnnotateMapper",
    "BlockStatsReducer",
    "run_statistics_job",
]
