"""Responsible trees and covered-pair computation (paper Section IV-A).

A pair that exists in blocks of several main blocking functions is resolved
by the tree of the most *dominating* function containing it (total order
``≻_F``, given by the family order of the blocking scheme).  A block's
*covered* pairs are those it is responsible for:

    ``Cov(X^i_j) = Pairs(|X^i_j|) - Uncov(X^i_j)``

where ``Uncov`` counts the pairs already claimed by a dominating family —
evaluated with the paper's inclusion–exclusion formula over the ``OLP``
overlap statistics.  Here the Job-1 statistics store, per block, a
histogram of its entities over dominating-family main-key tuples, from
which every ``OLP({X^i_j} ∪ H)`` term is a marginal.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Optional, Tuple

from ..data.entity import pairs_count
from .statistics import DatasetStatistics, OverlapHistogram


def uncovered_pairs(histogram: OverlapHistogram, num_dominating: int) -> int:
    """``Uncov(X^i_j)``: pairs of this block sharing a main block of at
    least one dominating family.

    Inclusion–exclusion over the non-empty subsets ``S`` of dominating
    families: for each ``S``, entities are grouped by their key tuple
    restricted to ``S`` (entities missing any key in ``S`` share no block
    there and are excluded); each group of ``c`` entities contributes
    ``Pairs(c)`` co-blocked pairs.
    """
    if num_dominating == 0:
        return 0
    total = 0
    for subset_size in range(1, num_dominating + 1):
        sign = 1 if subset_size % 2 == 1 else -1
        for subset in combinations(range(num_dominating), subset_size):
            groups: Dict[Tuple[str, ...], int] = {}
            for signature, count in histogram.items():
                projected = tuple(signature[i] for i in subset)
                if any(k is None for k in projected):
                    continue
                groups[projected] = groups.get(projected, 0) + count
            total += sign * sum(pairs_count(c) for c in groups.values())
    return total


def covered_pairs(size: int, histogram: OverlapHistogram, num_dominating: int) -> int:
    """``Cov(X^i_j) = Pairs(|X^i_j|) - Uncov(X^i_j)``."""
    return pairs_count(size) - uncovered_pairs(histogram, num_dominating)


def compute_coverage(stats: DatasetStatistics) -> Dict[str, int]:
    """``Cov`` for every block in the statistics, keyed by block uid."""
    coverage: Dict[str, int] = {}
    for uid, block in stats.blocks.items():
        num_dominating = stats.scheme.index_of(block.family) - 1
        histogram = stats.overlaps.get(uid, {})
        coverage[uid] = covered_pairs(block.size, histogram, num_dominating)
    return coverage


def shared_entities(histogram: OverlapHistogram, family_position: int, key: str) -> int:
    """``OLP``-style marginal: entities of the block whose main key under
    the dominating family at ``family_position`` equals ``key``."""
    total = 0
    for signature, count in histogram.items():
        if signature[family_position] == key:
            total += count
    return total


__all__ = [
    "uncovered_pairs",
    "covered_pairs",
    "compute_coverage",
    "shared_entities",
]
