"""ASCII reporting: the benchmarks print the same rows/series the paper's
tables and figures show."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .experiment import CurveRun
from .metrics import RecallCurve


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_curves(
    runs: Sequence[CurveRun], times: Sequence[float], *, title: str = ""
) -> str:
    """Render several recall curves sampled at common times — the textual
    equivalent of one sub-figure of the paper."""
    headers = ["time"] + [run.label for run in runs]
    rows: List[List[object]] = []
    for t in times:
        row: List[object] = [f"{t:.0f}"]
        for run in runs:
            row.append(f"{run.curve.recall_at(t):.3f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_final_summary(runs: Sequence[CurveRun], *, title: str = "") -> str:
    """Final recall and total time per run (Table III shape)."""
    headers = ["approach", "final recall", "total time"]
    rows = [
        [run.label, f"{run.final_recall:.3f}", f"{run.total_time:.0f}"]
        for run in runs
    ]
    return format_table(headers, rows, title=title)


__all__ = ["format_table", "format_curves", "format_final_summary"]
