"""ASCII reporting: the benchmarks print the same rows/series the paper's
tables and figures show."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .experiment import CurveRun
from .metrics import RecallCurve


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_curves(
    runs: Sequence[CurveRun], times: Sequence[float], *, title: str = ""
) -> str:
    """Render several recall curves sampled at common times — the textual
    equivalent of one sub-figure of the paper."""
    headers = ["time"] + [run.label for run in runs]
    rows: List[List[object]] = []
    for t in times:
        row: List[object] = [f"{t:.0f}"]
        for run in runs:
            row.append(f"{run.curve.recall_at(t):.3f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_final_summary(runs: Sequence[CurveRun], *, title: str = "") -> str:
    """Final recall and total time per run (Table III shape)."""
    headers = ["approach", "final recall", "total time"]
    rows = [
        [run.label, f"{run.final_recall:.3f}", f"{run.total_time:.0f}"]
        for run in runs
    ]
    return format_table(headers, rows, title=title)


def _run_jobs(run: CurveRun):
    """The MapReduce jobs behind a run, whichever approach produced it."""
    result = run.result
    if hasattr(result, "job2"):
        return [result.job1, result.job2]
    return [result.job]


def format_fault_summary(runs: Sequence[CurveRun], *, title: str = "") -> str:
    """Aggregate ``fault.*`` counters per run as an ASCII table.

    Returns an empty string when no run recorded any fault activity (the
    engine only writes ``fault.*`` counters for non-zero values), so
    callers can print the summary unconditionally without polluting
    fault-free output.
    """
    names: List[str] = []
    totals: List[dict] = []
    for run in runs:
        merged: dict = {}
        for job in _run_jobs(run):
            for (group, name), value in job.counters.items():
                if group != "fault":
                    continue
                # Collapse the per-phase split: "map_retries" and
                # "reduce_retries" roll up into one "retries" column.
                metric = name.split("_", 1)[1]
                merged[metric] = merged.get(metric, 0) + value
        totals.append(merged)
        for metric in merged:
            if metric not in names:
                names.append(metric)
    if not any(totals):
        return ""
    names.sort()
    headers = ["approach"] + names
    rows = [
        [run.label] + [str(merged.get(metric, 0)) for metric in names]
        for run, merged in zip(runs, totals)
    ]
    return format_table(headers, rows, title=title or "fault injection")


__all__ = [
    "format_table",
    "format_curves",
    "format_final_summary",
    "format_fault_summary",
]
