"""Per-task timelines and cluster utilization.

Diagnoses scheduling quality the way the paper's Section VI-B2 discusses
it: which reduce tasks are busy when, whether some tasks idle while one
grinds through an overflowed tree, and how balanced a job's phases are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..mapreduce.types import JobResult, TaskResult


@dataclass(frozen=True)
class TaskSpan:
    """One task's execution window."""

    phase: str
    task_id: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def job_spans(job: JobResult) -> List[TaskSpan]:
    """Execution windows of every task in a job."""
    spans = [
        TaskSpan("map", t.task_id, t.start_time, t.end_time) for t in job.map_tasks
    ]
    spans.extend(
        TaskSpan("reduce", t.task_id, t.start_time, t.end_time)
        for t in job.reduce_tasks
    )
    return spans


def reduce_utilization(job: JobResult) -> float:
    """Mean busy fraction of the reduce tasks over the reduce phase.

    1.0 = perfectly balanced (every task busy until the job ends);
    low values = stragglers (the NoSplit failure mode)."""
    phase = job.end_time - job.map_phase_end
    if phase <= 0:
        return 1.0
    tasks = job.reduce_tasks
    if not tasks:
        return 1.0
    return sum(t.cost for t in tasks) / (phase * len(tasks))


def load_imbalance(job: JobResult) -> float:
    """Max-over-mean reduce-task cost (1.0 = perfectly even)."""
    costs = [t.cost for t in job.reduce_tasks]
    if not costs:
        return 1.0
    mean = sum(costs) / len(costs)
    if mean == 0:
        return 1.0
    return max(costs) / mean


def ascii_gantt(job: JobResult, *, width: int = 64) -> str:
    """A Gantt-style view of the job's tasks.

    ``#`` marks the window a task is executing; map tasks first, then
    reduce tasks, both to the same time scale.
    """
    if width < 10:
        raise ValueError("width too small to be readable")
    end = job.end_time - job.start_time
    if end <= 0:
        return "(empty job)"

    def bar(span: TaskSpan) -> str:
        lo = int((span.start - job.start_time) / end * width)
        hi = max(lo + 1, int((span.end - job.start_time) / end * width))
        return " " * lo + "#" * (hi - lo) + " " * (width - hi)

    lines = []
    for span in job_spans(job):
        lines.append(f"{span.phase:>6s}[{span.task_id:3d}] |{bar(span)}|")
    lines.append(
        f"utilization={reduce_utilization(job):.2f}  "
        f"imbalance={load_imbalance(job):.2f}  "
        f"duration={end:,.0f}"
    )
    return "\n".join(lines)


__all__ = [
    "TaskSpan",
    "job_spans",
    "reduce_utilization",
    "load_imbalance",
    "ascii_gantt",
]
