"""Evaluation: recall curves, Qty (Equation 1), speedups, clustering, and
the experiment harness behind the benchmarks."""

from .charts import ascii_chart
from .clustering import UnionFind, transitive_closure
from .experiment import (
    CurveRun,
    ExperimentRun,
    RunResult,
    RunSpec,
    sample_times,
)
from .metrics import (
    RecallCurve,
    pair_precision,
    quality,
    recall_curve,
    recall_speedup,
)
from .reporting import (
    format_curves,
    format_fault_summary,
    format_final_summary,
    format_table,
)
from .timeline import (
    TaskSpan,
    ascii_gantt,
    job_spans,
    load_imbalance,
    reduce_utilization,
)

__all__ = [
    "UnionFind",
    "transitive_closure",
    "RunSpec",
    "RunResult",
    "ExperimentRun",
    "CurveRun",
    "sample_times",
    "RecallCurve",
    "recall_curve",
    "quality",
    "recall_speedup",
    "pair_precision",
    "format_table",
    "format_curves",
    "format_final_summary",
    "format_fault_summary",
    "ascii_chart",
    "TaskSpan",
    "job_spans",
    "reduce_utilization",
    "load_imbalance",
    "ascii_gantt",
]
