"""Experiment harness: the unified run API behind the benchmarks and CLI.

One entry point replaces the old ``make_cluster`` / ``run_progressive`` /
``run_basic`` keyword sprawl: describe a run with a :class:`RunSpec`,
execute it with :class:`ExperimentRun`, get a :class:`RunResult` back —
the same shape for the progressive approach, its scheduler variants, and
the Basic baseline.  Everything is seeded and deterministic::

    spec = RunSpec(dataset, citeseer_config(), machines=10)
    run = ExperimentRun(spec).run()
    run.final_recall, run.total_time, run.found_pairs

Attach a :class:`~repro.observability.Tracer` or
:class:`~repro.observability.MetricsRegistry` to the spec and the run is
recorded (see :mod:`repro.observability`); several specs may share one
tracer — each run is labeled via ``begin_run``.

The old helpers survive as thin deprecated wrappers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import List, Optional, Set, Union

from ..baselines.basic import BasicConfig, BasicER, BasicResult
from ..core.config import ApproachConfig
from ..core.driver import ProgressiveER, ProgressiveResult
from ..data.dataset import Dataset
from ..data.entity import Pair
from ..mapreduce.clock import CostModel
from ..mapreduce.engine import Cluster
from ..mapreduce.executors import Executor, make_executor
from ..mapreduce.faults import FaultPlan
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import Tracer
from ..similarity.matchers import similarity_cache_counters
from .metrics import RecallCurve, recall_curve

#: Slots per machine of the paper's cluster (Section VI-A1).
PAPER_MAP_SLOTS = 2
PAPER_REDUCE_SLOTS = 2


@dataclass
class RunSpec:
    """Declarative description of one experiment run.

    The approach is inferred from ``config``'s type: a
    :class:`~repro.baselines.basic.BasicConfig` runs the Basic baseline, an
    :class:`~repro.core.config.ApproachConfig` runs the progressive
    approach under ``strategy``.

    Attributes:
        dataset: the dataset to resolve.
        config: approach configuration (selects the approach, see above).
        machines: simulated cluster size (2 map + 2 reduce slots each).
        strategy: tree scheduler for the progressive approach — ``"ours"``,
            ``"nosplit"`` or ``"lpt"`` (ignored by Basic).
        balance: load-balancing post-pass for the progressive approach —
            ``"slack"`` (paper baseline, schedule untouched),
            ``"blocksplit"`` or ``"pairrange"`` (ignored by Basic; see
            :mod:`repro.core.balance`).
        seed: seed for training-sample and cost-factor sampling.
        label: run label for reports and traces (default: derived).
        cost_model: virtual-time cost model (default: :class:`CostModel`).
        backend: execution-backend name (``"serial"`` / ``"process"``),
            used when ``executor`` is not given.
        workers: worker processes for the ``process`` backend.
        executor: explicit executor instance (overrides ``backend``).
        tracer: record spans of this run (shared tracers accumulate).
        metrics: snapshot counters per phase (shared registries accumulate).
        faults: optional :class:`~repro.mapreduce.faults.FaultPlan`
            injecting seeded crashes, stragglers and speculative execution
            into every job of the run.  Deterministic and
            backend-independent; ``None`` (the default) runs fault-free.
    """

    dataset: Dataset
    config: Union[ApproachConfig, BasicConfig]
    machines: int = 10
    strategy: str = "ours"
    balance: str = "slack"
    seed: int = 0
    label: Optional[str] = None
    cost_model: Optional[CostModel] = None
    backend: Optional[str] = None
    workers: Optional[int] = None
    executor: Optional[Executor] = None
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    faults: Optional[FaultPlan] = None

    @property
    def is_basic(self) -> bool:
        """True when ``config`` selects the Basic baseline."""
        return isinstance(self.config, BasicConfig)

    def resolved_label(self) -> str:
        """The explicit label, or one derived from the approach."""
        if self.label is not None:
            return self.label
        if self.is_basic:
            threshold = self.config.popcorn_threshold
            return f"basic[{'F' if threshold is None else threshold}]"
        return f"ours[{self.strategy}]"

    def with_label(self, label: str) -> "RunSpec":
        """A copy of this spec under another label."""
        return replace(self, label=label)


@dataclass
class RunResult:
    """One executed run: a labeled recall curve plus the raw result.

    ``result`` is the approach-specific object
    (:class:`~repro.core.driver.ProgressiveResult` or
    :class:`~repro.baselines.basic.BasicResult`); the properties below
    expose the fields every consumer needs without caring which.
    """

    label: str
    curve: RecallCurve
    result: Union[ProgressiveResult, BasicResult, object]
    spec: Optional[RunSpec] = field(default=None, repr=False)
    tracer: Optional[Tracer] = field(default=None, repr=False)
    metrics: Optional[MetricsRegistry] = field(default=None, repr=False)

    @property
    def final_recall(self) -> float:
        return self.curve.final_recall

    @property
    def total_time(self) -> float:
        return self.curve.end_time

    @property
    def duplicate_events(self):
        """The run's first-discovery duplicate events, in time order."""
        return self.result.duplicate_events

    @cached_property
    def found_pairs(self) -> Set[Pair]:
        """Distinct duplicate pairs the run reported (computed once)."""
        return self.result.found_pairs


#: Backwards-compatible alias: the first three fields (label, curve,
#: result) are exactly the old ``CurveRun``'s, so existing keyword and
#: positional constructions keep working.
CurveRun = RunResult


class ExperimentRun:
    """Executes one :class:`RunSpec` on a freshly built cluster.

    Splitting construction from :meth:`run` keeps the expensive part
    explicit and lets callers inspect :attr:`cluster` (or re-run the same
    spec on a fresh cluster by constructing a new ``ExperimentRun``).
    """

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        self.cluster = _build_cluster(spec)

    def run(self) -> RunResult:
        """Execute the run and build its recall curve."""
        spec = self.spec
        label = spec.resolved_label()
        if spec.tracer is not None:
            spec.tracer.begin_run(label)
        if spec.metrics is not None:
            spec.metrics.begin_run(label)
        if spec.is_basic:
            result = BasicER(spec.config, self.cluster).run(spec.dataset)
        else:
            result = ProgressiveER(
                spec.config,
                self.cluster,
                strategy=spec.strategy,
                seed=spec.seed,
                balance=spec.balance,
            ).run(spec.dataset)
        if spec.metrics is not None and getattr(result, "balance", None) is not None:
            spec.metrics.snapshot(
                "balance",
                {
                    f"balance.{name}": value
                    for name, value in result.balance.counter_items().items()
                },
                strategy=result.balance.strategy,
            )
        if spec.metrics is not None:
            # Driver-process matcher statistics at run end.  The memo is
            # reset at every job start (see the job reset hooks), so this
            # snapshot is scoped to the run's final job — it no longer leaks
            # traffic from earlier runs in the same process.  Per-phase
            # worker deltas are already aggregated into the phase snapshots
            # (task payloads carry them home) and remain the complete view.
            spec.metrics.snapshot("matcher", similarity_cache_counters())
        curve = recall_curve(
            result.duplicate_events, spec.dataset, end_time=result.total_time
        )
        return RunResult(
            label=label,
            curve=curve,
            result=result,
            spec=spec,
            tracer=spec.tracer,
            metrics=spec.metrics,
        )


def _build_cluster(spec: RunSpec) -> Cluster:
    """A paper-shaped cluster configured from the spec."""
    executor = spec.executor
    if executor is None and spec.backend is not None:
        executor = make_executor(spec.backend, spec.workers)
    return Cluster(
        spec.machines,
        map_slots=PAPER_MAP_SLOTS,
        reduce_slots=PAPER_REDUCE_SLOTS,
        cost_model=spec.cost_model if spec.cost_model is not None else CostModel(),
        executor=executor,
        tracer=spec.tracer,
        metrics=spec.metrics,
        faults=spec.faults,
    )


def sample_times(end_time: float, points: int = 12) -> List[float]:
    """Evenly spaced sampling times over (0, end_time] for curve tables."""
    if points < 1:
        raise ValueError("need at least one sample point")
    return [end_time * (i + 1) / points for i in range(points)]


# ---------------------------------------------------------------------------
# Deprecated wrappers (the pre-RunSpec API)
# ---------------------------------------------------------------------------


def make_cluster(
    machines: int,
    *,
    cost_model: Optional[CostModel] = None,
    executor: Optional[Executor] = None,
) -> Cluster:
    """Deprecated: build :class:`~repro.mapreduce.engine.Cluster` directly
    (its defaults are already paper-shaped), or use :class:`ExperimentRun`."""
    warnings.warn(
        "make_cluster() is deprecated; construct Cluster(machines) directly "
        "or run experiments through ExperimentRun(RunSpec(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return Cluster(
        machines,
        map_slots=PAPER_MAP_SLOTS,
        reduce_slots=PAPER_REDUCE_SLOTS,
        cost_model=cost_model if cost_model is not None else CostModel(),
        executor=executor,
    )


def run_progressive(
    dataset: Dataset,
    config: ApproachConfig,
    machines: int,
    *,
    strategy: str = "ours",
    seed: int = 0,
    label: Optional[str] = None,
    cost_model: Optional[CostModel] = None,
    executor: Optional[Executor] = None,
) -> RunResult:
    """Deprecated: use ``ExperimentRun(RunSpec(...)).run()``."""
    warnings.warn(
        "run_progressive() is deprecated; use ExperimentRun(RunSpec(...)).run()",
        DeprecationWarning,
        stacklevel=2,
    )
    return ExperimentRun(
        RunSpec(
            dataset,
            config,
            machines=machines,
            strategy=strategy,
            seed=seed,
            label=label,
            cost_model=cost_model,
            executor=executor,
        )
    ).run()


def run_basic(
    dataset: Dataset,
    config: BasicConfig,
    machines: int,
    *,
    label: Optional[str] = None,
    cost_model: Optional[CostModel] = None,
    executor: Optional[Executor] = None,
) -> RunResult:
    """Deprecated: use ``ExperimentRun(RunSpec(...)).run()``."""
    warnings.warn(
        "run_basic() is deprecated; use ExperimentRun(RunSpec(...)).run()",
        DeprecationWarning,
        stacklevel=2,
    )
    return ExperimentRun(
        RunSpec(
            dataset,
            config,
            machines=machines,
            label=label,
            cost_model=cost_model,
            executor=executor,
        )
    ).run()


__all__ = [
    "RunSpec",
    "RunResult",
    "ExperimentRun",
    "CurveRun",
    "PAPER_MAP_SLOTS",
    "PAPER_REDUCE_SLOTS",
    "sample_times",
    "make_cluster",
    "run_progressive",
    "run_basic",
]
