"""Experiment harness: one-call runners used by the benchmarks.

Each helper builds the cluster, runs an approach, and returns the recall
curve (plus the raw result for anything deeper).  Everything is seeded and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..baselines.basic import BasicConfig, BasicER, BasicResult
from ..core.config import ApproachConfig
from ..core.driver import ProgressiveER, ProgressiveResult
from ..data.dataset import Dataset
from ..mapreduce.clock import CostModel
from ..mapreduce.engine import Cluster
from ..mapreduce.executors import Executor
from .metrics import RecallCurve, recall_curve


@dataclass
class CurveRun:
    """A labeled recall curve plus the raw run behind it."""

    label: str
    curve: RecallCurve
    result: object

    @property
    def final_recall(self) -> float:
        return self.curve.final_recall

    @property
    def total_time(self) -> float:
        return self.curve.end_time


def make_cluster(
    machines: int,
    *,
    cost_model: Optional[CostModel] = None,
    executor: Optional[Executor] = None,
) -> Cluster:
    """A paper-shaped cluster: 2 map + 2 reduce slots per machine."""
    return Cluster(
        machines,
        map_slots=2,
        reduce_slots=2,
        cost_model=cost_model if cost_model is not None else CostModel(),
        executor=executor,
    )


def run_progressive(
    dataset: Dataset,
    config: ApproachConfig,
    machines: int,
    *,
    strategy: str = "ours",
    seed: int = 0,
    label: Optional[str] = None,
    cost_model: Optional[CostModel] = None,
    executor: Optional[Executor] = None,
) -> CurveRun:
    """Run our approach (or a scheduler variant) and build its curve."""
    cluster = make_cluster(machines, cost_model=cost_model, executor=executor)
    result = ProgressiveER(config, cluster, strategy=strategy, seed=seed).run(dataset)
    curve = recall_curve(
        result.duplicate_events, dataset, end_time=result.total_time
    )
    return CurveRun(
        label=label if label is not None else f"ours[{strategy}]",
        curve=curve,
        result=result,
    )


def run_basic(
    dataset: Dataset,
    config: BasicConfig,
    machines: int,
    *,
    label: Optional[str] = None,
    cost_model: Optional[CostModel] = None,
    executor: Optional[Executor] = None,
) -> CurveRun:
    """Run the Basic baseline and build its curve."""
    cluster = make_cluster(machines, cost_model=cost_model, executor=executor)
    result = BasicER(config, cluster).run(dataset)
    curve = recall_curve(
        result.duplicate_events, dataset, end_time=result.total_time
    )
    threshold = config.popcorn_threshold
    default_label = f"basic[{'F' if threshold is None else threshold}]"
    return CurveRun(
        label=label if label is not None else default_label,
        curve=curve,
        result=result,
    )


def sample_times(end_time: float, points: int = 12) -> List[float]:
    """Evenly spaced sampling times over (0, end_time] for curve tables."""
    if points < 1:
        raise ValueError("need at least one sample point")
    return [end_time * (i + 1) / points for i in range(points)]


__all__ = [
    "CurveRun",
    "make_cluster",
    "run_progressive",
    "run_basic",
    "sample_times",
]
