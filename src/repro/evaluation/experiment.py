"""Experiment harness: the unified run API behind the benchmarks and CLI.

Describe a run with a :class:`RunSpec`, execute it with
:class:`ExperimentRun`, get a :class:`RunResult` back — the same shape for
the progressive approach, its scheduler variants, and the Basic baseline.
Everything is seeded and deterministic::

    spec = RunSpec(dataset, citeseer_config(), machines=10)
    run = ExperimentRun(spec).run()
    run.final_recall, run.total_time, run.found_pairs

Attach a :class:`~repro.observability.Tracer` or
:class:`~repro.observability.MetricsRegistry` to the spec and the run is
recorded (see :mod:`repro.observability`); several specs may share one
tracer — each run is labeled via ``begin_run``.

``ExperimentRun`` is a thin one-shot wrapper over the
:class:`~repro.service.session.ResolverSession` seam — the same driver
path the incremental :class:`~repro.service.resolver.ResolverService`
uses, so batch experiments and streaming sessions share executor pools,
balance strategies, fault plans and tracer plumbing.  (The pre-RunSpec
``make_cluster`` / ``run_progressive`` / ``run_basic`` helpers, deprecated
since PR 2, are gone — see the CHANGELOG.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import List, Optional, Set, Union

from ..baselines.basic import BasicConfig, BasicResult
from ..core.balance import BALANCE_STRATEGIES
from ..core.config import ApproachConfig
from ..core.driver import ProgressiveResult
from ..core.metablock import METABLOCK_MODES
from ..data.dataset import Dataset
from ..data.entity import Pair
from ..mapreduce.clock import CostModel
from ..mapreduce.executors import BACKENDS, Executor
from ..mapreduce.faults import FaultPlan
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import Tracer
from ..service.session import PAPER_MAP_SLOTS, PAPER_REDUCE_SLOTS, ResolverSession
from .metrics import RecallCurve

#: Tree schedulers of the progressive approach.
SCHEDULE_STRATEGIES = ("ours", "nosplit", "lpt")


@dataclass
class RunSpec:
    """Declarative description of one experiment run.

    The approach is inferred from ``config``'s type: a
    :class:`~repro.baselines.basic.BasicConfig` runs the Basic baseline, an
    :class:`~repro.core.config.ApproachConfig` runs the progressive
    approach under ``strategy``.

    Specs are validated at construction (see :meth:`validate`): strategy,
    balance, backend and the numeric knobs are checked up front so a typo
    fails with an actionable message instead of a deep-in-engine error.

    Attributes:
        dataset: the dataset to resolve (``None`` is allowed for specs that
            only configure a session, e.g. the incremental service).
        config: approach configuration (selects the approach, see above).
        machines: simulated cluster size (2 map + 2 reduce slots each).
        strategy: tree scheduler for the progressive approach — ``"ours"``,
            ``"nosplit"`` or ``"lpt"`` (ignored by Basic).
        balance: load-balancing post-pass for the progressive approach —
            ``"slack"`` (paper baseline, schedule untouched),
            ``"blocksplit"``, the global ``"pairrange"``, or the
            deprecated ``"pairrange-tree"`` alias (ignored by Basic; see
            :mod:`repro.core.balance`).
        seed: seed for training-sample and cost-factor sampling.
        label: run label for reports and traces (default: derived).
        cost_model: virtual-time cost model (default: :class:`CostModel`).
        backend: execution-backend name (``"serial"`` / ``"process"``),
            used when ``executor`` is not given.
        workers: worker processes for the ``process`` backend.
        executor: explicit executor instance (overrides ``backend``).
        tracer: record spans of this run (shared tracers accumulate).
        metrics: snapshot counters per phase (shared registries accumulate).
        faults: optional :class:`~repro.mapreduce.faults.FaultPlan`
            injecting seeded crashes, stragglers and speculative execution
            into every job of the run.  Deterministic and
            backend-independent; ``None`` (the default) runs fault-free.
        batch_pairs: batched similarity-kernel width for this run (``None``
            keeps the module default; ``1`` forces the scalar path).
        metablock: meta-blocking pre-pass for the progressive approach —
            ``"off"`` (default), ``"bf"`` (block filtering) or ``"wnp"``
            (weighted node pruning); knobs live on the config
            (``metablock_ratio`` / ``metablock_weighting``).  Rejected for
            Basic runs — the baseline has no schedule to prune.
    """

    dataset: Optional[Dataset]
    config: Union[ApproachConfig, BasicConfig]
    machines: int = 10
    strategy: str = "ours"
    balance: str = "slack"
    seed: int = 0
    label: Optional[str] = None
    cost_model: Optional[CostModel] = None
    backend: Optional[str] = None
    workers: Optional[int] = None
    executor: Optional[Executor] = None
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    faults: Optional[FaultPlan] = None
    batch_pairs: Optional[int] = None
    metablock: str = "off"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "RunSpec":
        """Reject incoherent specs with actionable messages.

        Returns ``self`` so callers can chain:
        ``ExperimentRun(spec.validate())``.  Runs automatically at
        construction; call it again after mutating a spec in place.
        """
        problems: List[str] = []
        if not isinstance(self.config, (ApproachConfig, BasicConfig)):
            problems.append(
                f"config must be an ApproachConfig or BasicConfig, got "
                f"{type(self.config).__name__}"
            )
        if not isinstance(self.machines, int) or self.machines < 1:
            problems.append(
                f"machines must be a positive integer, got {self.machines!r}"
            )
        if self.strategy not in SCHEDULE_STRATEGIES:
            problems.append(
                f"unknown strategy {self.strategy!r}; pick one of "
                f"{SCHEDULE_STRATEGIES}"
            )
        if self.balance not in BALANCE_STRATEGIES:
            problems.append(
                f"unknown balance strategy {self.balance!r}; pick one of "
                f"{BALANCE_STRATEGIES}"
            )
        if self.backend is not None and self.backend not in BACKENDS:
            problems.append(
                f"unknown backend {self.backend!r}; pick one of {BACKENDS} "
                "(or pass an explicit executor)"
            )
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            problems.append(
                f"workers must be a positive integer or None, got "
                f"{self.workers!r}"
            )
        if self.batch_pairs is not None and (
            not isinstance(self.batch_pairs, int) or self.batch_pairs < 1
        ):
            problems.append(
                f"batch_pairs must be a positive integer or None, got "
                f"{self.batch_pairs!r} (1 forces the scalar per-pair path)"
            )
        if self.metablock not in METABLOCK_MODES:
            problems.append(
                f"unknown metablock mode {self.metablock!r}; pick one of "
                f"{METABLOCK_MODES}"
            )
        elif self.metablock != "off" and self.is_basic:
            problems.append(
                f"metablock={self.metablock!r} needs the progressive "
                "approach; the Basic baseline has no schedule to prune"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            problems.append(
                f"faults must be a FaultPlan or None, got "
                f"{type(self.faults).__name__}"
            )
        if (
            isinstance(self.config, ApproachConfig)
            and self.balance in ("blocksplit", "pairrange")
            and self.config.routing == "block"
        ):
            problems.append(
                f"balance={self.balance!r} requires tree routing; the naive "
                "block-routing mapper cannot replicate shard groups "
                "(use routing='tree' or balance='slack')"
            )
        if problems:
            raise ValueError("invalid RunSpec: " + "; ".join(problems))
        return self

    @property
    def is_basic(self) -> bool:
        """True when ``config`` selects the Basic baseline."""
        return isinstance(self.config, BasicConfig)

    def resolved_label(self) -> str:
        """The explicit label, or one derived from the approach."""
        if self.label is not None:
            return self.label
        if self.is_basic:
            threshold = self.config.popcorn_threshold
            return f"basic[{'F' if threshold is None else threshold}]"
        if self.metablock != "off":
            return f"ours[{self.strategy}+{self.metablock}]"
        return f"ours[{self.strategy}]"

    def with_label(self, label: str) -> "RunSpec":
        """A copy of this spec under another label."""
        return replace(self, label=label)


@dataclass
class RunResult:
    """One executed run: a labeled recall curve plus the raw result.

    ``result`` is the approach-specific object
    (:class:`~repro.core.driver.ProgressiveResult` or
    :class:`~repro.baselines.basic.BasicResult`); the properties below
    expose the fields every consumer needs without caring which.
    """

    label: str
    curve: RecallCurve
    result: Union[ProgressiveResult, BasicResult, object]
    spec: Optional[RunSpec] = field(default=None, repr=False)
    tracer: Optional[Tracer] = field(default=None, repr=False)
    metrics: Optional[MetricsRegistry] = field(default=None, repr=False)

    @property
    def final_recall(self) -> float:
        return self.curve.final_recall

    @property
    def total_time(self) -> float:
        return self.curve.end_time

    @property
    def duplicate_events(self):
        """The run's first-discovery duplicate events, in time order."""
        return self.result.duplicate_events

    @cached_property
    def found_pairs(self) -> Set[Pair]:
        """Distinct duplicate pairs the run reported (computed once)."""
        return self.result.found_pairs


#: Backwards-compatible alias: the first three fields (label, curve,
#: result) are exactly the old ``CurveRun``'s, so existing keyword and
#: positional constructions keep working.
CurveRun = RunResult


class ExperimentRun:
    """Executes one :class:`RunSpec` on a freshly built session.

    A thin one-shot wrapper over :class:`ResolverSession`: construction
    builds the session (and its cluster — kept explicit so callers can
    inspect :attr:`cluster`, or re-run the same spec on a fresh cluster by
    constructing a new ``ExperimentRun``); :meth:`run` delegates to
    :meth:`ResolverSession.run_one_shot`.
    """

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        self.session = ResolverSession(spec)
        self.cluster = self.session.cluster

    def run(self) -> RunResult:
        """Execute the run and build its recall curve."""
        return self.session.run_one_shot()


def sample_times(end_time: float, points: int = 12) -> List[float]:
    """Evenly spaced sampling times over (0, end_time] for curve tables."""
    if points < 1:
        raise ValueError("need at least one sample point")
    return [end_time * (i + 1) / points for i in range(points)]


__all__ = [
    "RunSpec",
    "RunResult",
    "ExperimentRun",
    "CurveRun",
    "PAPER_MAP_SLOTS",
    "PAPER_REDUCE_SLOTS",
    "SCHEDULE_STRATEGIES",
    "sample_times",
]
