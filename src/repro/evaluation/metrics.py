"""Progressiveness metrics: recall curves, the Qty quality function
(Equation 1), and recall speedup (Figure 11)."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..data.dataset import Dataset
from ..data.entity import Pair
from ..mapreduce.types import Event


@dataclass
class RecallCurve:
    """Duplicate recall as a step function of execution time.

    ``times[i]`` is the moment the ``i``-th *correct* duplicate pair was
    reported; ``recalls[i]`` the recall right after.  The curve starts at
    (0, 0) implicitly.
    """

    times: List[float]
    recalls: List[float]
    num_true_pairs: int
    end_time: float

    @property
    def final_recall(self) -> float:
        """Recall at the end of the run."""
        return self.recalls[-1] if self.recalls else 0.0

    def recall_at(self, time: float) -> float:
        """Recall achieved by ``time``."""
        index = bisect.bisect_right(self.times, time)
        return self.recalls[index - 1] if index > 0 else 0.0

    def time_to(self, recall: float) -> Optional[float]:
        """Earliest time the curve reaches ``recall`` (None if it never does)."""
        index = bisect.bisect_left(self.recalls, recall)
        return self.times[index] if index < len(self.times) else None

    def sample(self, times: Sequence[float]) -> List[Tuple[float, float]]:
        """(time, recall) points at the requested times — bench output."""
        return [(t, self.recall_at(t)) for t in times]

    def area_under(self, horizon: Optional[float] = None) -> float:
        """Normalized area under the recall curve up to ``horizon`` —
        a scalar progressiveness score in [0, 1] (higher = more
        progressive)."""
        end = horizon if horizon is not None else self.end_time
        if end <= 0:
            return 0.0
        area = 0.0
        previous_time = 0.0
        previous_recall = 0.0
        for time, recall in zip(self.times, self.recalls):
            if time >= end:
                break
            area += (time - previous_time) * previous_recall
            previous_time, previous_recall = time, recall
        area += (end - previous_time) * previous_recall
        return area / end


def recall_curve(
    events: Sequence[Event], dataset: Dataset, *, end_time: Optional[float] = None
) -> RecallCurve:
    """Build the recall-versus-time curve from duplicate events.

    Only *correct* pairs (present in the ground truth) advance the curve;
    repeated reports of the same pair are ignored.
    """
    if not dataset.has_ground_truth:
        raise ValueError("recall needs a dataset with ground truth")
    true_pairs = dataset.true_pairs
    total = len(true_pairs)
    seen: Set[Pair] = set()
    times: List[float] = []
    recalls: List[float] = []
    last = 0.0
    for event in sorted(events, key=lambda e: e.time):
        last = max(last, event.time)
        pair = event.payload
        if pair in seen or pair not in true_pairs:
            continue
        seen.add(pair)
        times.append(event.time)
        recalls.append(len(seen) / total if total else 0.0)
    return RecallCurve(
        times=times,
        recalls=recalls,
        num_true_pairs=total,
        end_time=end_time if end_time is not None else last,
    )


def quality(
    events: Sequence[Event],
    dataset: Dataset,
    cost_samples: Sequence[float],
    weighting: Callable[[int, int], float],
) -> float:
    """``Qty(Result)`` — Equation 1.

    Args:
        events: duplicate events (payload = pair, time = cost).
        dataset: ground truth provider (defines ``N``).
        cost_samples: the sampled cost values ``C`` (increasing).
        weighting: ``W`` as a function of (interval index, |C|).

    Returns:
        the weighted, normalized quality in [0, 1].
    """
    if list(cost_samples) != sorted(cost_samples):
        raise ValueError("cost_samples must be increasing")
    true_pairs = dataset.true_pairs
    total = len(true_pairs)
    if total == 0:
        return 0.0
    seen: Set[Pair] = set()
    counts = [0] * len(cost_samples)
    for event in sorted(events, key=lambda e: e.time):
        pair = event.payload
        if pair in seen or pair not in true_pairs:
            continue
        seen.add(pair)
        index = bisect.bisect_left(cost_samples, event.time)
        if index < len(cost_samples):
            counts[index] += 1
    k = len(cost_samples)
    return sum(weighting(i, k) * counts[i] for i in range(k)) / total


def recall_speedup(
    reference: RecallCurve, candidate: RecallCurve, recall: float
) -> Optional[float]:
    """Figure 11's speedup: time the reference needs to reach ``recall``
    divided by the candidate's time (None when either never reaches it)."""
    t_ref = reference.time_to(recall)
    t_cand = candidate.time_to(recall)
    if t_ref is None or t_cand is None or t_cand <= 0:
        return None
    return t_ref / t_cand


def pair_precision(found: Set[Pair], dataset: Dataset) -> float:
    """Fraction of reported pairs that are true duplicates."""
    if not found:
        return 1.0
    true_pairs = dataset.true_pairs
    return sum(1 for pair in found if pair in true_pairs) / len(found)


__all__ = [
    "RecallCurve",
    "recall_curve",
    "quality",
    "recall_speedup",
    "pair_precision",
]
