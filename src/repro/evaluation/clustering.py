"""Transitive closure of duplicate pairs into entity clusters.

The paper's ER model applies "a clustering technique such as transitive
closure" after similarity computation to group duplicates into disjoint
clusters.  Implemented as a classic union-find with path compression and
union by size.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..data.entity import Pair


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._size: Dict[int, int] = {}

    def find(self, item: int) -> int:
        """Representative of ``item``'s set (item is added if unseen)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were separate."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def groups(self) -> List[List[int]]:
        """All sets with at least two members, sorted for determinism."""
        members: Dict[int, List[int]] = {}
        for item in self._parent:
            members.setdefault(self.find(item), []).append(item)
        result = [sorted(group) for group in members.values() if len(group) > 1]
        result.sort()
        return result


def transitive_closure(pairs: Iterable[Pair]) -> List[List[int]]:
    """Cluster entity ids by the transitive closure of duplicate pairs."""
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    return uf.groups()


__all__ = ["UnionFind", "transitive_closure"]
