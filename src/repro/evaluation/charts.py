"""ASCII chart rendering for recall curves.

The paper's figures are recall-versus-time line plots; this module renders
the same curves in plain text so examples and benchmark reports can show
shape, not just samples — with no plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence

from .experiment import CurveRun
from .metrics import RecallCurve

#: Plot symbols assigned to curves in order.
_SYMBOLS = "o*x+#@%&"


def ascii_chart(
    runs: Sequence[CurveRun],
    *,
    width: int = 72,
    height: int = 18,
    horizon: float | None = None,
    title: str = "",
) -> str:
    """Render recall curves as an ASCII chart.

    Args:
        runs: labeled curves (at most eight).
        width: plot-area columns (x = time).
        height: plot-area rows (y = recall 0..1).
        horizon: x-axis range; default: the shortest run's end.
        title: optional heading.

    Returns:
        the chart with y labels, x label, and a legend.
    """
    if not runs:
        raise ValueError("need at least one curve")
    if len(runs) > len(_SYMBOLS):
        raise ValueError(f"at most {len(_SYMBOLS)} curves, got {len(runs)}")
    if width < 10 or height < 4:
        raise ValueError("chart too small to be readable")
    end = horizon if horizon is not None else min(r.total_time for r in runs)
    if end <= 0:
        raise ValueError("horizon must be positive")

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for run, symbol in zip(runs, _SYMBOLS):
        for column in range(width):
            t = end * (column + 1) / width
            recall = run.curve.recall_at(t)
            row = height - 1 - min(height - 1, int(recall * (height - 1) + 0.5))
            if grid[row][column] == " ":
                grid[row][column] = symbol

    lines: List[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        y_value = 1.0 - index / (height - 1)
        label = f"{y_value:4.2f} |" if index % 3 == 0 or index == height - 1 else "     |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      0{' ' * (width - 12)}t={end:,.0f}")
    legend = "  ".join(
        f"{symbol}={run.label}" for run, symbol in zip(runs, _SYMBOLS)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


__all__ = ["ascii_chart"]
