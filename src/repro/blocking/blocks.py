"""Blocks, block trees and forests (paper Section III-A).

Applying a main blocking function and its sub-blocking functions organizes
the blocks of one family as a forest: each main block is the root of a tree
whose children are the sub-blocks produced by the next-level function.
Trees are mutable because schedule generation *splits* sub-trees off
overflowed trees (Section IV-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..data.entity import pairs_count


@dataclass(eq=False)
class Block:
    """One block: a set of entities sharing a blocking key at some level.

    Structural fields are filled by the blocker; the mutable ``parent`` /
    ``children`` links define the tree and are edited by tree splits.

    Attributes:
        family: blocking-function family (``"X"``).
        level: function level that produced this block (1 = main block).
        key: the blocking key value of this block.
        entity_ids: sorted ids of the entities in the block.  *Structural*
            blocks (built from Job-1 statistics, which do not ship entity
            memberships) leave this empty and set ``size_override`` instead.
        size_override: explicit cardinality for structural blocks.
    """

    family: str
    level: int
    key: str
    entity_ids: Tuple[int, ...]
    parent: Optional["Block"] = field(default=None, repr=False)
    children: List["Block"] = field(default_factory=list, repr=False)
    size_override: Optional[int] = None

    def __post_init__(self) -> None:
        ids = tuple(self.entity_ids)
        if list(ids) != sorted(set(ids)):
            raise ValueError("entity_ids must be sorted and unique")
        self.entity_ids = ids
        if self.size_override is not None and self.size_override < 0:
            raise ValueError("size_override cannot be negative")

    # -- identity ----------------------------------------------------------

    @property
    def uid(self) -> str:
        """Unique block id, e.g. ``"X2:the "``."""
        return f"{self.family}{self.level}:{self.key}"

    @property
    def size(self) -> int:
        """Block cardinality ``|X^i_j|``."""
        if self.size_override is not None:
            return self.size_override
        return len(self.entity_ids)

    @property
    def total_pairs(self) -> int:
        """``Pairs(|X^i_j|)``."""
        return pairs_count(self.size)

    # -- tree structure ------------------------------------------------------

    @property
    def is_root(self) -> bool:
        """Whether this block is the root of its (possibly split-off) tree."""
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        """Whether this block has no child blocks."""
        return not self.children

    @property
    def root(self) -> "Block":
        """The root of the tree this block currently belongs to."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def descendants(self) -> Iterator["Block"]:
        """All strict descendants, depth-first."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def subtree(self) -> Iterator["Block"]:
        """This block and all descendants, depth-first pre-order."""
        yield self
        yield from self.descendants()

    def subtree_bottom_up(self) -> Iterator["Block"]:
        """This block and all descendants, children before parents."""
        for child in self.children:
            yield from child.subtree_bottom_up()
        yield self

    def add_child(self, child: "Block") -> None:
        """Attach ``child`` under this block."""
        if child.parent is not None:
            raise ValueError(f"block {child.uid} already has a parent")
        child.parent = self
        self.children.append(child)

    def detach_child(self, child: "Block") -> "Block":
        """Remove the edge to ``child``, making it the root of its own tree.

        This is the paper's tree split: the detached sub-tree must then be
        resolved fully (its new root loses the "parent will finish the
        remainder" guarantee).
        """
        if child not in self.children:
            raise ValueError(f"{child.uid} is not a child of {self.uid}")
        self.children.remove(child)
        child.parent = None
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Block({self.uid}, size={self.size}, children={len(self.children)})"


@dataclass
class Forest:
    """All trees produced by one main blocking function (Section III-A)."""

    family: str
    roots: List[Block]

    def blocks(self) -> Iterator[Block]:
        """All blocks in the forest, tree by tree, depth-first."""
        for root in self.roots:
            yield from root.subtree()

    @property
    def num_blocks(self) -> int:
        """Total number of blocks across all trees."""
        return sum(1 for _ in self.blocks())

    def __iter__(self) -> Iterator[Block]:
        return iter(self.roots)

    def __len__(self) -> int:
        return len(self.roots)


def tree_of(block: Block) -> Block:
    """``TreeOf(X^k_l)``: the root of the tree a block currently belongs to."""
    return block.root


__all__ = ["Block", "Forest", "tree_of"]
