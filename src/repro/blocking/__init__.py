"""Blocking: functions, schemes, blocks, trees, forests, and the
progressive blocker (paper Sections II-A and III-A)."""

from .blocker import build_forest, build_forests, group_by_key, main_block_key_of
from .blocks import Block, Forest, tree_of
from .functions import (
    BlockingFunction,
    BlockingScheme,
    books_scheme,
    citeseer_scheme,
    linkage_scheme,
    people_scheme,
    prefix_function,
)

__all__ = [
    "Block",
    "Forest",
    "tree_of",
    "BlockingFunction",
    "BlockingScheme",
    "prefix_function",
    "citeseer_scheme",
    "books_scheme",
    "people_scheme",
    "linkage_scheme",
    "group_by_key",
    "build_forest",
    "build_forests",
    "main_block_key_of",
]
