"""Blocking functions and schemes.

A *main* blocking function ``X1`` partitions the dataset into disjoint
blocks using a blocking key (paper Section II-A); each main function is
refined by *sub-blocking* functions ``X2, X3, ...`` that subdivide every
block into child blocks (progressive blocking, Section III-A).  Functions
are grouped into *families* (X, Y, Z, ...); the family order inside a
:class:`BlockingScheme` is the total-order dominance relation on main
functions (Section IV-A): earlier family == more dominating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..data.entity import Entity

KeyFunction = Callable[[Entity], Optional[str]]


@dataclass(frozen=True)
class BlockingFunction:
    """One blocking function (main or sub).

    Attributes:
        family: family letter, e.g. ``"X"``.
        level: 1 for the main function, 2.. for sub-blocking functions.
        key_of: maps an entity to its blocking key; ``None`` excludes the
            entity from this family (e.g. missing attribute).
        description: human-readable key definition for reports.
    """

    family: str
    level: int
    key_of: KeyFunction = field(compare=False)
    description: str = ""

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``X1`` or ``Y2``."""
        return f"{self.family}{self.level}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockingFunction({self.name}: {self.description})"


def prefix_function(
    family: str, level: int, attribute: str, length: int
) -> BlockingFunction:
    """An attribute-prefix blocking function, e.g. ``title.sub(0, 2)``.

    This is the key shape used throughout the paper's Table II.  Keys are
    lower-cased and whitespace-normalized so trivially different spellings
    still share a block; entities missing the attribute (or with a value
    shorter than one character) are excluded from the family.
    """
    if length <= 0:
        raise ValueError(f"prefix length must be positive, got {length}")

    def key_of(entity: Entity) -> Optional[str]:
        value = entity.get(attribute)
        if not value:
            return None
        normalized = " ".join(value.lower().split())
        if not normalized:
            return None
        return normalized[:length]

    return BlockingFunction(
        family=family,
        level=level,
        key_of=key_of,
        description=f"{attribute}.sub(0, {length})",
    )


@dataclass(frozen=True)
class BlockingScheme:
    """A complete blocking configuration.

    Attributes:
        families: per-family function lists, each sorted by level starting
            at 1 with no gaps.  The *dict order* of the families encodes the
            dominance total order: the first family dominates all others
            (``Index`` = 1), and so on.  This matches the paper's
            ``X1 ≻ Y1 ≻ Z1`` for both datasets.
    """

    families: Dict[str, List[BlockingFunction]]

    def __post_init__(self) -> None:
        if not self.families:
            raise ValueError("a blocking scheme needs at least one family")
        for family, functions in self.families.items():
            if not functions:
                raise ValueError(f"family {family!r} has no functions")
            levels = [f.level for f in functions]
            if levels != list(range(1, len(functions) + 1)):
                raise ValueError(
                    f"family {family!r} levels must be 1..n without gaps, got {levels}"
                )
            for f in functions:
                if f.family != family:
                    raise ValueError(
                        f"function {f.name} filed under family {family!r}"
                    )

    @property
    def family_order(self) -> List[str]:
        """Families in dominance order (most dominating first)."""
        return list(self.families)

    def index_of(self, family: str) -> int:
        """``Index(X1)``: 1-based dominance rank of a family."""
        return self.family_order.index(family) + 1

    def main_function(self, family: str) -> BlockingFunction:
        """The level-1 function of ``family``."""
        return self.families[family][0]

    def sub_functions(self, family: str) -> List[BlockingFunction]:
        """The sub-blocking functions of ``family`` (levels 2..)."""
        return self.families[family][1:]

    def depth(self, family: str) -> int:
        """``N(X1)``: number of sub-blocking functions of ``family``."""
        return len(self.families[family]) - 1

    @property
    def num_families(self) -> int:
        """``n``: number of main blocking functions."""
        return len(self.families)


def citeseer_scheme() -> BlockingScheme:
    """Table II, CiteSeerX column: X = title (2/4/8), Y = abstract (3/5),
    Z = venue (3/5); dominance X ≻ Y ≻ Z."""
    return BlockingScheme(
        families={
            "X": [
                prefix_function("X", 1, "title", 2),
                prefix_function("X", 2, "title", 4),
                prefix_function("X", 3, "title", 8),
            ],
            "Y": [
                prefix_function("Y", 1, "abstract", 3),
                prefix_function("Y", 2, "abstract", 5),
            ],
            "Z": [
                prefix_function("Z", 1, "venue", 3),
                prefix_function("Z", 2, "venue", 5),
            ],
        }
    )


def books_scheme() -> BlockingScheme:
    """Table II, OL-Books column: X = title (3/5/8), Y = authors (3/5),
    Z = publisher (3/5); dominance X ≻ Y ≻ Z."""
    return BlockingScheme(
        families={
            "X": [
                prefix_function("X", 1, "title", 3),
                prefix_function("X", 2, "title", 5),
                prefix_function("X", 3, "title", 8),
            ],
            "Y": [
                prefix_function("Y", 1, "authors", 3),
                prefix_function("Y", 2, "authors", 5),
            ],
            "Z": [
                prefix_function("Z", 1, "publisher", 3),
                prefix_function("Z", 2, "publisher", 5),
            ],
        }
    )


def people_scheme() -> BlockingScheme:
    """Blocking for the census-style people family: X = surname (2/4),
    Y = city (3/5), Z = state (2); dominance X > Y > Z (the paper's Table I
    discussion: blocking on state yields few, unnecessarily large blocks,
    so it is the least dominating)."""
    return BlockingScheme(
        families={
            "X": [
                prefix_function("X", 1, "surname", 2),
                prefix_function("X", 2, "surname", 4),
            ],
            "Y": [
                prefix_function("Y", 1, "city", 3),
                prefix_function("Y", 2, "city", 5),
            ],
            "Z": [
                prefix_function("Z", 1, "state", 2),
            ],
        }
    )


def linkage_scheme() -> BlockingScheme:
    """Blocking for clean-clean linkage over the *shared* attributes of the
    two source schemas (title / authors / year): X = title (3/5/8),
    Y = authors (3/5), Z = year (4); dominance X ≻ Y ≻ Z.

    Both sources project their records onto these keys, so cross-source
    matches land in the same blocks regardless of which catalogue a record
    came from — the schema-mapping half of record linkage."""
    return BlockingScheme(
        families={
            "X": [
                prefix_function("X", 1, "title", 3),
                prefix_function("X", 2, "title", 5),
                prefix_function("X", 3, "title", 8),
            ],
            "Y": [
                prefix_function("Y", 1, "authors", 3),
                prefix_function("Y", 2, "authors", 5),
            ],
            "Z": [
                prefix_function("Z", 1, "year", 4),
            ],
        }
    )


__all__ = [
    "BlockingFunction",
    "BlockingScheme",
    "KeyFunction",
    "prefix_function",
    "citeseer_scheme",
    "books_scheme",
    "people_scheme",
    "linkage_scheme",
]
