"""Progressive blocking: building the forests (paper Section III-A).

The blocker applies each family's main function to partition the dataset
into main blocks, then recursively subdivides every block with the next
sub-blocking function, producing one tree per main block.

Pruning rules:

* blocks with fewer than two entities generate no pairs and are dropped
  (a singleton child simply stays covered by its parent's full resolution);
* a child block identical to its parent (the sub-key did not subdivide
  anything) is dropped — resolving it would duplicate the parent's work
  with zero information gain.  This is the structural half of the paper's
  block-elimination technique.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..data.dataset import Dataset
from ..data.entity import Entity
from .blocks import Block, Forest
from .functions import BlockingFunction, BlockingScheme


def group_by_key(
    entities: Sequence[Entity], function: BlockingFunction
) -> Dict[str, List[int]]:
    """Group entity ids by the function's blocking key (``None`` keys are
    excluded from the family)."""
    groups: Dict[str, List[int]] = {}
    for entity in entities:
        key = function.key_of(entity)
        if key is None:
            continue
        groups.setdefault(key, []).append(entity.id)
    return groups


def build_forest(dataset: Dataset, scheme: BlockingScheme, family: str) -> Forest:
    """Build the forest of one family over ``dataset``."""
    functions = scheme.families[family]
    main = functions[0]
    groups = group_by_key(dataset.entities, main)
    roots: List[Block] = []
    for key in sorted(groups):
        ids = sorted(groups[key])
        if len(ids) < 2:
            continue
        root = Block(family=family, level=1, key=key, entity_ids=tuple(ids))
        _subdivide(root, dataset, functions, level_index=1)
        roots.append(root)
    return Forest(family=family, roots=roots)


def _subdivide(
    parent: Block,
    dataset: Dataset,
    functions: Sequence[BlockingFunction],
    level_index: int,
) -> None:
    """Recursively attach child blocks produced by the next sub-function."""
    if level_index >= len(functions):
        return
    function = functions[level_index]
    members = [dataset.entity(eid) for eid in parent.entity_ids]
    groups = group_by_key(members, function)
    for key in sorted(groups):
        ids = sorted(groups[key])
        if len(ids) < 2:
            continue
        if len(ids) == parent.size:
            # The sub-key failed to subdivide; recurse *through* this level
            # so deeper functions still get a chance to split the block.
            _subdivide(parent, dataset, functions, level_index + 1)
            return
        child = Block(
            family=parent.family,
            level=function.level,
            key=key,
            entity_ids=tuple(ids),
        )
        parent.add_child(child)
        _subdivide(child, dataset, functions, level_index + 1)


def build_forests(dataset: Dataset, scheme: BlockingScheme) -> Dict[str, Forest]:
    """Build every family's forest, in dominance order."""
    return {family: build_forest(dataset, scheme, family) for family in scheme.family_order}


def main_block_key_of(
    entity: Entity, scheme: BlockingScheme, family: str
) -> Optional[str]:
    """The entity's main-block key under ``family`` (None = unblocked)."""
    return scheme.main_function(family).key_of(entity)


__all__ = ["group_by_key", "build_forest", "build_forests", "main_block_key_of"]
