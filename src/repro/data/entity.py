"""The entity model.

An entity (paper Section II-A) is a record with an identifier and a flat set
of string-valued attributes.  Entities are hashable by id so they can live
in sets and dictionaries throughout the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple


@dataclass(frozen=True)
class Entity:
    """One dataset record.

    Attributes:
        id: unique integer identifier within its dataset.
        attrs: attribute name -> string value; missing attributes are
            simply absent (or empty strings).
        source: origin tag for multi-source scenarios (clean-clean
            linkage tags records ``"a"`` / ``"b"``); ``None`` for the
            ordinary single-source dirty setting.
    """

    id: int
    attrs: Dict[str, str] = field(hash=False, compare=False, default_factory=dict)
    source: Optional[str] = field(hash=False, compare=False, default=None)

    def get(self, attribute: str, default: str = "") -> str:
        """Value of ``attribute`` (empty string when missing)."""
        return self.attrs.get(attribute, default)

    def __hash__(self) -> int:
        return hash(self.id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entity):
            return NotImplemented
        return self.id == other.id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = ", ".join(f"{k}={v!r}" for k, v in list(self.attrs.items())[:3])
        return f"Entity({self.id}, {shown})"


Pair = Tuple[int, int]


def pair_key(a: int, b: int) -> Pair:
    """Canonical (sorted) form of an entity-id pair.

    All modules exchange pairs in this form so that ``(3, 7)`` and ``(7, 3)``
    are the same pair everywhere (sets, ground truth, events).
    """
    if a == b:
        raise ValueError(f"a pair needs two distinct entities, got ({a}, {b})")
    return (a, b) if a < b else (b, a)


def entity_pair_key(e1: Entity, e2: Entity) -> Pair:
    """Canonical pair key of two entities."""
    return pair_key(e1.id, e2.id)


def pairs_count(n: int) -> int:
    """``Pairs(n) = n * (n - 1) / 2`` — number of unordered pairs (paper IV-A)."""
    if n < 0:
        raise ValueError(f"block size cannot be negative: {n}")
    return n * (n - 1) // 2


def cross_pairs_count(counts: Iterable[int]) -> int:
    """Unordered pairs spanning *different* groups of the given sizes.

    In clean-clean linkage a block with per-source sizes ``(n_a, n_b)``
    yields ``n_a * n_b`` comparable pairs; same-source pairs can never be
    duplicates and are vetoed at zero cost.
    """
    sizes = list(counts)
    return pairs_count(sum(sizes)) - sum(pairs_count(n) for n in sizes)


__all__ = [
    "Entity",
    "Pair",
    "pair_key",
    "entity_pair_key",
    "pairs_count",
    "cross_pairs_count",
]
