"""Cluster-based synthetic dataset generation.

Real ER benchmarks consist of latent real-world objects each represented by
one or more dirty records.  The generator reproduces that structure: it
draws clean base records from a schema-specific factory, decides a cluster
size per object (most objects are singletons; duplicated objects get a
geometric number of extra copies), dirties the copies with a
:class:`~repro.data.perturb.Perturber`, shuffles everything, and records the
ground-truth clustering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .dataset import Dataset
from .entity import Entity
from .perturb import Perturber

RecordFactory = Callable[[random.Random], Dict[str, str]]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs shared by all synthetic dataset families.

    Attributes:
        num_entities: total number of records to produce.
        duplicate_ratio: probability that a real-world object has more than
            one record.
        extra_copy_p: geometric parameter for the number of extra copies of
            a duplicated object; the expected cluster size of a duplicated
            object is ``1 + 1 / extra_copy_p`` (capped by ``max_cluster``).
        max_cluster: hard cap on cluster size.
        seed: RNG seed; everything downstream is derived from it.
    """

    num_entities: int
    duplicate_ratio: float = 0.35
    extra_copy_p: float = 0.6
    max_cluster: int = 6
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_entities <= 0:
            raise ValueError("num_entities must be positive")
        if not 0.0 <= self.duplicate_ratio <= 1.0:
            raise ValueError("duplicate_ratio must be in [0, 1]")
        if not 0.0 < self.extra_copy_p <= 1.0:
            raise ValueError("extra_copy_p must be in (0, 1]")
        if self.max_cluster < 2:
            raise ValueError("max_cluster must be at least 2")


def generate_dataset(
    name: str,
    config: GeneratorConfig,
    record_factory: RecordFactory,
    perturber: Perturber,
) -> Dataset:
    """Produce a :class:`Dataset` with ground-truth clusters.

    The first record of a cluster is the clean base; subsequent copies are
    perturbed versions of it.  Record order is shuffled so duplicates are
    not adjacent in the input file (which would trivialise blocking).
    """
    rng = random.Random(config.seed)
    records: List[Tuple[Dict[str, str], int]] = []  # (attrs, cluster id)
    cluster_id = 0
    while len(records) < config.num_entities:
        base = record_factory(rng)
        size = _cluster_size(rng, config)
        size = min(size, config.num_entities - len(records))
        records.append((dict(base), cluster_id))
        for _ in range(size - 1):
            records.append((perturber.perturb_record(rng, base), cluster_id))
        cluster_id += 1

    rng.shuffle(records)
    entities: List[Entity] = []
    clusters: Dict[int, int] = {}
    for eid, (attrs, cid) in enumerate(records):
        entities.append(Entity(id=eid, attrs=attrs))
        clusters[eid] = cid
    return Dataset(entities=entities, clusters=clusters, name=name)


def _cluster_size(rng: random.Random, config: GeneratorConfig) -> int:
    """Sample the number of records representing one real-world object."""
    if rng.random() >= config.duplicate_ratio:
        return 1
    extra = 1
    while extra < config.max_cluster - 1 and rng.random() > config.extra_copy_p:
        extra += 1
    return 1 + extra


__all__ = ["GeneratorConfig", "RecordFactory", "generate_dataset"]
