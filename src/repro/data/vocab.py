"""Vocabulary pools for the synthetic dataset generators.

The generators must reproduce the statistical properties of the paper's real
datasets that drive its effects, most importantly *block-size skew*: blocking
on a short title prefix produces a few very large blocks (titles starting
with "the", "a", "an", "on" ...) and a long tail of small ones.  The pools
below are sampled Zipf-style (rank-weighted) so the skew arises naturally.
"""

from __future__ import annotations

import random
from typing import List, Sequence

# Leading words for publication/book titles.  Listed roughly by natural
# frequency; Zipf sampling over this order produces the heavy skew on the
# first characters that the paper's X1 (title-prefix) blocking sees.
TITLE_LEADS: Sequence[str] = (
    "the", "a", "an", "on", "toward", "towards", "analysis", "analyzing",
    "automatic", "adaptive", "efficient", "effective", "scalable", "parallel",
    "distributed", "progressive", "incremental", "online", "optimal",
    "learning", "mining", "modeling", "improving", "exploring", "evaluating",
    "understanding", "detecting", "estimating", "querying", "indexing",
    "ranking", "clustering", "classification", "prediction", "fast",
    "robust", "dynamic", "static", "novel", "generalized", "probabilistic",
    "statistical", "semantic", "structural", "temporal", "spatial",
)

TITLE_NOUNS: Sequence[str] = (
    "entity", "resolution", "data", "database", "databases", "query",
    "queries", "graph", "graphs", "network", "networks", "stream", "streams",
    "cloud", "cluster", "clusters", "index", "indexes", "record", "records",
    "linkage", "matching", "deduplication", "integration", "cleaning",
    "quality", "warehouse", "warehouses", "schema", "schemas", "ontology",
    "knowledge", "web", "text", "document", "documents", "image", "images",
    "sensor", "sensors", "workload", "workloads", "transaction",
    "transactions", "storage", "memory", "cache", "partitioning",
    "replication", "consistency", "availability", "scalability", "latency",
    "throughput", "algorithm", "algorithms", "model", "models", "framework",
    "frameworks", "system", "systems", "approach", "approaches", "method",
    "methods", "technique", "techniques", "evaluation", "benchmark",
    "benchmarks", "optimization", "learning", "inference", "search",
    "retrieval", "recommendation", "summarization", "visualization",
)

TITLE_CONNECTORS: Sequence[str] = (
    "for", "of", "in", "with", "using", "over", "under", "via", "from",
    "through", "against", "beyond", "without", "across",
)

FIRST_NAMES: Sequence[str] = (
    "james", "john", "robert", "michael", "william", "david", "richard",
    "joseph", "thomas", "charles", "mary", "patricia", "jennifer", "linda",
    "elizabeth", "barbara", "susan", "jessica", "sarah", "karen", "wei",
    "lei", "jing", "yan", "hao", "chen", "yuki", "hiro", "ravi", "anil",
    "priya", "amit", "fatima", "omar", "ali", "hassan", "maria", "jose",
    "carlos", "ana", "luis", "pierre", "marie", "jean", "hans", "anna",
    "olga", "ivan", "dmitri", "sven",
)

LAST_NAMES: Sequence[str] = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "chen", "wang", "li", "zhang", "liu", "yang",
    "huang", "zhao", "wu", "zhou", "kumar", "singh", "patel", "gupta",
    "sharma", "kim", "park", "choi", "tanaka", "suzuki", "sato", "müller",
    "schmidt", "schneider", "fischer", "weber", "meyer", "ivanov", "petrov",
)

VENUES: Sequence[str] = (
    "international conference on data engineering",
    "international conference on very large data bases",
    "acm sigmod international conference on management of data",
    "international conference on extending database technology",
    "acm symposium on cloud computing",
    "international world wide web conference",
    "acm sigkdd conference on knowledge discovery and data mining",
    "international conference on information and knowledge management",
    "international conference on machine learning",
    "conference on innovative data systems research",
    "ieee transactions on knowledge and data engineering",
    "vldb journal",
    "acm transactions on database systems",
    "information systems",
    "journal of data and information quality",
    "international conference on database systems for advanced applications",
    "international conference on scientific and statistical database management",
    "international conference on web search and data mining",
    "symposium on principles of database systems",
    "workshop on quality in databases",
)

PUBLISHERS: Sequence[str] = (
    "penguin books", "random house", "harpercollins", "simon and schuster",
    "macmillan", "hachette", "oxford university press",
    "cambridge university press", "springer", "elsevier", "wiley",
    "mcgraw hill", "pearson", "oreilly media", "mit press",
    "princeton university press", "vintage", "doubleday", "scribner",
    "houghton mifflin", "norton", "bloomsbury", "faber and faber", "knopf",
    "bantam", "dover publications", "prentice hall", "addison wesley",
    "crc press", "academic press",
)

LANGUAGES: Sequence[str] = (
    "english", "spanish", "french", "german", "chinese", "japanese",
    "russian", "portuguese", "italian", "arabic", "hindi", "korean",
)

BOOK_FORMATS: Sequence[str] = (
    "paperback", "hardcover", "ebook", "audiobook", "library binding",
    "mass market paperback",
)


def zipf_choice(rng: random.Random, pool: Sequence[str], skew: float = 1.0) -> str:
    """Pick an element with probability proportional to ``1 / rank**skew``.

    The pool order defines the ranks, so earlier elements are more frequent.
    """
    weights = [1.0 / (rank**skew) for rank in range(1, len(pool) + 1)]
    return rng.choices(pool, weights=weights, k=1)[0]


def make_title(rng: random.Random, *, min_words: int = 3, max_words: int = 8) -> str:
    """Compose a publication/book-style title with a Zipf-skewed lead word."""
    length = rng.randint(min_words, max_words)
    words: List[str] = [zipf_choice(rng, TITLE_LEADS, skew=1.6)]
    for i in range(1, length):
        if i % 2 == 0 and rng.random() < 0.4:
            words.append(rng.choice(TITLE_CONNECTORS))
        else:
            words.append(rng.choice(TITLE_NOUNS))
    return " ".join(words)


def make_person(rng: random.Random) -> str:
    """Compose a "first last" author name."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def make_author_list(rng: random.Random, *, max_authors: int = 4) -> str:
    """Compose a comma-separated author list (1..max_authors names)."""
    count = rng.randint(1, max_authors)
    return ", ".join(make_person(rng) for _ in range(count))


def make_abstract(rng: random.Random, *, sentences: int = 2) -> str:
    """Compose a short pseudo-abstract from the title vocabulary.

    Kept deliberately compact (~90-140 characters): the paper compares only
    the first ≤ 350 abstract characters anyway, and comparison cost in the
    simulator is charged by length, so short abstracts keep real runtime
    proportional to virtual cost without changing any result shape.
    """
    parts: List[str] = []
    for _ in range(sentences):
        length = rng.randint(6, 10)
        words = [zipf_choice(rng, TITLE_LEADS, skew=0.8)]
        for i in range(1, length):
            pool = TITLE_CONNECTORS if (i % 3 == 0 and rng.random() < 0.5) else TITLE_NOUNS
            words.append(rng.choice(pool))
        parts.append(" ".join(words))
    return ". ".join(parts)


__all__ = [
    "TITLE_LEADS",
    "TITLE_NOUNS",
    "TITLE_CONNECTORS",
    "FIRST_NAMES",
    "LAST_NAMES",
    "VENUES",
    "PUBLISHERS",
    "LANGUAGES",
    "BOOK_FORMATS",
    "zipf_choice",
    "make_title",
    "make_person",
    "make_author_list",
    "make_abstract",
]
