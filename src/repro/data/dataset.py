"""Dataset container with ground truth.

A :class:`Dataset` bundles the entities with the ground-truth clustering
used by the evaluation (duplicate recall needs the true duplicate-pair set
``N`` from Equation 1).
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

from .entity import Entity, Pair, pair_key, pairs_count


@dataclass
class Dataset:
    """A collection of entities plus optional ground truth.

    Attributes:
        entities: all records, in stable order.
        clusters: ground-truth mapping entity id -> cluster id.  Entities
            sharing a cluster id refer to the same real-world object.
        name: human-readable label used in reports.
    """

    entities: List[Entity]
    clusters: Dict[int, int] = field(default_factory=dict)
    name: str = "dataset"

    def __post_init__(self) -> None:
        ids = [e.id for e in self.entities]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate entity ids in dataset")
        self._by_id: Dict[int, Entity] = {e.id: e for e in self.entities}
        self._true_pairs: Optional[FrozenSet[Pair]] = None

    def __len__(self) -> int:
        return len(self.entities)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self.entities)

    def entity(self, entity_id: int) -> Entity:
        """Look an entity up by id."""
        return self._by_id[entity_id]

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self._by_id

    # -- ground truth ----------------------------------------------------

    @property
    def has_ground_truth(self) -> bool:
        """Whether ground-truth clusters were provided."""
        return bool(self.clusters)

    @property
    def true_pairs(self) -> FrozenSet[Pair]:
        """The set of all ground-truth duplicate pairs (computed lazily).

        This is ``N`` in Equation 1: every unordered pair of entities
        belonging to the same ground-truth cluster.
        """
        if self._true_pairs is None:
            members: Dict[int, List[int]] = {}
            for eid, cid in self.clusters.items():
                members.setdefault(cid, []).append(eid)
            pairs: Set[Pair] = set()
            for group in members.values():
                group.sort()
                for a, b in itertools.combinations(group, 2):
                    pairs.add(pair_key(a, b))
            self._true_pairs = frozenset(pairs)
        return self._true_pairs

    @property
    def num_true_pairs(self) -> int:
        """``N``: total number of ground-truth duplicate pairs."""
        return len(self.true_pairs)

    def is_true_pair(self, pair: Pair) -> bool:
        """Whether ``pair`` is a ground-truth duplicate."""
        return pair in self.true_pairs

    def attributes(self) -> List[str]:
        """Union of attribute names across entities, in first-seen order."""
        seen: Dict[str, None] = {}
        for e in self.entities:
            for name in e.attrs:
                seen.setdefault(name)
        return list(seen)

    # -- persistence -------------------------------------------------------

    def to_csv(self, path: Path | str) -> None:
        """Write the dataset (and cluster ids, when present) to a CSV file.

        Multi-source datasets (any entity with a ``source`` tag) get an
        extra ``source`` column ahead of the attribute columns so the tag
        round-trips through :meth:`from_csv`.
        """
        path = Path(path)
        columns = self.attributes()
        tagged = any(e.source is not None for e in self.entities)
        with path.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            fixed = ["id", "cluster", "source"] if tagged else ["id", "cluster"]
            writer.writerow([*fixed, *columns])
            for e in self.entities:
                cluster = self.clusters.get(e.id, "")
                row = [e.id, cluster]
                if tagged:
                    row.append(e.source or "")
                writer.writerow([*row, *[e.get(c) for c in columns]])

    @classmethod
    def from_csv(cls, path: Path | str, name: str = "dataset") -> "Dataset":
        """Load a dataset previously written by :meth:`to_csv`."""
        path = Path(path)
        entities: List[Entity] = []
        clusters: Dict[int, int] = {}
        with path.open(newline="", encoding="utf-8") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            if header[:2] != ["id", "cluster"]:
                raise ValueError(f"unrecognized dataset CSV header: {header[:2]}")
            tagged = header[2:3] == ["source"]
            skip = 3 if tagged else 2
            columns = header[skip:]
            for row in reader:
                eid = int(row[0])
                if row[1] != "":
                    clusters[eid] = int(row[1])
                source = (row[2] or None) if tagged else None
                attrs = {c: v for c, v in zip(columns, row[skip:]) if v != ""}
                entities.append(Entity(id=eid, attrs=attrs, source=source))
        return cls(entities=entities, clusters=clusters, name=name)

    def sample(self, fraction: float, *, seed: int = 0) -> "Dataset":
        """A reproducible random subsample, keeping ground truth consistent.

        Used to build the training dataset for the duplicate-probability
        model (Section VI-A4).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        import random

        rng = random.Random(seed)
        count = max(1, int(round(len(self.entities) * fraction)))
        chosen = rng.sample(self.entities, count)
        chosen.sort(key=lambda e: e.id)
        ids = {e.id for e in chosen}
        clusters = {eid: cid for eid, cid in self.clusters.items() if eid in ids}
        return Dataset(entities=chosen, clusters=clusters, name=f"{self.name}-sample")


__all__ = ["Dataset"]
