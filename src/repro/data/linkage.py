"""Two-source clean-clean record linkage dataset.

Clean-clean linkage resolves records across two internally
duplicate-free sources: a CiteSeerX-like publication catalogue (source
``"a"``: title, authors, year, venue, abstract) and an OL-Books-like
catalogue (source ``"b"``: title, authors, year, publisher, isbn).  Both
schemas share the ``title`` / ``authors`` / ``year`` attributes, which is
what :func:`~repro.blocking.functions.linkage_scheme` blocks on — the
classic "map two schemas onto shared blocking keys" setting.

Each latent object appears at most once per source, so every true pair is
cross-source by construction and a same-source comparison can never be a
duplicate.  ``mode="linkage"`` configurations therefore restrict candidate
enumeration to cross-source pairs only (see
:mod:`repro.core.metablock` and ``ApproachConfig.mode``).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .dataset import Dataset
from .entity import Entity
from .perturb import NoiseProfile, Perturber
from .vocab import (
    PUBLISHERS,
    VENUES,
    make_abstract,
    make_author_list,
    make_title,
    zipf_choice,
)

#: The two source tags.  ``Entity.source`` carries one of these.
SOURCE_A = "a"
SOURCE_B = "b"


def _base_record(rng: random.Random) -> Dict[str, str]:
    """The shared identity of one latent object (both schemas project it)."""
    return {
        "title": make_title(rng, min_words=2, max_words=7),
        "authors": make_author_list(rng, max_authors=3),
        "year": str(rng.randint(1960, 2016)),
        "venue": zipf_choice(rng, VENUES, skew=0.9),
        "abstract": make_abstract(rng),
        "publisher": zipf_choice(rng, PUBLISHERS, skew=1.0),
        "isbn": "978" + "".join(str(rng.randint(0, 9)) for _ in range(10)),
    }


def linkage_perturber() -> Perturber:
    """Cross-source noise on the shared attributes.

    Within a source every record is clean (no intra-source duplicates to
    confuse), but the *other* source's rendition of the same object drifts:
    typos past a protected title prefix, author-list truncation, the odd
    wrong year.  Tuned so blocking still co-locates most true pairs while
    matching stays non-trivial.
    """
    return Perturber(
        {
            "title": NoiseProfile(
                typo_rate=0.9, truncate_prob=0.06, swap_prob=0.08,
                missing_prob=0.0, protect_prefix=6, apply_prob=0.8,
            ),
            "authors": NoiseProfile(
                typo_rate=1.0, truncate_prob=0.12, swap_prob=0.25,
                missing_prob=0.04, protect_prefix=4, apply_prob=0.6,
            ),
            "year": NoiseProfile(
                typo_rate=0.15, truncate_prob=0.0, swap_prob=0.0,
                missing_prob=0.04, protect_prefix=0, apply_prob=0.2,
            ),
        }
    )


_A_FIELDS = ("title", "authors", "year", "venue", "abstract")
_B_FIELDS = ("title", "authors", "year", "publisher", "isbn")
_SHARED_FIELDS = ("title", "authors", "year")


def make_linkage(
    num_entities: int = 3000,
    *,
    seed: int = 13,
    overlap: float = 0.55,
) -> Dataset:
    """Build the two-source linkage dataset at the requested total scale.

    ``overlap`` is the probability that a latent object appears in *both*
    sources (one record each); the rest land in exactly one source,
    alternating pseudo-randomly.  Ground-truth clusters are the latent
    objects, so ``Dataset.true_pairs`` contains exactly the cross-source
    matches of the overlapping objects.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    rng = random.Random(seed)
    perturber = linkage_perturber()
    records: List[Tuple[Dict[str, str], str, int]] = []  # (attrs, source, cluster)
    cluster_id = 0
    while len(records) < num_entities:
        base = _base_record(rng)
        in_both = rng.random() < overlap and len(records) + 2 <= num_entities
        sources = (SOURCE_A, SOURCE_B) if in_both else (
            SOURCE_A if rng.random() < 0.5 else SOURCE_B,
        )
        for source in sources:
            fields = _A_FIELDS if source == SOURCE_A else _B_FIELDS
            attrs = {name: base[name] for name in fields}
            if source == SOURCE_B:
                # Source B is the "other" rendition: drift the shared
                # attributes so cross-source matching is non-trivial.
                noisy = perturber.perturb_record(
                    rng, {name: attrs[name] for name in _SHARED_FIELDS}
                )
                attrs.update(noisy)
            records.append((attrs, source, cluster_id))
        cluster_id += 1

    rng.shuffle(records)
    entities: List[Entity] = []
    clusters: Dict[int, int] = {}
    for eid, (attrs, source, cid) in enumerate(records):
        entities.append(Entity(id=eid, attrs=attrs, source=source))
        clusters[eid] = cid
    return Dataset(entities=entities, clusters=clusters, name="linkage-two-source")


__all__ = ["SOURCE_A", "SOURCE_B", "linkage_perturber", "make_linkage"]
