"""Synthetic skewed publication dataset for load-balancing studies.

Real blocking-key distributions are heavy-tailed; this generator makes the
tail adversarial: a *hub* fraction of the records shares one constant title
prefix, so a short title-prefix blocking function (see
:func:`repro.core.config.skewed_config`) produces one giant block holding
most of the dataset next to many small ones — the data-skew workload of
Kolb et al.'s BlockSplit/PairRange analysis.

The hub decision is made per *cluster* (in the clean record, before
perturbation), and the title perturbation protects a prefix longer than
the hub marker, so duplicates never straddle the hub boundary.
"""

from __future__ import annotations

import random
from typing import Dict

from .dataset import Dataset
from .generator import GeneratorConfig, generate_dataset
from .perturb import NoiseProfile, Perturber
from .vocab import VENUES, make_abstract, make_author_list, make_title, zipf_choice

#: Constant title prefix shared by every hub record.  Two characters long —
#: exactly the prefix length `skewed_config` blocks on.
HUB_PREFIX = "zz"


def skewed_perturber() -> Perturber:
    """Publication noise with a swap/truncate-free title.

    Word swaps or truncation could move a title's first characters, pushing
    a duplicate out of its cluster's blocking key; keeping title noise to
    protected-prefix typos makes block membership stable, so the giant hub
    block really contains every hub duplicate.
    """
    return Perturber(
        {
            "title": NoiseProfile(
                typo_rate=1.0, truncate_prob=0.0, swap_prob=0.0,
                missing_prob=0.0, protect_prefix=6, apply_prob=0.85,
            ),
            "abstract": NoiseProfile(
                typo_rate=1.5, truncate_prob=0.10, swap_prob=0.12,
                missing_prob=0.12, protect_prefix=5, apply_prob=0.6,
            ),
            "venue": NoiseProfile(
                typo_rate=0.6, truncate_prob=0.15, swap_prob=0.05,
                missing_prob=0.10, protect_prefix=5, apply_prob=0.4,
            ),
            "authors": NoiseProfile(
                typo_rate=1.0, truncate_prob=0.10, swap_prob=0.30,
                missing_prob=0.05, protect_prefix=0, apply_prob=0.6,
            ),
            "year": NoiseProfile(
                typo_rate=0.2, truncate_prob=0.0, swap_prob=0.0,
                missing_prob=0.05, protect_prefix=0, apply_prob=0.25,
            ),
        }
    )


def make_skewed(
    num_entities: int = 2000,
    *,
    seed: int = 0,
    hub_fraction: float = 0.8,
    duplicate_ratio: float = 0.3,
) -> Dataset:
    """Build the skewed dataset: ``hub_fraction`` of the clean records get
    the :data:`HUB_PREFIX` title marker, the rest keep natural titles."""
    if not 0.0 <= hub_fraction <= 1.0:
        raise ValueError(f"hub_fraction must be in [0, 1], got {hub_fraction}")

    def record(rng: random.Random) -> Dict[str, str]:
        title = make_title(rng)
        if rng.random() < hub_fraction:
            title = f"{HUB_PREFIX} {title}"
        return {
            "title": title,
            "abstract": make_abstract(rng),
            "venue": zipf_choice(rng, VENUES, skew=0.9),
            "authors": make_author_list(rng),
            "year": str(rng.randint(1985, 2016)),
        }

    config = GeneratorConfig(
        num_entities=num_entities,
        duplicate_ratio=duplicate_ratio,
        seed=seed,
    )
    return generate_dataset("skewed-publications", config, record, skewed_perturber())


__all__ = ["make_skewed", "skewed_perturber", "HUB_PREFIX"]
