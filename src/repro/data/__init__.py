"""Data substrate: entity model, datasets with ground truth, and the two
synthetic dataset families standing in for CiteSeerX and OL-Books."""

from .books import books_perturber, make_books
from .citeseer import citeseer_perturber, make_citeseer
from .dataset import Dataset
from .entity import (
    Entity,
    Pair,
    cross_pairs_count,
    entity_pair_key,
    pair_key,
    pairs_count,
)
from .generator import GeneratorConfig, RecordFactory, generate_dataset
from .linkage import SOURCE_A, SOURCE_B, linkage_perturber, make_linkage
from .people import make_people, people_perturber
from .perturb import NoiseProfile, Perturber
from .skewed import make_skewed, skewed_perturber
from .profile import (
    AttributeProfile,
    DatasetProfile,
    PrefixBlockingProfile,
    format_profile,
    profile_dataset,
    suggest_blocking_order,
)

__all__ = [
    "Entity",
    "Pair",
    "pair_key",
    "entity_pair_key",
    "pairs_count",
    "cross_pairs_count",
    "Dataset",
    "GeneratorConfig",
    "RecordFactory",
    "generate_dataset",
    "NoiseProfile",
    "Perturber",
    "AttributeProfile",
    "PrefixBlockingProfile",
    "DatasetProfile",
    "profile_dataset",
    "suggest_blocking_order",
    "format_profile",
    "make_citeseer",
    "citeseer_perturber",
    "make_books",
    "books_perturber",
    "make_people",
    "people_perturber",
    "make_skewed",
    "skewed_perturber",
    "make_linkage",
    "linkage_perturber",
    "SOURCE_A",
    "SOURCE_B",
]
