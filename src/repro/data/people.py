"""Synthetic people/census dataset (third dataset family).

The paper's running example (Table I) is a person table — name + state —
and person records are the classic ER benchmark domain (Febrl, NC voters).
This family generates census-style records: name, surname, street address,
city, state, zip, birth year, phone.  It is not used by the paper's
evaluation but exercises the pipeline on a schema with many short,
low-entropy attributes — the opposite regime from publications/books.
"""

from __future__ import annotations

import random
from typing import Dict

from .dataset import Dataset
from .generator import GeneratorConfig, generate_dataset
from .perturb import NoiseProfile, Perturber
from .vocab import FIRST_NAMES, LAST_NAMES, zipf_choice

_STREET_TYPES = ("street", "avenue", "road", "lane", "drive", "court", "place")
_STREET_NAMES = (
    "oak", "maple", "cedar", "pine", "elm", "washington", "lake", "hill",
    "park", "main", "church", "mill", "spring", "ridge", "river", "sunset",
    "highland", "forest", "meadow", "walnut",
)
_CITIES = (
    "springfield", "franklin", "clinton", "greenville", "bristol", "salem",
    "fairview", "madison", "georgetown", "arlington", "ashland", "dover",
    "hudson", "milton", "newport", "oxford",
)
_STATES = (
    "ca", "tx", "fl", "ny", "pa", "il", "oh", "ga", "nc", "mi", "nj", "va",
    "wa", "az", "ma", "tn", "in", "mo", "md", "wi", "co", "mn", "sc", "al",
    "la", "ky", "or", "ok", "ct", "ut", "ia", "nv", "ar", "ms", "ks", "nm",
    "ne", "wv", "id", "hi", "nh", "me", "mt", "ri", "de", "sd", "nd", "ak",
    "vt", "wy",
)


def _person_record(rng: random.Random) -> Dict[str, str]:
    """One clean census-style person record."""
    first = zipf_choice(rng, FIRST_NAMES, skew=0.9)
    last = zipf_choice(rng, LAST_NAMES, skew=0.9)
    street = (
        f"{rng.randint(1, 9999)} {rng.choice(_STREET_NAMES)} "
        f"{rng.choice(_STREET_TYPES)}"
    )
    return {
        "name": first,
        "surname": last,
        "street": street,
        "city": zipf_choice(rng, _CITIES, skew=0.8),
        "state": zipf_choice(rng, _STATES, skew=0.7),
        "zip": f"{rng.randint(10000, 99999)}",
        "birth_year": str(rng.randint(1930, 2005)),
        "phone": f"{rng.randint(200, 999)}-{rng.randint(200, 999)}-{rng.randint(1000, 9999)}",
    }


def people_perturber() -> Perturber:
    """Noise tuned for person records: typo-prone names, frequently missing
    phone/zip, stable state (like the paper's Table I, where the Charles /
    Gharles typo lives in the name and the state is clean)."""
    return Perturber(
        {
            "name": NoiseProfile(
                typo_rate=0.8, truncate_prob=0.10, swap_prob=0.0,
                missing_prob=0.02, protect_prefix=2, apply_prob=0.7,
            ),
            "surname": NoiseProfile(
                typo_rate=0.8, truncate_prob=0.05, swap_prob=0.0,
                missing_prob=0.0, protect_prefix=2, apply_prob=0.6,
            ),
            "street": NoiseProfile(
                typo_rate=1.2, truncate_prob=0.15, swap_prob=0.15,
                missing_prob=0.10, protect_prefix=0, apply_prob=0.6,
            ),
            "city": NoiseProfile(
                typo_rate=0.6, truncate_prob=0.05, swap_prob=0.0,
                missing_prob=0.05, protect_prefix=3, apply_prob=0.4,
            ),
            "state": NoiseProfile(
                typo_rate=0.3, truncate_prob=0.0, swap_prob=0.0,
                missing_prob=0.03, protect_prefix=0, apply_prob=0.15,
            ),
            "zip": NoiseProfile(
                typo_rate=0.5, truncate_prob=0.0, swap_prob=0.0,
                missing_prob=0.15, protect_prefix=0, apply_prob=0.3,
            ),
            "birth_year": NoiseProfile(
                typo_rate=0.3, truncate_prob=0.0, swap_prob=0.0,
                missing_prob=0.10, protect_prefix=0, apply_prob=0.2,
            ),
            "phone": NoiseProfile(
                typo_rate=0.8, truncate_prob=0.0, swap_prob=0.0,
                missing_prob=0.25, protect_prefix=0, apply_prob=0.4,
            ),
        }
    )


def make_people(
    num_entities: int = 5000,
    *,
    seed: int = 13,
    duplicate_ratio: float = 0.4,
) -> Dataset:
    """Build the people-like dataset at the requested scale."""
    config = GeneratorConfig(
        num_entities=num_entities,
        duplicate_ratio=duplicate_ratio,
        seed=seed,
    )
    return generate_dataset("people-like", config, _person_record, people_perturber())


__all__ = ["make_people", "people_perturber"]
