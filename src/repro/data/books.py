"""Synthetic OL-Books-like book dataset.

Stands in for the 30M-entity Open Library dump used in Sections VI-B3/VI-B4
(unavailable offline).  Schema: eight attributes (title, authors, publisher,
year, isbn, pages, language, format), matching the paper's statement that
OL-Books records are compared on eight attributes with edit distance or
exact matching.  The blocking functions use title (X), authors (Y) and
publisher (Z) prefixes.
"""

from __future__ import annotations

import random
from typing import Dict

from .dataset import Dataset
from .generator import GeneratorConfig, generate_dataset
from .perturb import NoiseProfile, Perturber
from .vocab import BOOK_FORMATS, LANGUAGES, PUBLISHERS, make_author_list, make_title, zipf_choice


def _isbn(rng: random.Random) -> str:
    """A 13-digit pseudo-ISBN."""
    return "978" + "".join(str(rng.randint(0, 9)) for _ in range(10))


def _book_record(rng: random.Random) -> Dict[str, str]:
    """One clean book record."""
    return {
        "title": make_title(rng, min_words=2, max_words=7),
        "authors": make_author_list(rng, max_authors=3),
        "publisher": zipf_choice(rng, PUBLISHERS, skew=1.0),
        "year": str(rng.randint(1950, 2016)),
        "isbn": _isbn(rng),
        "pages": str(rng.randint(40, 1200)),
        "language": zipf_choice(rng, LANGUAGES, skew=1.3),
        "format": rng.choice(BOOK_FORMATS),
    }


def books_perturber() -> Perturber:
    """Noise tuned for book records; heavier skew and more missing values
    than publications (library metadata quality)."""
    return Perturber(
        {
            "title": NoiseProfile(
                typo_rate=1.0, truncate_prob=0.10, swap_prob=0.10,
                missing_prob=0.0, protect_prefix=6, apply_prob=0.8,
            ),
            "authors": NoiseProfile(
                typo_rate=1.2, truncate_prob=0.12, swap_prob=0.25,
                missing_prob=0.08, protect_prefix=5, apply_prob=0.6,
            ),
            "publisher": NoiseProfile(
                typo_rate=0.8, truncate_prob=0.25, swap_prob=0.05,
                missing_prob=0.12, protect_prefix=5, apply_prob=0.4,
            ),
            "year": NoiseProfile(typo_rate=0.15, missing_prob=0.08, truncate_prob=0.0, swap_prob=0.0, apply_prob=0.3),
            "isbn": NoiseProfile(typo_rate=0.3, missing_prob=0.25, truncate_prob=0.0, swap_prob=0.0, apply_prob=0.3),
            "pages": NoiseProfile(typo_rate=0.2, missing_prob=0.20, truncate_prob=0.0, swap_prob=0.0, apply_prob=0.4),
            "language": NoiseProfile(typo_rate=0.1, missing_prob=0.10, truncate_prob=0.0, swap_prob=0.0, apply_prob=0.2),
            "format": NoiseProfile(typo_rate=0.1, missing_prob=0.20, truncate_prob=0.0, swap_prob=0.0, apply_prob=0.3),
        }
    )


def make_books(
    num_entities: int = 9000,
    *,
    seed: int = 11,
    duplicate_ratio: float = 0.30,
) -> Dataset:
    """Build the OL-Books-like dataset at the requested scale."""
    config = GeneratorConfig(
        num_entities=num_entities,
        duplicate_ratio=duplicate_ratio,
        seed=seed,
    )
    return generate_dataset("ol-books-like", config, _book_record, books_perturber())


__all__ = ["make_books", "books_perturber"]
