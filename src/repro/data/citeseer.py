"""Synthetic CiteSeerX-like publication dataset.

Stands in for the 1.5M-entity CiteSeerX dump used in Sections VI-B1/VI-B2
(unavailable offline).  Schema: title, abstract, venue, authors, year — the
paper's blocking functions use title (X), abstract (Y) and venue (Z)
prefixes, and its match function compares title, abstract (first ≤ 350
characters) and venue with edit distance.
"""

from __future__ import annotations

import random
from typing import Dict

from .generator import GeneratorConfig, generate_dataset
from .dataset import Dataset
from .perturb import NoiseProfile, Perturber
from .vocab import VENUES, make_abstract, make_author_list, make_title, zipf_choice


def _publication_record(rng: random.Random) -> Dict[str, str]:
    """One clean publication record."""
    return {
        "title": make_title(rng),
        "abstract": make_abstract(rng),
        "venue": zipf_choice(rng, VENUES, skew=0.9),
        "authors": make_author_list(rng),
        "year": str(rng.randint(1985, 2016)),
    }


def citeseer_perturber() -> Perturber:
    """Noise tuned for publication records.

    Titles keep a short protected prefix (duplicate papers rarely differ in
    the first characters of the title), abstracts are noisier and often
    missing, venues get abbreviated.
    """
    return Perturber(
        {
            "title": NoiseProfile(
                typo_rate=1.0, truncate_prob=0.04, swap_prob=0.08,
                missing_prob=0.0, protect_prefix=6, apply_prob=0.85,
            ),
            "abstract": NoiseProfile(
                typo_rate=1.5, truncate_prob=0.10, swap_prob=0.12,
                missing_prob=0.12, protect_prefix=5, apply_prob=0.6,
            ),
            "venue": NoiseProfile(
                typo_rate=0.6, truncate_prob=0.15, swap_prob=0.05,
                missing_prob=0.10, protect_prefix=5, apply_prob=0.4,
            ),
            "authors": NoiseProfile(
                typo_rate=1.0, truncate_prob=0.10, swap_prob=0.30,
                missing_prob=0.05, protect_prefix=0, apply_prob=0.6,
            ),
            "year": NoiseProfile(
                typo_rate=0.2, truncate_prob=0.0, swap_prob=0.0,
                missing_prob=0.05, protect_prefix=0, apply_prob=0.25,
            ),
        }
    )


def make_citeseer(
    num_entities: int = 6000,
    *,
    seed: int = 7,
    duplicate_ratio: float = 0.35,
) -> Dataset:
    """Build the CiteSeerX-like dataset at the requested scale."""
    config = GeneratorConfig(
        num_entities=num_entities,
        duplicate_ratio=duplicate_ratio,
        seed=seed,
    )
    return generate_dataset("citeseerx-like", config, _publication_record, citeseer_perturber())


__all__ = ["make_citeseer", "citeseer_perturber"]
