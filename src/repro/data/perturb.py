"""Noise model: turning a clean record into a dirty duplicate.

Duplicate entities in real datasets differ by typos, truncation, missing
values, reordered words, and OCR-style character confusions (e.g. the
paper's toy pair "Charles"/"Gharles").  The :class:`Perturber` applies a
configurable mix of those operations; its strength parameters are what the
match-function thresholds are calibrated against.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

# Visually/typographically confusable character groups (OCR-style noise).
_CONFUSIONS: Dict[str, str] = {
    "c": "g", "g": "c", "o": "0", "0": "o", "l": "1", "1": "l",
    "i": "j", "j": "i", "m": "n", "n": "m", "u": "v", "v": "u",
    "s": "z", "z": "s", "e": "a", "a": "e",
}

_ALPHABET = string.ascii_lowercase


def typo_substitute(rng: random.Random, text: str) -> str:
    """Replace one character, preferring a confusable counterpart."""
    if not text:
        return text
    pos = rng.randrange(len(text))
    ch = text[pos]
    repl = _CONFUSIONS.get(ch.lower())
    if repl is None or rng.random() < 0.3:
        repl = rng.choice(_ALPHABET)
    return text[:pos] + repl + text[pos + 1 :]


def typo_delete(rng: random.Random, text: str) -> str:
    """Drop one character."""
    if len(text) <= 1:
        return text
    pos = rng.randrange(len(text))
    return text[:pos] + text[pos + 1 :]


def typo_insert(rng: random.Random, text: str) -> str:
    """Insert one random character."""
    pos = rng.randrange(len(text) + 1)
    return text[:pos] + rng.choice(_ALPHABET) + text[pos:]


def typo_transpose(rng: random.Random, text: str) -> str:
    """Swap two adjacent characters."""
    if len(text) < 2:
        return text
    pos = rng.randrange(len(text) - 1)
    return text[:pos] + text[pos + 1] + text[pos] + text[pos + 2 :]


def truncate(rng: random.Random, text: str, *, min_keep: int = 4) -> str:
    """Cut the tail of the string (abbreviated titles, cropped fields)."""
    if len(text) <= min_keep:
        return text
    keep = rng.randint(min_keep, len(text))
    return text[:keep].rstrip()


def swap_words(rng: random.Random, text: str) -> str:
    """Swap two adjacent words (author-order or title-word shuffles)."""
    words = text.split()
    if len(words) < 2:
        return text
    pos = rng.randrange(len(words) - 1)
    words[pos], words[pos + 1] = words[pos + 1], words[pos]
    return " ".join(words)


@dataclass(frozen=True)
class NoiseProfile:
    """Perturbation intensity for one attribute.

    Attributes:
        apply_prob: probability that this attribute differs at all between
            the copies.  Real duplicate records rarely disagree on *every*
            field — a citation-parsed paper usually has a mangled title
            but the identical venue string — so most attributes are copied
            verbatim most of the time.
        typo_rate: expected number of character-level edits.
        truncate_prob: probability of truncating the value.
        swap_prob: probability of swapping adjacent words.
        missing_prob: probability of dropping the attribute entirely
            (applied independently of ``apply_prob``).
        protect_prefix: number of leading characters never edited.  Keeping
            a small clean prefix models that duplicates usually still share
            the blocking key of at least one function — without it blocking
            recall would be unrealistically low for *every* function.
    """

    typo_rate: float = 1.0
    truncate_prob: float = 0.1
    swap_prob: float = 0.1
    missing_prob: float = 0.05
    protect_prefix: int = 0
    apply_prob: float = 1.0


class Perturber:
    """Applies attribute-wise noise profiles to produce a dirty copy."""

    def __init__(self, profiles: Dict[str, NoiseProfile], *, default: NoiseProfile | None = None) -> None:
        self._profiles = dict(profiles)
        self._default = default if default is not None else NoiseProfile()

    def profile_for(self, attribute: str) -> NoiseProfile:
        """Noise profile applied to ``attribute``."""
        return self._profiles.get(attribute, self._default)

    def perturb_value(self, rng: random.Random, attribute: str, value: str) -> str | None:
        """Dirty one attribute value; ``None`` means the value goes missing."""
        profile = self.profile_for(attribute)
        if rng.random() < profile.missing_prob:
            return None
        if rng.random() >= profile.apply_prob:
            return value
        head = value[: profile.protect_prefix]
        tail = value[profile.protect_prefix :]
        if rng.random() < profile.truncate_prob:
            tail = truncate(rng, tail)
        if rng.random() < profile.swap_prob:
            tail = swap_words(rng, tail)
        edits = _poisson(rng, profile.typo_rate)
        operations = (typo_substitute, typo_delete, typo_insert, typo_transpose)
        for _ in range(edits):
            op = rng.choice(operations)
            tail = op(rng, tail)
        return head + tail

    def perturb_record(self, rng: random.Random, attrs: Dict[str, str]) -> Dict[str, str]:
        """Dirty a full record; missing attributes are omitted from the result."""
        dirty: Dict[str, str] = {}
        for name, value in attrs.items():
            result = self.perturb_value(rng, name, value)
            if result is not None and result != "":
                dirty[name] = result
        return dirty


def _poisson(rng: random.Random, lam: float) -> int:
    """Sample a small Poisson count (Knuth's method; lam is small here)."""
    if lam <= 0:
        return 0
    import math

    threshold = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


__all__ = [
    "NoiseProfile",
    "Perturber",
    "typo_substitute",
    "typo_delete",
    "typo_insert",
    "typo_transpose",
    "truncate",
    "swap_words",
]
