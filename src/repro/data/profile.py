"""Dataset profiling: the statistics a practitioner needs to pick blocking
functions and anticipate skew.

Section IV-A says the dominance order "can be pre-specified by a domain
expert based on, for instance, the significance of the attributes on which
the blocking functions are defined", and cites adaptive-blocking work for
doing it automatically.  The profiler surfaces exactly those signals:
per-attribute completeness, cardinality, value lengths, and the block-size
skew a prefix function of a given length would produce — including the
share of the dataset landing in the single largest block (the overflowed
trees Section IV-C must split).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .dataset import Dataset
from .entity import pairs_count


@dataclass(frozen=True)
class AttributeProfile:
    """Statistics of one attribute across the dataset.

    Attributes:
        name: attribute name.
        present: entities with a non-empty value.
        missing_rate: fraction of entities lacking the attribute.
        distinct: distinct (normalized) values.
        mean_length: mean value length in characters.
    """

    name: str
    present: int
    missing_rate: float
    distinct: int
    mean_length: float


@dataclass(frozen=True)
class PrefixBlockingProfile:
    """What blocking on ``attribute.sub(0, length)`` would produce.

    Attributes:
        attribute: attribute the key is cut from.
        length: prefix length.
        num_blocks: non-singleton blocks.
        largest_block: cardinality of the biggest block.
        largest_share: fraction of *blocked* entities in the biggest block
            (the overflow-skew signal).
        comparison_pairs: total within-block pairs (the work an exhaustive
            pass over these blocks would do).
    """

    attribute: str
    length: int
    num_blocks: int
    largest_block: int
    largest_share: float
    comparison_pairs: int


@dataclass
class DatasetProfile:
    """Full profile: per-attribute stats plus candidate blocking keys."""

    dataset_name: str
    num_entities: int
    attributes: List[AttributeProfile] = field(default_factory=list)
    blocking: List[PrefixBlockingProfile] = field(default_factory=list)

    def attribute(self, name: str) -> AttributeProfile:
        """Profile of one attribute (KeyError when absent)."""
        for profile in self.attributes:
            if profile.name == name:
                return profile
        raise KeyError(name)


def _normalize(value: str) -> str:
    return " ".join(value.lower().split())


def profile_attribute(dataset: Dataset, name: str) -> AttributeProfile:
    """Compute one attribute's :class:`AttributeProfile`."""
    values = [_normalize(e.get(name)) for e in dataset.entities]
    non_empty = [v for v in values if v]
    total = len(dataset)
    mean_length = sum(len(v) for v in non_empty) / len(non_empty) if non_empty else 0.0
    return AttributeProfile(
        name=name,
        present=len(non_empty),
        missing_rate=1.0 - len(non_empty) / total if total else 0.0,
        distinct=len(set(non_empty)),
        mean_length=mean_length,
    )


def profile_prefix_blocking(
    dataset: Dataset, attribute: str, length: int
) -> PrefixBlockingProfile:
    """Simulate blocking on ``attribute.sub(0, length)``."""
    if length <= 0:
        raise ValueError(f"prefix length must be positive, got {length}")
    counts: Counter = Counter()
    for entity in dataset.entities:
        value = _normalize(entity.get(attribute))
        if value:
            counts[value[:length]] += 1
    blocks = [c for c in counts.values() if c >= 2]
    blocked_total = sum(blocks)
    largest = max(blocks, default=0)
    return PrefixBlockingProfile(
        attribute=attribute,
        length=length,
        num_blocks=len(blocks),
        largest_block=largest,
        largest_share=largest / blocked_total if blocked_total else 0.0,
        comparison_pairs=sum(pairs_count(c) for c in blocks),
    )


def profile_dataset(
    dataset: Dataset,
    *,
    prefix_lengths: Sequence[int] = (2, 3, 5),
    attributes: Optional[Sequence[str]] = None,
) -> DatasetProfile:
    """Profile every attribute and candidate prefix blocking key."""
    names = list(attributes) if attributes is not None else dataset.attributes()
    profile = DatasetProfile(dataset_name=dataset.name, num_entities=len(dataset))
    for name in names:
        profile.attributes.append(profile_attribute(dataset, name))
    for name in names:
        for length in prefix_lengths:
            profile.blocking.append(profile_prefix_blocking(dataset, name, length))
    return profile


def suggest_blocking_order(profile: DatasetProfile, *, length: int = 3) -> List[str]:
    """Rank attributes for the dominance order ``≻_F``.

    Heuristic in the spirit of Section IV-A's discussion: prefer attributes
    that are (i) rarely missing and (ii) produce many, small blocks —
    ``distinct blocks / comparison pairs`` high — because those blocks
    concentrate duplicates.  Returns attribute names, most dominating
    first.
    """
    candidates: Dict[str, float] = {}
    for blocking in profile.blocking:
        if blocking.length != length or blocking.num_blocks == 0:
            continue
        attribute = profile.attribute(blocking.attribute)
        completeness = 1.0 - attribute.missing_rate
        selectivity = blocking.num_blocks / max(1, blocking.comparison_pairs)
        candidates[blocking.attribute] = completeness * selectivity
    return sorted(candidates, key=lambda name: -candidates[name])


def format_profile(profile: DatasetProfile) -> str:
    """Render a profile as a readable two-part report."""
    lines = [
        f"dataset: {profile.dataset_name} ({profile.num_entities} entities)",
        "",
        f"{'attribute':12s} {'missing':>8s} {'distinct':>9s} {'mean len':>9s}",
    ]
    for a in profile.attributes:
        lines.append(
            f"{a.name:12s} {a.missing_rate:8.1%} {a.distinct:9d} {a.mean_length:9.1f}"
        )
    lines.append("")
    lines.append(
        f"{'blocking key':22s} {'blocks':>7s} {'largest':>8s} {'share':>7s} {'pairs':>11s}"
    )
    for b in profile.blocking:
        key = f"{b.attribute}.sub(0, {b.length})"
        lines.append(
            f"{key:22s} {b.num_blocks:7d} {b.largest_block:8d} "
            f"{b.largest_share:7.1%} {b.comparison_pairs:11,d}"
        )
    return "\n".join(lines)


__all__ = [
    "AttributeProfile",
    "PrefixBlockingProfile",
    "DatasetProfile",
    "profile_attribute",
    "profile_prefix_blocking",
    "profile_dataset",
    "suggest_blocking_order",
    "format_profile",
]
