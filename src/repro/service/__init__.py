"""Session-oriented incremental entity resolution.

:class:`ResolverService` is the streaming API over the batch machinery:
submit entity batches, stream newly found pairs, query live clusters, and
snapshot/restore the whole session.  :class:`ResolverSession` is the
driver seam it shares with the one-shot
:class:`~repro.evaluation.experiment.ExperimentRun`.
"""

from .delta import (
    DeltaMapper,
    DeltaPartitioner,
    DeltaPlan,
    DeltaReducer,
    build_delta_job,
    plan_delta,
)
from .resolver import (
    BatchReceipt,
    PairEvent,
    ResolverService,
    config_fingerprint,
)
from .session import ResolverSession, build_cluster
from .store import EntityStore

__all__ = [
    "ResolverService",
    "ResolverSession",
    "BatchReceipt",
    "PairEvent",
    "EntityStore",
    "DeltaPlan",
    "DeltaMapper",
    "DeltaPartitioner",
    "DeltaReducer",
    "plan_delta",
    "build_delta_job",
    "build_cluster",
    "config_fingerprint",
]
