"""Persistent entity store with a blocking-key forest index.

The store is the service's long-lived state: every entity ever submitted,
annotated once with its level-1 blocking keys, plus an inverted index from
``(family, key)`` routes to the member ids of that block.  Submitting a
batch asks the store two questions — *which blocks does this batch touch?*
and *who already lives there?* — both answered from the index without
re-scanning the corpus, which is what keeps the delta path proportional to
the affected blocks rather than the store size.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..blocking.functions import BlockingScheme
from ..data.entity import Entity

#: Separator between family and key in a block route.  Unit-separator keeps
#: routes printable-ish while never colliding with real blocking keys.
ROUTE_SEP = "\x1f"

#: ``(family, key)`` — identifies one level-1 block of the forest.
BlockRoute = Tuple[str, str]


def route_label(route: BlockRoute) -> str:
    """Flat string form of a route, used as the MapReduce shuffle key."""
    return f"{route[0]}{ROUTE_SEP}{route[1]}"


class StoredEntity:
    """One entity at rest: the record, its blocking keys, and its batch.

    ``keys`` maps every family of the scheme to the entity's level-1
    blocking key (``None`` where the family excludes it).  Keys are
    computed exactly once, at admission — the forest never re-blocks.
    """

    __slots__ = ("entity", "keys", "batch")

    def __init__(self, entity: Entity, keys: Dict[str, Optional[str]], batch: int):
        self.entity = entity
        self.keys = keys
        self.batch = batch


class EntityStore:
    """All admitted entities plus the level-1 blocking forest over them."""

    def __init__(self, scheme: BlockingScheme) -> None:
        self.scheme = scheme
        self._entities: Dict[int, StoredEntity] = {}
        self._blocks: Dict[BlockRoute, List[int]] = {}

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self._entities

    def get(self, entity_id: int) -> StoredEntity:
        return self._entities[entity_id]

    def entity_ids(self) -> List[int]:
        return list(self._entities)

    def stored(self) -> Iterable[StoredEntity]:
        return self._entities.values()

    def annotate(self, entity: Entity) -> Dict[str, Optional[str]]:
        """The entity's level-1 blocking key per family (None = excluded)."""
        return {
            family: self.scheme.main_function(family).key_of(entity)
            for family in self.scheme.family_order
        }

    def routes_of(self, keys: Dict[str, Optional[str]]) -> List[BlockRoute]:
        """The block routes a keyed entity belongs to."""
        return [
            (family, key) for family, key in keys.items() if key is not None
        ]

    def members(self, route: BlockRoute) -> List[int]:
        """Ids currently filed under ``route`` (admission order)."""
        return list(self._blocks.get(route, ()))

    def num_blocks(self) -> int:
        return len(self._blocks)

    def admit(self, annotated: Sequence[Tuple[Entity, Dict[str, Optional[str]]]],
              batch: int) -> None:
        """File a batch of pre-annotated entities into the forest.

        Callers must have rejected duplicate ids beforehand; the store
        enforces it again because a corrupted forest is unrecoverable.
        """
        for entity, keys in annotated:
            if entity.id in self._entities:
                raise ValueError(f"entity id {entity.id} already admitted")
            self._entities[entity.id] = StoredEntity(entity, keys, batch)
            for route in self.routes_of(keys):
                self._blocks.setdefault(route, []).append(entity.id)


__all__ = ["ROUTE_SEP", "BlockRoute", "route_label", "StoredEntity", "EntityStore"]
