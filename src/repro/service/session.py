"""The driver seam shared by batch experiments and the incremental service.

A :class:`ResolverSession` owns exactly one configured cluster — executor
backend, fault plan, tracer, metrics, balance strategy — built from a
:class:`~repro.evaluation.experiment.RunSpec`.  Two consumers sit on top:

* :class:`~repro.evaluation.experiment.ExperimentRun` calls
  :meth:`run_one_shot` — the classic resolve-everything batch run;
* :class:`~repro.service.resolver.ResolverService` calls :meth:`run_job`
  per submitted batch — the incremental delta path.

Both go through the same :meth:`~repro.mapreduce.engine.Cluster.run_job`,
so a fault plan stretches delta timelines exactly as it stretches batch
timelines, process pools are reused per job, and tracer spans land in one
timeline regardless of which API drove the work.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..baselines.basic import BasicER
from ..core.driver import ProgressiveER
from ..mapreduce.clock import CostModel
from ..mapreduce.engine import Cluster, JobResult
from ..mapreduce.executors import make_executor
from ..mapreduce.job import MapReduceJob
from ..mechanisms import base as _mechanisms_base
from ..similarity.matchers import similarity_cache_counters

#: Slots per machine of the paper's cluster (Section VI-A1).
PAPER_MAP_SLOTS = 2
PAPER_REDUCE_SLOTS = 2


def build_cluster(spec: "RunSpec") -> Cluster:
    """A paper-shaped cluster configured from the spec."""
    executor = spec.executor
    if executor is None and spec.backend is not None:
        executor = make_executor(spec.backend, spec.workers)
    return Cluster(
        spec.machines,
        map_slots=PAPER_MAP_SLOTS,
        reduce_slots=PAPER_REDUCE_SLOTS,
        cost_model=spec.cost_model if spec.cost_model is not None else CostModel(),
        executor=executor,
        tracer=spec.tracer,
        metrics=spec.metrics,
        faults=spec.faults,
    )


class ResolverSession:
    """One configured cluster plus the drivers that run work on it."""

    def __init__(self, spec: "RunSpec") -> None:
        spec.validate()
        self.spec = spec
        self.cluster = build_cluster(spec)

    # -- shared plumbing ---------------------------------------------------

    def begin_run(self, label: str) -> None:
        """Open a labeled run on the attached tracer/metrics (if any)."""
        if self.spec.tracer is not None:
            self.spec.tracer.begin_run(label)
        if self.spec.metrics is not None:
            self.spec.metrics.begin_run(label)

    def attach_broker(self, broker: Any) -> None:
        """Point the session cluster at a multi-tenant slot broker.

        Many sessions attached to the same
        :class:`~repro.scheduling.scheduler.JobScheduler` share one slot
        pool: each phase of each session's jobs leases capacity from the
        common virtual timeline instead of assuming an idle cluster.
        Pass ``None`` to detach and return to exclusive ownership.
        """
        self.cluster.slot_broker = broker

    def run_job(
        self, job: MapReduceJob, records: Sequence[Any], *, start_time: float = 0.0
    ) -> JobResult:
        """Run one job on the session cluster (delta path entry point)."""
        return self.cluster.run_job(job, records, start_time=start_time)

    # -- the one-shot batch driver ----------------------------------------

    def run_one_shot(self) -> "RunResult":
        """Resolve ``spec.dataset`` end to end and build its recall curve."""
        from ..evaluation.experiment import RunResult
        from ..evaluation.metrics import recall_curve

        spec = self.spec
        if spec.dataset is None:
            raise ValueError(
                "one-shot runs need spec.dataset; the incremental service "
                "is the API for dataset-less sessions"
            )
        label = spec.resolved_label()
        self.begin_run(label)
        previous_width = _mechanisms_base.DEFAULT_BATCH_PAIRS
        if spec.batch_pairs is not None:
            _mechanisms_base.set_default_batch_pairs(spec.batch_pairs)
        try:
            if spec.is_basic:
                result = BasicER(spec.config, self.cluster).run(spec.dataset)
            else:
                result = ProgressiveER(
                    spec.config,
                    self.cluster,
                    strategy=spec.strategy,
                    seed=spec.seed,
                    balance=spec.balance,
                    metablock=spec.metablock,
                ).run(spec.dataset)
        finally:
            if spec.batch_pairs is not None:
                _mechanisms_base.set_default_batch_pairs(previous_width)
        if spec.metrics is not None and getattr(result, "balance", None) is not None:
            spec.metrics.snapshot(
                "balance",
                {
                    f"balance.{name}": value
                    for name, value in result.balance.counter_items().items()
                },
                strategy=result.balance.strategy,
            )
        if spec.metrics is not None:
            # Driver-process matcher statistics at run end.  The memo is
            # reset at every job start (see the job reset hooks), so this
            # snapshot is scoped to the run's final job — it no longer leaks
            # traffic from earlier runs in the same process.  Per-phase
            # worker deltas are already aggregated into the phase snapshots
            # (task payloads carry them home) and remain the complete view.
            spec.metrics.snapshot("matcher", similarity_cache_counters())
        curve = recall_curve(
            result.duplicate_events, spec.dataset, end_time=result.total_time
        )
        return RunResult(
            label=label,
            curve=curve,
            result=result,
            spec=spec,
            tracer=spec.tracer,
            metrics=spec.metrics,
        )


__all__ = [
    "PAPER_MAP_SLOTS",
    "PAPER_REDUCE_SLOTS",
    "build_cluster",
    "ResolverSession",
]
