"""The incremental resolver service: a session-oriented streaming ER API.

A :class:`ResolverService` is a long-lived resolver.  Batches of entities
arrive via :meth:`~ResolverService.submit`; each batch is blocked against
the persistent forest, only the *affected* blocks re-enter resolution (as
one delta MapReduce job on the session cluster), and the found-pair set,
similarity memo and virtual clock persist across batches.  Consumers
stream new pairs with :meth:`~ResolverService.pairs`, query live cluster
membership with :meth:`~ResolverService.cluster_of`, and round-trip the
whole service state with :meth:`~ResolverService.snapshot` /
:meth:`~ResolverService.restore`.

The headline invariant (pinned by the differential-oracle tests): any
partition of N entities into k submit batches yields exactly the final
found-pair set of submitting all N at once — across serial and process
backends, with or without a fault plan.  See :mod:`repro.service.delta`
for why.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.config import ApproachConfig
from ..data.entity import Entity, Pair, pair_key
from ..evaluation.clustering import UnionFind
from ..mapreduce.job import stable_hash
from .delta import build_delta_job, plan_delta
from .session import ResolverSession
from .store import BlockRoute, EntityStore

#: Version tag of the snapshot wire format.
SNAPSHOT_FORMAT = 1

#: Default minimum number of agreeing key families for a candidate pair
#: (clamped to the scheme's family count, so single-family schemes degrade
#: to plain co-blocking).
DEFAULT_MIN_FAMILY_MATCHES = 2


def config_fingerprint(config: ApproachConfig, min_family_matches: int) -> str:
    """A stable digest of everything that shapes the found-pair set.

    Snapshots embed it so :meth:`ResolverService.restore` can refuse a
    config whose blocking keys or match decisions would diverge from the
    state being restored.
    """
    scheme = config.scheme
    parts: List[str] = [f"min_matches={min_family_matches}", f"mode={config.mode}"]
    for family in scheme.family_order:
        functions = scheme.families[family]
        parts.append(
            f"{family}:" + ",".join(f"{f.level}|{f.description}" for f in functions)
        )
    matcher = config.matcher
    parts.append(f"threshold={matcher.threshold!r}")
    for rule in matcher.rules:
        parts.append(
            f"rule={rule.attribute}|{rule.comparator}|{rule.weight!r}|{rule.max_chars!r}"
        )
    return f"{stable_hash(tuple(parts)):016x}"


@dataclass(frozen=True)
class PairEvent:
    """One found duplicate pair, with its position in the service stream.

    ``seq`` is a strictly increasing cursor (1-based) — hand the last seen
    value back to :meth:`ResolverService.pairs` to stream only news.
    ``time`` is the global virtual time of the discovery.
    """

    seq: int
    pair: Pair
    batch: int
    time: float


@dataclass(frozen=True)
class BatchReceipt:
    """What one :meth:`ResolverService.submit` call did.

    Attributes:
        batch: 1-based batch number.
        added: entities admitted from this batch.
        affected_blocks: level-1 blocks containing at least one new entity
            (only these re-entered resolution).
        planned_pairs: candidate-pair upper bound the placement planned for.
        comparisons: similarity decisions actually made.
        duplicates: new duplicate pairs found by this batch.
        pairs: those pairs, in discovery order.
        start_time / end_time: the batch's global virtual-time window.
        first_seq / last_seq: stream-cursor range of the new pairs
            (``first_seq > last_seq`` when the batch found nothing).
    """

    batch: int
    added: int
    affected_blocks: int
    planned_pairs: int
    comparisons: int
    duplicates: int
    pairs: Tuple[Pair, ...]
    start_time: float
    end_time: float
    first_seq: int
    last_seq: int


class ResolverService:
    """A long-lived incremental resolver over one approach configuration.

    Args:
        config: the :class:`~repro.core.config.ApproachConfig` supplying
            the blocking scheme and match function (Basic configs have no
            forest to keep warm and are rejected).
        machines: simulated cluster size for the delta jobs.
        balance: placement strategy for affected blocks — ``"slack"``
            (hash placement), or any sharding strategy (``"blocksplit"``,
            ``"pairrange"``, ``"pairrange-tree"``: shard oversized
            blocks, LPT placement — at delta granularity they share one
            scheme).  Output-invariant.
        min_family_matches: key families that must agree before a pair is
            compared (clamped to the scheme's family count).
        batch_pairs: batched-kernel width for delta reducers (None = the
            module default).
        backend / workers / executor / cost_model / tracer / metrics /
            faults: forwarded to the underlying session cluster, exactly
            as :class:`~repro.evaluation.experiment.RunSpec` takes them.
        scheduler: optional
            :class:`~repro.scheduling.scheduler.JobScheduler` this
            service shares slots through.  The service is adopted under
            ``tenant``; its delta jobs then place work on the
            scheduler's shared timeline (immediately on direct
            :meth:`submit` calls, or under fair-share dispatch when
            batches go through ``scheduler.submit_batch``).
        tenant: accounting tenant for scheduler slot usage (only
            meaningful with ``scheduler``).
    """

    def __init__(
        self,
        config: ApproachConfig,
        *,
        machines: int = 4,
        balance: str = "slack",
        min_family_matches: int = DEFAULT_MIN_FAMILY_MATCHES,
        batch_pairs: Optional[int] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        executor: Optional[Any] = None,
        cost_model: Optional[Any] = None,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        faults: Optional[Any] = None,
        label: str = "service",
        scheduler: Optional[Any] = None,
        tenant: str = "service",
    ) -> None:
        if not isinstance(config, ApproachConfig):
            raise TypeError(
                "ResolverService needs an ApproachConfig (a blocking scheme "
                f"to keep warm); got {type(config).__name__}"
            )
        from ..evaluation.experiment import RunSpec

        self.config = config
        self.min_family_matches = min(
            max(1, min_family_matches), config.scheme.num_families
        )
        self.spec = RunSpec(
            dataset=None,
            config=config,
            machines=machines,
            balance=balance,
            label=label,
            cost_model=cost_model,
            backend=backend,
            workers=workers,
            executor=executor,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
            batch_pairs=batch_pairs,
        )
        self.session = ResolverSession(self.spec)
        self.session.begin_run(label)
        self.scheduler = scheduler
        self.tenant = tenant
        if scheduler is not None:
            scheduler.adopt_service(self, tenant=tenant)
        self.store = EntityStore(config.scheme)
        self._events: List[PairEvent] = []
        self._found: Set[Pair] = set()
        self._decisions: Dict[Pair, bool] = {}
        self._clusters = UnionFind()
        self._clock = 0.0
        self._batches = 0
        self._comparisons = 0
        self._receipts: List[BatchReceipt] = []

    # -- core API ----------------------------------------------------------

    def submit(self, entities: Iterable[Entity]) -> BatchReceipt:
        """Admit a batch and resolve everything it can change."""
        batch_entities = list(entities)
        self._check_batch(batch_entities)
        batch = self._batches + 1
        annotated = [
            (entity, self.store.annotate(entity)) for entity in batch_entities
        ]
        affected = self._affected_blocks(annotated)
        self.store.admit(annotated, batch)
        self._batches = batch

        start_time = self._clock
        if not affected:
            receipt = BatchReceipt(
                batch=batch, added=len(batch_entities), affected_blocks=0,
                planned_pairs=0, comparisons=0, duplicates=0, pairs=(),
                start_time=start_time, end_time=start_time,
                first_seq=len(self._events) + 1, last_seq=len(self._events),
            )
            self._receipts.append(receipt)
            return receipt

        plan = plan_delta(
            affected, self.session.cluster.num_reduce_tasks, self.spec.balance
        )
        job = build_delta_job(
            plan,
            self.config.matcher,
            self.config.scheme.family_order,
            min_family_matches=self.min_family_matches,
            batch_pairs=self.spec.batch_pairs,
            cross_source_only=self.config.mode == "linkage",
            alpha=self.config.alpha,
            name=f"delta-resolution-{batch}",
        )
        records = self._delta_records(affected)
        result = self.session.run_job(job, records, start_time=start_time)
        self._clock = result.end_time

        first_seq = len(self._events) + 1
        new_pairs: List[Pair] = []
        for pair, verdict in result.output:
            self._decisions.setdefault(pair, verdict)
        for event in result.events:
            if event.kind != "duplicate":
                continue
            pair = event.payload
            if pair in self._found:
                continue
            self._found.add(pair)
            self._clusters.union(*pair)
            new_pairs.append(pair)
            self._events.append(
                PairEvent(seq=len(self._events) + 1, pair=pair,
                          batch=batch, time=event.time)
            )
        comparisons = result.counters.get("service", "comparisons")
        self._comparisons += comparisons
        receipt = BatchReceipt(
            batch=batch,
            added=len(batch_entities),
            affected_blocks=plan.num_blocks,
            planned_pairs=plan.total_planned,
            comparisons=comparisons,
            duplicates=len(new_pairs),
            pairs=tuple(new_pairs),
            start_time=start_time,
            end_time=result.end_time,
            first_seq=first_seq,
            last_seq=len(self._events),
        )
        self._receipts.append(receipt)
        return receipt

    def pairs(self, since: int = 0) -> List[PairEvent]:
        """Found-pair events after stream cursor ``since`` (0 = all)."""
        if since < 0:
            raise ValueError(f"since must be >= 0, got {since}")
        if since >= len(self._events):
            return []
        return list(self._events[since:])

    def cluster_of(self, entity_id: int) -> Tuple[int, ...]:
        """Live cluster membership of an admitted entity (sorted ids)."""
        if entity_id not in self.store:
            raise KeyError(f"entity id {entity_id} was never submitted")
        root = self._clusters.find(entity_id)
        return tuple(sorted(
            other for other in self.store.entity_ids()
            if self._clusters.find(other) == root
        ))

    # -- inspection --------------------------------------------------------

    @property
    def found_pairs(self) -> FrozenSet[Pair]:
        """All duplicate pairs found so far."""
        return frozenset(self._found)

    @property
    def total_entities(self) -> int:
        return len(self.store)

    @property
    def total_comparisons(self) -> int:
        return self._comparisons

    @property
    def clock(self) -> float:
        """Current global virtual time (end of the last delta job)."""
        return self._clock

    @property
    def receipts(self) -> List[BatchReceipt]:
        return list(self._receipts)

    def clusters(self) -> List[List[int]]:
        """All multi-entity clusters, sorted for determinism."""
        return self._clusters.groups()

    def stats(self) -> Dict[str, Any]:
        """A summary dict for reports and the CLI."""
        return {
            "entities": self.total_entities,
            "batches": self._batches,
            "blocks": self.store.num_blocks(),
            "comparisons": self._comparisons,
            "found_pairs": len(self._found),
            "clusters": len(self.clusters()),
            "virtual_time": self._clock,
        }

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable state: entities, stream, decisions, clock."""
        stored = sorted(self.store.stored(), key=lambda s: s.entity.id)
        return {
            "format": SNAPSHOT_FORMAT,
            "fingerprint": config_fingerprint(self.config, self.min_family_matches),
            "clock": self._clock,
            "batches": self._batches,
            "comparisons": self._comparisons,
            "entities": [
                {
                    "id": s.entity.id,
                    "attrs": dict(s.entity.attrs),
                    "source": s.entity.source,
                    "batch": s.batch,
                }
                for s in stored
            ],
            "events": [
                {"seq": e.seq, "pair": list(e.pair), "batch": e.batch, "time": e.time}
                for e in self._events
            ],
            "decisions": [
                [pair[0], pair[1], verdict]
                for pair, verdict in sorted(self._decisions.items())
            ],
        }

    @classmethod
    def restore(cls, snapshot: Dict[str, Any], config: ApproachConfig,
                **service_options: Any) -> "ResolverService":
        """Rebuild a service from :meth:`snapshot` output.

        ``config`` must be behaviorally identical to the snapshotting
        service's (checked via the embedded fingerprint); keys are
        recomputed from it, so only entities, stream state and the clock
        travel in the snapshot.
        """
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported snapshot format {snapshot.get('format')!r} "
                f"(this build reads format {SNAPSHOT_FORMAT})"
            )
        service = cls(config, **service_options)
        expected = config_fingerprint(config, service.min_family_matches)
        if snapshot.get("fingerprint") != expected:
            raise ValueError(
                "snapshot was taken under a different blocking scheme or "
                "matcher; restoring it here would silently change the "
                "found-pair set"
            )
        by_batch: Dict[int, List[Entity]] = {}
        for row in snapshot["entities"]:
            entity = Entity(
                int(row["id"]), dict(row["attrs"]), source=row.get("source")
            )
            by_batch.setdefault(int(row["batch"]), []).append(entity)
        for batch in sorted(by_batch):
            annotated = [
                (entity, service.store.annotate(entity))
                for entity in by_batch[batch]
            ]
            service.store.admit(annotated, batch)
        for row in snapshot["events"]:
            pair = pair_key(int(row["pair"][0]), int(row["pair"][1]))
            event = PairEvent(
                seq=int(row["seq"]), pair=pair,
                batch=int(row["batch"]), time=float(row["time"]),
            )
            service._events.append(event)
            service._found.add(pair)
            service._clusters.union(*pair)
        for a, b, verdict in snapshot.get("decisions", ()):
            service._decisions[pair_key(int(a), int(b))] = bool(verdict)
        service._clock = float(snapshot["clock"])
        service._batches = int(snapshot["batches"])
        service._comparisons = int(snapshot["comparisons"])
        return service

    # -- internals ---------------------------------------------------------

    def _check_batch(self, batch_entities: Sequence[Entity]) -> None:
        seen: Set[int] = set()
        for entity in batch_entities:
            if not isinstance(entity, Entity):
                raise TypeError(
                    f"submit() takes Entity records, got {type(entity).__name__}"
                )
            if entity.id in seen:
                raise ValueError(f"batch contains entity id {entity.id} twice")
            if entity.id in self.store:
                raise ValueError(
                    f"entity id {entity.id} was already submitted; ids are "
                    "immutable once admitted"
                )
            seen.add(entity.id)

    def _affected_blocks(
        self, annotated: Sequence[Tuple[Entity, Dict[str, Optional[str]]]]
    ) -> Dict[BlockRoute, List[Tuple[int, bool]]]:
        """Blocks gaining a member this batch, with (id, is_new) rosters."""
        new_by_route: Dict[BlockRoute, List[int]] = {}
        for entity, keys in annotated:
            for route in self.store.routes_of(keys):
                new_by_route.setdefault(route, []).append(entity.id)
        affected: Dict[BlockRoute, List[Tuple[int, bool]]] = {}
        for route, new_ids in sorted(new_by_route.items()):
            members = [(i, False) for i in self.store.members(route)]
            members.extend((i, True) for i in new_ids)
            if len(members) < 2:
                continue
            members.sort()
            affected[route] = members
        return affected

    def _delta_records(
        self, affected: Dict[BlockRoute, List[Tuple[int, bool]]]
    ) -> List[Any]:
        """Map input: every member of an affected block, annotated, once."""
        wanted: Dict[int, bool] = {}
        for members in affected.values():
            for entity_id, is_new in members:
                wanted[entity_id] = is_new
        records = []
        for entity_id in sorted(wanted):
            stored = self.store.get(entity_id)
            records.append((stored.entity, stored.keys, wanted[entity_id]))
        return records


__all__ = [
    "SNAPSHOT_FORMAT",
    "DEFAULT_MIN_FAMILY_MATCHES",
    "config_fingerprint",
    "PairEvent",
    "BatchReceipt",
    "ResolverService",
]
