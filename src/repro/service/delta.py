"""The delta MapReduce job: resolve only what a new batch can change.

One submit runs one job.  Map routes each member of an *affected* block
(a level-1 block containing at least one new entity) to that block's
reduce target(s); reduce enumerates candidate pairs, decides them with the
batched similarity kernel, and writes ``(pair, verdict)`` records.  The
job runs on the ordinary cluster engine, so executor pools, fault plans,
balance-style placement, and tracer spans all apply unchanged.

Batch-partition invariance — the property the differential oracle pins —
comes from three rules, each a pure function of the two entities involved:

* **Candidate predicate.**  A pair is a candidate iff its level-1 blocking
  keys agree in at least ``min(min_family_matches, num_families)``
  families.  Block sizes, sort orders, windows and budgets never enter the
  predicate, so slicing the corpus into batches cannot change it.
* **Responsibility.**  A candidate is decided exactly once: in the block
  of the *first* family (dominance order) where the keys agree.  That
  block contains both entities, and it is affected in the batch where the
  younger of the two arrives.
* **Freshness.**  Each submit decides only pairs with at least one member
  from the current batch; old-old pairs were decided when their younger
  member arrived.  The union over any batch sequence is therefore the
  one-shot candidate set, decided by the same deterministic kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.entity import Entity, pair_key
from ..mapreduce.job import MapReduceJob, Mapper, Partitioner, Reducer, TaskContext, stable_hash
from ..mechanisms import base as _mechanisms_base
from ..similarity.batch import BatchMatcher
from ..similarity.matchers import WeightedMatcher
from .store import ROUTE_SEP, BlockRoute, route_label

#: Routing-label separator between the base route and a shard index.
SHARD_SEP = "\x1e"

#: A delta input record: the entity, its per-family level-1 keys, and
#: whether it arrived in the current batch.
DeltaRecord = Tuple[Entity, Dict[str, Optional[str]], bool]


def matching_families(
    keys_a: Dict[str, Optional[str]],
    keys_b: Dict[str, Optional[str]],
    family_order: Sequence[str],
) -> List[str]:
    """Families (dominance order) where both entities share a non-None key."""
    return [
        family
        for family in family_order
        if keys_a.get(family) is not None and keys_a.get(family) == keys_b.get(family)
    ]


def block_weight(members: Sequence[Tuple[int, bool]]) -> List[int]:
    """Per-anchor candidate-pair upper bounds for one affected block.

    ``members`` is (id, is_new) sorted by id.  Entry ``j`` counts the pairs
    ``(i, j), i < j`` that pass the freshness filter — exact for planning
    because responsibility and the key predicate only thin it further.
    """
    weights: List[int] = []
    new_before = 0
    for j, (_, is_new) in enumerate(members):
        weights.append(j if is_new else new_before)
        if is_new:
            new_before += 1
    return weights


@dataclass
class DeltaPlan:
    """Placement of one batch's affected blocks onto reduce tasks.

    Attributes:
        routes: base route label -> routing labels (the block itself, or
            its shards when an oversized block was split).
        assignment: routing label -> reduce task index.
        shards: routing label -> half-open anchor range ``[lo, hi)`` over
            the block's id-sorted members; absent = the whole block.
        ranks: routing label -> processing priority (0 = first).  Reduce
            tasks work heaviest blocks first, the progressive ordering.
        planned: routing label -> planned candidate-pair load.
    """

    routes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    assignment: Dict[str, int] = field(default_factory=dict)
    shards: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    ranks: Dict[str, int] = field(default_factory=dict)
    planned: Dict[str, int] = field(default_factory=dict)

    @property
    def total_planned(self) -> int:
        return sum(self.planned.values())

    @property
    def num_blocks(self) -> int:
        return len(self.routes)


def plan_delta(
    affected: Dict[BlockRoute, List[Tuple[int, bool]]],
    num_reduce_tasks: int,
    balance: str,
) -> DeltaPlan:
    """Place affected blocks onto reduce tasks under a balance strategy.

    ``slack`` mirrors the paper baseline: hash placement, whole blocks.
    Every other strategy (``blocksplit``, ``pairrange``,
    ``pairrange-tree``) reuses the batch balancer's ideas at the delta
    granularity: blocks whose planned load exceeds the per-task fair share
    are sharded into contiguous anchor ranges, then all units are placed
    longest-processing-time-first onto the least-loaded task.  (The delta
    workload has no per-block pair-stream estimates, so the batch
    strategies' distinctions — global cuts versus oversize thresholds —
    collapse to this single sharding scheme here.)  Placement never
    changes which pairs are compared — only where.
    """
    plan = DeltaPlan()
    loads: Dict[str, int] = {}
    for route, members in affected.items():
        label = route_label(route)
        loads[label] = sum(block_weight(members))

    if balance == "slack":
        for route in affected:
            label = route_label(route)
            plan.routes[label] = (label,)
            plan.assignment[label] = stable_hash(label) % num_reduce_tasks
            plan.planned[label] = loads[label]
    else:
        total = sum(loads.values())
        fair_share = max(1, math.ceil(total / max(1, num_reduce_tasks)))
        units: List[Tuple[str, int]] = []
        for route, members in affected.items():
            label = route_label(route)
            load = loads[label]
            parts = min(len(members) - 1, math.ceil(load / fair_share)) if load else 1
            if parts <= 1:
                plan.routes[label] = (label,)
                plan.planned[label] = load
                units.append((label, load))
                continue
            weights = block_weight(members)
            target = load / parts
            shard_labels: List[str] = []
            lo, acc, index = 1, 0, 0
            for j in range(1, len(members)):
                acc += weights[j]
                last_anchor = j == len(members) - 1
                if (acc >= target and index < parts - 1) or last_anchor:
                    shard = f"{label}{SHARD_SEP}{index}"
                    plan.shards[shard] = (lo, j + 1)
                    plan.planned[shard] = acc
                    units.append((shard, acc))
                    shard_labels.append(shard)
                    lo, acc, index = j + 1, 0, index + 1
            plan.routes[label] = tuple(shard_labels)
        # Longest-processing-time placement onto the least-loaded task.
        task_load = [0] * max(1, num_reduce_tasks)
        for label, load in sorted(units, key=lambda unit: (-unit[1], unit[0])):
            task = min(range(len(task_load)), key=lambda t: (task_load[t], t))
            task_load[task] += load
            plan.assignment[label] = task

    ordered = sorted(plan.planned, key=lambda label: (-plan.planned[label], label))
    plan.ranks = {label: rank for rank, label in enumerate(ordered)}
    return plan


class DeltaMapper(Mapper):
    """Route each record to the reduce target(s) of its affected blocks."""

    def __init__(self, routes: Dict[str, Tuple[str, ...]],
                 family_order: Sequence[str]) -> None:
        self._routes = routes
        self._family_order = tuple(family_order)

    def map(self, record: DeltaRecord, context: TaskContext) -> None:
        _, keys, _ = record
        context.charge(context.cost_model.read_record)
        for family in self._family_order:
            key = keys.get(family)
            if key is None:
                continue
            for target in self._routes.get(f"{family}{ROUTE_SEP}{key}", ()):
                context.emit(target, record)


class DeltaPartitioner(Partitioner):
    """Route keys to the tasks the plan assigned (strategy-aware)."""

    def __init__(self, assignment: Dict[str, int]) -> None:
        self._assignment = assignment

    def partition(self, key: str, num_reduce_tasks: int) -> int:
        try:
            return self._assignment[key] % num_reduce_tasks
        except KeyError:
            raise ValueError(f"key {key!r} is not in the delta plan") from None


class DeltaReducer(Reducer):
    """Decide one affected block (or shard): enumerate fresh candidates,
    batch them through the similarity kernel, report duplicates."""

    def __init__(
        self,
        matcher: WeightedMatcher,
        family_order: Sequence[str],
        shards: Dict[str, Tuple[int, int]],
        *,
        min_family_matches: int = 2,
        batch_pairs: Optional[int] = None,
        cross_source_only: bool = False,
    ) -> None:
        self._matcher = matcher
        self._family_order = tuple(family_order)
        self._shards = shards
        self._min_matches = min(max(1, min_family_matches), len(self._family_order))
        self._batch_pairs = batch_pairs
        self._cross_source_only = cross_source_only
        self._batcher: Optional[BatchMatcher] = None

    def _candidates(self, key: str, members: Sequence[DeltaRecord]) -> List[Tuple[Entity, Entity]]:
        family = key.split(ROUTE_SEP, 1)[0]
        lo, hi = self._shards.get(key, (0, len(members)))
        pairs: List[Tuple[Entity, Entity]] = []
        for j in range(max(lo, 1), min(hi, len(members))):
            entity_j, keys_j, new_j = members[j]
            for i in range(j):
                entity_i, keys_i, new_i = members[i]
                if not (new_i or new_j):
                    continue
                if self._cross_source_only and entity_i.source == entity_j.source:
                    # Clean-clean linkage: same-source pairs are never
                    # candidates.  Pure in the pair, so batch-partition
                    # invariance is untouched.
                    continue
                matched = matching_families(keys_i, keys_j, self._family_order)
                if len(matched) < self._min_matches or matched[0] != family:
                    continue
                pairs.append((entity_i, entity_j))
        return pairs

    def reduce(self, key: str, values: Sequence[DeltaRecord], context: TaskContext) -> None:
        context.charge(context.cost_model.read_record * len(values))
        members = sorted(values, key=lambda record: record[0].id)
        candidates = self._candidates(key, members)
        trace = context.tracing
        started = context.clock.now if trace else 0.0
        found = 0
        if candidates:
            if self._batcher is None:
                self._batcher = BatchMatcher(self._matcher)
            width = self._batch_pairs or _mechanisms_base.DEFAULT_BATCH_PAIRS
            compare_cost = context.cost_model.compare
            for start in range(0, len(candidates), max(1, width)):
                chunk = candidates[start : start + max(1, width)]
                factors = self._batcher.cost_factors(chunk)
                decisions = self._batcher.decisions(chunk)
                for (entity_a, entity_b), factor, is_dup in zip(chunk, factors, decisions):
                    context.charge(compare_cost * factor)
                    context.counters.increment("service", "comparisons")
                    pair = pair_key(entity_a.id, entity_b.id)
                    if is_dup:
                        found += 1
                        context.counters.increment("service", "duplicates")
                        context.record_event("duplicate", pair)
                    context.write((pair, is_dup))
        context.counters.increment("service", "blocks_resolved")
        if trace:
            context.record_span(
                f"delta:{key.replace(ROUTE_SEP, '/')}",
                "block",
                started,
                context.clock.now,
                members=len(members),
                candidates=len(candidates),
                duplicates=found,
            )


def build_delta_job(
    plan: DeltaPlan,
    matcher: WeightedMatcher,
    family_order: Sequence[str],
    *,
    min_family_matches: int = 2,
    batch_pairs: Optional[int] = None,
    cross_source_only: bool = False,
    alpha: Optional[float] = None,
    name: str = "delta-resolution",
) -> MapReduceJob:
    """The MapReduce job for one batch, from its placement plan."""
    routes = dict(plan.routes)
    shards = dict(plan.shards)
    ranks = dict(plan.ranks)
    order = tuple(family_order)
    fallback = len(ranks)

    return MapReduceJob(
        mapper_factory=lambda: DeltaMapper(routes, order),
        reducer_factory=lambda: DeltaReducer(
            matcher,
            order,
            shards,
            min_family_matches=min_family_matches,
            batch_pairs=batch_pairs,
            cross_source_only=cross_source_only,
        ),
        partitioner=DeltaPartitioner(dict(plan.assignment)),
        key_sort=lambda label: (ranks.get(label, fallback), label),
        alpha=alpha,
        name=name,
    )


__all__ = [
    "SHARD_SEP",
    "DeltaRecord",
    "DeltaPlan",
    "matching_families",
    "block_weight",
    "plan_delta",
    "DeltaMapper",
    "DeltaPartitioner",
    "DeltaReducer",
    "build_delta_job",
]
