"""The multi-tenant job scheduler on the shared virtual timeline.

:class:`JobScheduler` lifts the one-job-at-a-time :class:`Cluster` into a
shared cluster serving many tenants.  Submissions — raw MapReduce jobs,
one-shot :class:`RunSpec` experiments, or :class:`ResolverService`
batches — pass admission control, queue, and then compete for map/reduce
capacity on one :class:`~repro.scheduling.pool.SharedSlotPool` timeline.

Dispatch model
--------------

Each job runs its existing driver unchanged on its own worker thread; the
driver blocks inside :meth:`Cluster._phase_pool` at every phase boundary,
which surfaces a *phase request* ``(job, kind, ready_time)`` to the
scheduler's event loop.  The loop is strictly baton-passed: exactly one
thread (the loop or a single job thread) executes at any moment, so the
interleaving — and therefore every timestamp — is a pure function of the
submitted trace.  That is the headline determinism guarantee: a fixed
arrival trace yields bit-identical per-job outputs and virtual-time
latencies on every execution backend.

A pending request dispatches *lazily* at
``dispatch = max(ready_time, first_free(kind))`` — granting earlier could
not start work sooner, and granting later would idle a slot with runnable
work (work conservation).  Ties between runnable requests break by:

``policy="fair"``
    priority lane first (``interactive`` preempts ``batch`` at phase
    boundaries), then lowest tenant *virtual finish time* — classic
    weighted fair queueing where a tenant's clock advances by
    ``slot_seconds / weight`` whenever one of its phases closes — then
    submission order.
``policy="fifo"``
    submission order only (the bench baseline).

Phases are the preemption points: a granted phase runs to completion
(task placement is atomic), so an interactive job waits at most one
in-flight phase per slot kind — never behind a *later* batch phase
start.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..mapreduce.clock import CostModel
from ..mapreduce.engine import Cluster, MapReduceJob
from ..mapreduce.faults import FaultPlan
from .admission import AdmissionPolicy, AdmissionReceipt
from .pool import SharedSlotPool, SlotLease
from .report import JobOutcome, SchedulerReport, TenantUsage

#: Priority lanes, in dispatch-preference order.
LANES = ("interactive", "batch")
_LANE_RANK = {lane: rank for rank, lane in enumerate(LANES)}

#: Default shared-cluster shape (mirrors the paper's Section VI-A1
#: cluster used by the service layer: 2 map + 2 reduce slots/machine).
DEFAULT_MACHINES = 4
DEFAULT_MAP_SLOTS = 2
DEFAULT_REDUCE_SLOTS = 2


@dataclass
class _TenantState:
    name: str
    weight: float = 1.0
    vtime: float = 0.0
    slot_seconds: float = 0.0
    estimated_spent: float = 0.0
    submitted: int = 0
    completed: int = 0
    rejected: int = 0

    @property
    def pending(self) -> int:
        return self.submitted - self.completed - self.rejected


@dataclass
class _PhaseRequest:
    handle: "JobHandle"
    kind: str
    ready: float
    seq: int
    lease: Optional[SlotLease] = None


class JobHandle:
    """The ticket returned by every ``submit_*`` call.

    Carries the :class:`AdmissionReceipt`, and after
    :meth:`JobScheduler.run` the job's result object, virtual start /
    finish times and accounting.  Handles are inert data to callers; the
    scheduler drives them.
    """

    def __init__(
        self,
        seq: int,
        name: str,
        tenant: str,
        lane: str,
        arrival: float,
        estimated_cost: float,
        receipt: AdmissionReceipt,
        body: Callable[["JobHandle"], Any],
    ) -> None:
        self.seq = seq
        self.name = name
        self.tenant = tenant
        self.lane = lane
        self.arrival = arrival
        self.estimated_cost = estimated_cost
        self.receipt = receipt
        self.state = "rejected" if receipt.rejected else "pending"
        #: Earliest virtual start (raised by admission queueing).
        self.release: Optional[float] = arrival if receipt.admitted else None
        #: Latest phase end so far — the causality floor for the next
        #: phase request (a job cannot place work before it arrived).
        self.floor = arrival
        self.depends_on: Optional["JobHandle"] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.grants = 0
        self.wait_total = 0.0
        self.slot_seconds = 0.0
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._body = body
        self._thread: Optional[threading.Thread] = None
        self._go = threading.Event()
        self._request_seq = 0

    @property
    def latency(self) -> Optional[float]:
        """Arrival-to-virtual-completion time (None until finished)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobHandle({self.name!r}, tenant={self.tenant!r}, "
            f"lane={self.lane!r}, state={self.state!r})"
        )


class JobBroker:
    """Engine-facing lease factory bound to one scheduler job.

    A :class:`Cluster` with ``slot_broker`` set calls
    :meth:`lease_phase` at each phase boundary.  Inside
    :meth:`JobScheduler.run` (on the job's own thread) the call blocks
    until the event loop dispatches the phase; outside the loop —
    e.g. a direct ``service.submit()`` on a scheduler-attached service —
    it grants immediately at the lanes' earliest availability
    (*immediate mode*), so a scheduler-attached service still works
    stand-alone.
    """

    def __init__(
        self,
        scheduler: "JobScheduler",
        handle: Optional[JobHandle] = None,
        tenant: str = "service",
    ) -> None:
        self.scheduler = scheduler
        self.handle = handle
        self.tenant = tenant

    def lease_phase(self, *, kind: str, job: str, ready_time: float) -> SlotLease:
        return self.scheduler._lease_phase(
            self, kind=kind, job=job, ready_time=ready_time
        )


class JobScheduler:
    """Weighted fair-share scheduler over one shared slot pool.

    Args:
        machines: shared cluster size; capacity is
            ``machines * map_slots`` map lanes and
            ``machines * reduce_slots`` reduce lanes.
        policy: ``"fair"`` (priority lanes + weighted fair queueing) or
            ``"fifo"`` (submission order; the bench baseline).
        admission: optional :class:`AdmissionPolicy`; the default admits
            everything immediately.
        cost_model: cost model for clusters the scheduler builds itself
            (``submit_job``); specs and services bring their own.
        tracer: optional tracer receiving submit/reject instants and one
            lease span per granted phase (track 1 = map lane, track 2 =
            reduce lane).
        metrics: optional registry receiving a ``sched`` snapshot plus
            one ``sched.tenant.<name>`` snapshot per tenant at
            :meth:`report` time.
    """

    def __init__(
        self,
        *,
        machines: int = DEFAULT_MACHINES,
        map_slots: int = DEFAULT_MAP_SLOTS,
        reduce_slots: int = DEFAULT_REDUCE_SLOTS,
        policy: str = "fair",
        admission: Optional[AdmissionPolicy] = None,
        cost_model: Optional[CostModel] = None,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        if policy not in ("fair", "fifo"):
            raise ValueError(f"unknown policy {policy!r}; use 'fair' or 'fifo'")
        self.machines = machines
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.policy = policy
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.cost_model = cost_model
        self.tracer = tracer
        self.metrics = metrics
        self.pool = SharedSlotPool(
            machines * map_slots, machines * reduce_slots
        )
        self.decisions: List[Dict[str, Any]] = []
        self._tenants: Dict[str, _TenantState] = {}
        self._handles: List[JobHandle] = []
        self._not_started: List[JobHandle] = []
        self._admission_fifo: List[JobHandle] = []
        self._pending: List[_PhaseRequest] = []
        self._service_tail: Dict[int, JobHandle] = {}
        self._service_tenant: Dict[int, str] = {}
        self._baton = threading.Event()
        self._loop_active = False
        self._active_running = 0
        self._immediate: Optional[tuple] = None
        self._ran = False

    # -- tenants -------------------------------------------------------

    def add_tenant(self, name: str, weight: float = 1.0) -> None:
        """Register a tenant with a fair-share ``weight`` (default 1)."""
        if weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {weight}")
        state = self._tenants.get(name)
        if state is None:
            self._tenants[name] = _TenantState(name, weight)
        else:
            state.weight = weight

    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(name)
            self._tenants[name] = state
        return state

    # -- submission ----------------------------------------------------

    def submit_job(
        self,
        job: MapReduceJob,
        records: Sequence[Any],
        *,
        tenant: str = "default",
        lane: str = "batch",
        arrival: float = 0.0,
        label: Optional[str] = None,
        estimated_cost: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        num_map_tasks: Optional[int] = None,
        num_reduce_tasks: Optional[int] = None,
    ) -> JobHandle:
        """Submit one raw MapReduce job on a scheduler-built cluster."""
        records = list(records)
        estimate = (
            float(len(records)) if estimated_cost is None else float(estimated_cost)
        )

        def body(handle: JobHandle) -> Any:
            cluster = Cluster(
                self.machines,
                map_slots=self.map_slots,
                reduce_slots=self.reduce_slots,
                cost_model=self.cost_model,
                faults=faults,
                slot_broker=JobBroker(self, handle, tenant),
            )
            return cluster.run_job(
                job,
                records,
                start_time=handle.floor,
                num_map_tasks=num_map_tasks,
                num_reduce_tasks=num_reduce_tasks,
            )

        return self._admit(
            label or job.name, tenant, lane, arrival, estimate, body
        )

    def submit_spec(
        self,
        spec: Any,
        *,
        tenant: str = "default",
        lane: str = "batch",
        arrival: float = 0.0,
        label: Optional[str] = None,
        estimated_cost: Optional[float] = None,
    ) -> JobHandle:
        """Submit one one-shot :class:`RunSpec` experiment run."""
        if estimated_cost is None:
            dataset = getattr(spec, "dataset", None)
            estimate = float(len(dataset)) if dataset is not None else 0.0
        else:
            estimate = float(estimated_cost)

        def body(handle: JobHandle) -> Any:
            # Imported lazily: evaluation pulls in the full driver stack,
            # and scheduling must stay importable on its own.
            from ..evaluation.experiment import ExperimentRun

            run = ExperimentRun(spec)
            run.cluster.slot_broker = JobBroker(self, handle, tenant)
            return run.run()

        resolved = getattr(spec, "resolved_label", None)
        name = label or (resolved() if callable(resolved) else resolved) or "spec"
        return self._admit(name, tenant, lane, arrival, estimate, body)

    def adopt_service(self, service: Any, tenant: str = "service") -> None:
        """Attach a :class:`ResolverService` to this scheduler.

        Installs an immediate-mode broker on the service's cluster (so
        direct ``service.submit()`` calls place work on the shared
        timeline) and records the service's accounting tenant.  Called
        automatically when a service is constructed with
        ``scheduler=``.
        """
        self._service_tenant[id(service)] = tenant
        self._tenant(tenant)
        service.session.attach_broker(JobBroker(self, None, tenant))

    def submit_batch(
        self,
        service: Any,
        entities: Iterable[Any],
        *,
        tenant: Optional[str] = None,
        lane: str = "interactive",
        arrival: float = 0.0,
        label: Optional[str] = None,
        estimated_cost: Optional[float] = None,
    ) -> JobHandle:
        """Submit one :class:`ResolverService` batch.

        Batches of the same service are causally chained: batch *N+1*
        starts only after batch *N*'s virtual completion, because the
        service's clock (and cluster state) advances batch by batch.
        """
        entities = list(entities)
        if tenant is None:
            tenant = self._service_tenant.get(id(service), "service")
        estimate = (
            float(len(entities)) if estimated_cost is None else float(estimated_cost)
        )

        def body(handle: JobHandle) -> Any:
            service.session.attach_broker(JobBroker(self, handle, tenant))
            try:
                return service.submit(entities)
            finally:
                # Leave the service in immediate mode so direct
                # ``service.submit()`` calls after the trace still work.
                service.session.attach_broker(JobBroker(self, None, tenant))

        handle = self._admit(
            label or f"batch-{len(self._handles)}",
            tenant, lane, arrival, estimate, body,
        )
        if not handle.receipt.rejected:
            tail = self._service_tail.get(id(service))
            if tail is not None:
                handle.depends_on = tail
            self._service_tail[id(service)] = handle
        return handle

    def _admit(
        self,
        name: str,
        tenant: str,
        lane: str,
        arrival: float,
        estimate: float,
        body: Callable[[JobHandle], Any],
    ) -> JobHandle:
        if self._ran:
            raise RuntimeError(
                "scheduler already ran; build a new JobScheduler per trace"
            )
        if lane not in _LANE_RANK:
            raise ValueError(f"unknown lane {lane!r}; use one of {LANES}")
        if arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {arrival}")
        self._close_immediate()
        state = self._tenant(tenant)
        admitted_active = sum(
            1
            for h in self._handles
            if h.receipt.admitted and h.state in ("pending", "running")
        )
        receipt = self.admission.decide(
            job=name,
            tenant=tenant,
            estimated_cost=estimate,
            tenant_pending=state.pending,
            tenant_spent=state.estimated_spent,
            active_jobs=admitted_active,
        )
        seq = len(self._handles)
        handle = JobHandle(seq, name, tenant, lane, arrival, estimate, receipt, body)
        self._handles.append(handle)
        state.submitted += 1
        if receipt.rejected:
            state.rejected += 1
            self._trace_instant(f"reject:{name}", "sched-reject", arrival,
                                job=name, tenant=tenant, reason=receipt.reason)
            return handle
        state.estimated_spent += estimate
        self._not_started.append(handle)
        if receipt.decision == "queued":
            self._admission_fifo.append(handle)
        self._trace_instant(f"submit:{name}", "sched-submit", arrival,
                            job=name, tenant=tenant, lane=lane)
        return handle

    # -- the event loop ------------------------------------------------

    def run(self) -> SchedulerReport:
        """Run every submitted job to completion; return the report.

        Single-shot: one scheduler instance serves one arrival trace.
        """
        if self._ran:
            raise RuntimeError("scheduler already ran")
        self._ran = True
        self._close_immediate()
        self._loop_active = True
        try:
            self._event_loop()
        finally:
            self._loop_active = False
        errors = [h for h in self._handles if h.error is not None]
        if errors:
            first = errors[0]
            raise RuntimeError(
                f"job {first.name!r} (tenant {first.tenant!r}) failed"
            ) from first.error
        return self.report()

    def _event_loop(self) -> None:
        while True:
            startable = [
                h
                for h in self._not_started
                if h.release is not None
                and (h.depends_on is None or h.depends_on.state == "finished")
            ]
            if not startable and not self._pending:
                if self._not_started:
                    stuck = ", ".join(h.name for h in self._not_started)
                    raise RuntimeError(
                        f"scheduler stalled with unrunnable jobs: {stuck}"
                    )
                return
            best = self._best_request()
            if startable:
                starter = min(
                    startable, key=lambda h: (max(h.arrival, h.release), h.seq)
                )
                start_t = max(starter.arrival, starter.release)
                # Starting a job only spends virtual time >= start_t, so
                # it must happen before any strictly later grant — and
                # before an equal-time grant, because the new job may
                # inject a request that ties (and then wins on policy).
                if best is None or start_t <= best[1]:
                    self._start_job(starter, start_t)
                    continue
            assert best is not None
            self._grant(*best)

    def _best_request(self) -> Optional[tuple]:
        if not self._pending:
            return None
        scored = []
        for request in self._pending:
            dispatch = max(request.ready, self.pool.first_free(request.kind))
            tenant = self._tenants[request.handle.tenant]
            if self.policy == "fair":
                key = (
                    dispatch,
                    _LANE_RANK[request.handle.lane],
                    tenant.vtime,
                    request.handle.seq,
                    request.seq,
                )
            else:
                key = (dispatch, request.handle.seq, request.seq)
            scored.append((key, dispatch, request))
        scored.sort(key=lambda item: item[0])
        _, dispatch, request = scored[0]
        return request, dispatch

    def _start_job(self, handle: JobHandle, start_t: float) -> None:
        self._not_started.remove(handle)
        handle.state = "running"
        handle.floor = max(handle.floor, start_t)
        self._active_running += 1
        handle._thread = threading.Thread(
            target=self._thread_main, args=(handle,), daemon=True,
            name=f"sched-{handle.name}",
        )
        handle._thread.start()
        self._await_yield(handle)

    def _grant(self, request: _PhaseRequest, dispatch: float) -> None:
        handle = request.handle
        self.decisions.append(
            {
                "seq": len(self.decisions),
                "job": handle.name,
                "tenant": handle.tenant,
                "lane": handle.lane,
                "kind": request.kind,
                "ready": request.ready,
                "first_free": self.pool.first_free(request.kind),
                "dispatch": dispatch,
                "policy": self.policy,
                "candidates": [
                    {
                        "job": r.handle.name,
                        "tenant": r.handle.tenant,
                        "lane": r.handle.lane,
                        "kind": r.kind,
                        "ready": r.ready,
                        "dispatch": max(r.ready, self.pool.first_free(r.kind)),
                        "vtime": self._tenants[r.handle.tenant].vtime,
                    }
                    for r in self._pending
                ],
            }
        )
        self._pending.remove(request)
        lease = self.pool.lease(
            request.kind,
            job=handle.name,
            phase=request.kind,
            tenant=handle.tenant,
            floor=dispatch,
        )
        request.lease = lease
        if handle.started_at is None:
            handle.started_at = dispatch
        handle.grants += 1
        handle.wait_total += dispatch - request.ready
        self._await_yield(handle)
        self._settle_lease(handle, lease, request)

    def _settle_lease(
        self, handle: JobHandle, lease: SlotLease, request: _PhaseRequest
    ) -> None:
        lease.close()
        tenant = self._tenants[handle.tenant]
        tenant.vtime += lease.slot_seconds / tenant.weight
        tenant.slot_seconds += lease.slot_seconds
        handle.slot_seconds += lease.slot_seconds
        handle.floor = max(handle.floor, lease.phase_end)
        if self.tracer is not None:
            self.tracer.record_span(
                f"{handle.name}/{request.kind}",
                "sched-lease",
                lease.floor,
                lease.phase_end,
                job=handle.name,
                track=1 if request.kind == "map" else 2,
                tenant=handle.tenant,
                lane=handle.lane,
                wait=round(lease.floor - request.ready, 9),
            )
        if handle.state in ("finished", "failed"):
            self._finish_job(handle)

    def _finish_job(self, handle: JobHandle) -> None:
        if handle.finished_at is not None:
            return
        handle.finished_at = handle.floor
        self._active_running -= 1
        self._tenants[handle.tenant].completed += 1
        if self._admission_fifo:
            released = self._admission_fifo.pop(0)
            released.release = max(released.arrival, handle.finished_at)

    def _await_yield(self, handle: JobHandle) -> None:
        """Let ``handle``'s thread run until it blocks or finishes."""
        handle._go.set()
        self._baton.wait()
        self._baton.clear()
        if handle.state in ("finished", "failed") and handle.grants == 0:
            # Degenerate job that never requested a phase.
            self._finish_job(handle)

    def _thread_main(self, handle: JobHandle) -> None:
        handle._go.wait()
        handle._go.clear()
        try:
            handle.result = handle._body(handle)
            handle.state = "finished"
        except BaseException as exc:  # noqa: BLE001 - reported by run()
            handle.error = exc
            handle.state = "failed"
        finally:
            self._baton.set()

    # -- the engine-facing lease protocol ------------------------------

    def _lease_phase(
        self, broker: JobBroker, *, kind: str, job: str, ready_time: float
    ) -> SlotLease:
        handle = broker.handle
        on_job_thread = (
            self._loop_active
            and handle is not None
            and handle._thread is threading.current_thread()
        )
        if not on_job_thread:
            return self._immediate_lease(broker, kind, job, ready_time)
        assert handle is not None
        ready = max(ready_time, handle.floor)
        request = _PhaseRequest(handle, kind, ready, handle._request_seq)
        handle._request_seq += 1
        self._pending.append(request)
        self._baton.set()
        handle._go.wait()
        handle._go.clear()
        if request.lease is None:  # pragma: no cover - defensive
            raise RuntimeError("scheduler granted no lease")
        return request.lease

    def _immediate_lease(
        self, broker: JobBroker, kind: str, job: str, ready_time: float
    ) -> SlotLease:
        self._close_immediate()
        lease = self.pool.lease(
            kind, job=job, phase=kind, tenant=broker.tenant, floor=ready_time
        )
        self._immediate = (lease, broker.tenant)
        return lease

    def _close_immediate(self) -> None:
        if self._immediate is None:
            return
        lease, tenant_name = self._immediate
        self._immediate = None
        lease.close()
        tenant = self._tenant(tenant_name)
        tenant.vtime += lease.slot_seconds / tenant.weight
        tenant.slot_seconds += lease.slot_seconds
        tenant.completed += 0  # immediate batches are accounted by the service

    def quiesce(self) -> None:
        """Close any open immediate-mode lease (idempotent).

        After this, :attr:`pool` ``.open_leases`` is 0 whenever no
        :meth:`run` loop is active — the no-leaked-slots invariant the
        snapshot/restore regression test pins.
        """
        self._close_immediate()

    # -- reporting -----------------------------------------------------

    def report(self) -> SchedulerReport:
        """Summarize the trace: outcomes, tenant usage, decision log."""
        self._close_immediate()
        outcomes = [
            JobOutcome(
                job=h.name,
                tenant=h.tenant,
                lane=h.lane,
                decision=h.receipt.decision,
                reason=h.receipt.reason,
                arrival=h.arrival,
                started_at=h.started_at,
                finished_at=h.finished_at,
                wait_total=h.wait_total,
                latency=h.latency,
                slot_seconds=h.slot_seconds,
                grants=h.grants,
                error=None if h.error is None else repr(h.error),
            )
            for h in self._handles
        ]
        tenants = [
            TenantUsage(
                name=t.name,
                weight=t.weight,
                vtime=t.vtime,
                slot_seconds=t.slot_seconds,
                submitted=t.submitted,
                completed=t.completed,
                rejected=t.rejected,
            )
            for t in sorted(self._tenants.values(), key=lambda t: t.name)
        ]
        report = SchedulerReport(
            policy=self.policy,
            outcomes=outcomes,
            tenants=tenants,
            decisions=list(self.decisions),
            makespan=self.pool.makespan,
            busy={kind: self.pool.busy_seconds(kind) for kind in ("map", "reduce")},
            open_leases=self.pool.open_leases,
        )
        self._snapshot_metrics(report)
        return report

    def _snapshot_metrics(self, report: SchedulerReport) -> None:
        if self.metrics is None:
            return
        finished = [o for o in report.outcomes if o.latency is not None]
        counters: Dict[str, float] = {
            "sched.submitted": len(report.outcomes),
            "sched.rejected": sum(1 for o in report.outcomes if o.decision == "rejected"),
            "sched.queued": sum(1 for o in report.outcomes if o.decision == "queued"),
            "sched.completed": len(finished),
            "sched.grants": sum(o.grants for o in report.outcomes),
            "sched.wait_time_total": round(
                sum(o.wait_total for o in report.outcomes), 9
            ),
            "sched.queue_depth_peak": report.queue_depth_peak,
        }
        extra: Dict[str, Any] = {"policy": self.policy, "makespan": report.makespan}
        for lane in LANES:
            pct = report.latency_percentiles(lane=lane)
            if pct is not None:
                extra[f"{lane}_p50"] = pct["p50"]
                extra[f"{lane}_p99"] = pct["p99"]
        self.metrics.snapshot("sched", counters, **extra)
        for tenant in report.tenants:
            self.metrics.snapshot(
                f"sched.tenant.{tenant.name}",
                {
                    "sched.slot_seconds": round(tenant.slot_seconds, 9),
                    "sched.submitted": tenant.submitted,
                    "sched.completed": tenant.completed,
                    "sched.rejected": tenant.rejected,
                },
                weight=tenant.weight,
            )

    def _trace_instant(
        self, name: str, category: str, time: float, *, job: str, **args: Any
    ) -> None:
        if self.tracer is not None:
            self.tracer.record_instant(name, category, time, job=job, **args)


__all__ = [
    "DEFAULT_MACHINES",
    "DEFAULT_MAP_SLOTS",
    "DEFAULT_REDUCE_SLOTS",
    "LANES",
    "JobBroker",
    "JobHandle",
    "JobScheduler",
]
