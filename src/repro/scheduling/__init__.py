"""Multi-tenant scheduling on the shared virtual-time slot pool.

The package lifts the one-job-at-a-time :class:`~repro.mapreduce.engine
.Cluster` into a shared cluster: :class:`JobScheduler` admits submissions
from many tenants (:class:`AdmissionPolicy` → :class:`AdmissionReceipt`),
dispatches their phases by weighted fair share with priority lanes over
one :class:`SharedSlotPool` timeline, and reports virtual-time latencies
(:class:`SchedulerReport`).  :func:`poisson_arrivals` generates the
seeded arrival traces the test harness and bench drive it with.

See ``docs/scheduling.md`` for the fair-share math, admission rules and
preemption points.
"""

from .admission import (
    REASON_OVER_BUDGET,
    REASON_QUEUE_FULL,
    AdmissionPolicy,
    AdmissionReceipt,
)
from .arrivals import Arrival, poisson_arrivals
from .pool import SLOT_KINDS, SharedSlotPool, SlotLease
from .report import JobOutcome, SchedulerReport, TenantUsage, percentile
from .scheduler import LANES, JobBroker, JobHandle, JobScheduler

__all__ = [
    "LANES",
    "REASON_OVER_BUDGET",
    "REASON_QUEUE_FULL",
    "SLOT_KINDS",
    "AdmissionPolicy",
    "AdmissionReceipt",
    "Arrival",
    "JobBroker",
    "JobHandle",
    "JobOutcome",
    "JobScheduler",
    "SchedulerReport",
    "SharedSlotPool",
    "SlotLease",
    "TenantUsage",
    "percentile",
    "poisson_arrivals",
]
