"""Typed results of a scheduler trace: outcomes, usage, percentiles.

Everything here is derived from virtual-time quantities, so a report is
bit-identical across execution backends for a fixed arrival trace — the
golden fixture and the bench serialize it via :meth:`SchedulerReport.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]).

    Matches numpy's default method, implemented locally so the bench and
    report never depend on numpy being present.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class JobOutcome:
    """One submission's fate on the shared timeline."""

    job: str
    tenant: str
    lane: str
    decision: str
    reason: Optional[str]
    arrival: float
    started_at: Optional[float]
    finished_at: Optional[float]
    wait_total: float
    latency: Optional[float]
    slot_seconds: float
    grants: int
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job": self.job,
            "tenant": self.tenant,
            "lane": self.lane,
            "decision": self.decision,
            "reason": self.reason,
            "arrival": round(self.arrival, 9),
            "started_at": _opt_round(self.started_at),
            "finished_at": _opt_round(self.finished_at),
            "wait_total": round(self.wait_total, 9),
            "latency": _opt_round(self.latency),
            "slot_seconds": round(self.slot_seconds, 9),
            "grants": self.grants,
            "error": self.error,
        }


@dataclass(frozen=True)
class TenantUsage:
    """Per-tenant fair-share accounting over the whole trace."""

    name: str
    weight: float
    vtime: float
    slot_seconds: float
    submitted: int
    completed: int
    rejected: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "weight": self.weight,
            "vtime": round(self.vtime, 9),
            "slot_seconds": round(self.slot_seconds, 9),
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
        }


@dataclass
class SchedulerReport:
    """Everything a scheduler run decided and measured."""

    policy: str
    outcomes: List[JobOutcome]
    tenants: List[TenantUsage]
    decisions: List[Dict[str, Any]] = field(default_factory=list)
    makespan: float = 0.0
    busy: Dict[str, float] = field(default_factory=dict)
    open_leases: int = 0

    @property
    def queue_depth_peak(self) -> int:
        """Most phase requests ever simultaneously pending."""
        return max((len(d["candidates"]) for d in self.decisions), default=0)

    def latencies(self, lane: Optional[str] = None) -> List[float]:
        return [
            o.latency
            for o in self.outcomes
            if o.latency is not None and (lane is None or o.lane == lane)
        ]

    def latency_percentiles(
        self, lane: Optional[str] = None
    ) -> Optional[Dict[str, float]]:
        """``{"p50": ..., "p99": ...}`` over finished jobs, or ``None``."""
        values = self.latencies(lane)
        if not values:
            return None
        return {
            "p50": round(percentile(values, 50.0), 9),
            "p99": round(percentile(values, 99.0), 9),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "tenants": [t.to_dict() for t in self.tenants],
            "makespan": round(self.makespan, 9),
            "busy": {k: round(v, 9) for k, v in sorted(self.busy.items())},
            "open_leases": self.open_leases,
            "queue_depth_peak": self.queue_depth_peak,
            "latency": {
                lane: self.latency_percentiles(lane)
                for lane in ("interactive", "batch")
            },
        }


def _opt_round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 9)


__all__ = ["JobOutcome", "SchedulerReport", "TenantUsage", "percentile"]
