"""A shared-capacity slot pool with per-job phase leases.

The single-job engine builds a fresh
:class:`~repro.mapreduce.engine.SlotPool` per phase — correct when one job
owns the whole cluster, meaningless when many jobs share it.
:class:`SharedSlotPool` keeps **one** virtual-time availability record per
map lane and per reduce lane for the lifetime of a
:class:`~repro.scheduling.scheduler.JobScheduler`; each phase of each job
checks slots out through a :class:`SlotLease` and returns them at their
post-phase free times, so the next job's tasks back-fill exactly the
capacity the previous phase left idle.

A lease preserves :class:`~repro.mapreduce.engine.SlotPool`'s placement
contract — earliest-free lane first, ties by lane index,
``schedule(cost) -> (start, end, lane)`` — with one addition: placements
are floored at the lease's *grant time* (the scheduler's dispatch
decision), never before it, so work can only run after the scheduler
admitted it to the timeline.  Under a :class:`~repro.mapreduce.faults
.FaultPlan` the lease instead seeds a
:class:`~repro.mapreduce.faults.FaultScheduler` with the lanes' current
free times and absorbs the simulated outcome, so per-job fault plans scope
cleanly to their own job on the shared timeline.

Everything is driver-side virtual time: lane states never depend on the
execution backend, which is what makes a fixed arrival trace reproduce
bit-identical schedules on serial and process backends.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: The two slot kinds of the paper's static-slot Hadoop model.
SLOT_KINDS = ("map", "reduce")


class SlotLease:
    """One phase's checkout of every lane of one slot kind.

    Created by :meth:`SharedSlotPool.lease` at the scheduler's dispatch
    time (``floor``); the engine then either calls :meth:`schedule` per
    task (fault-free path) or hands the lanes to a
    :class:`~repro.mapreduce.faults.FaultScheduler` and commits the
    result via :meth:`commit_fault`.  Placements mutate the pool's lanes
    eagerly — an abandoned lease can therefore never strand capacity —
    and :meth:`close` only finalizes the accounting (phase end,
    busy slot-seconds) the scheduler charges to the owning tenant.
    """

    def __init__(
        self,
        pool: "SharedSlotPool",
        *,
        kind: str,
        job: str,
        phase: str,
        tenant: str,
        floor: float,
    ) -> None:
        self.pool = pool
        self.kind = kind
        self.job = job
        self.phase = phase
        self.tenant = tenant
        self.floor = floor
        self.placements: List[Tuple[float, float, int]] = []
        self._initial_free = list(pool.lanes(kind))
        self._busy = 0.0
        self._end = floor
        self._closed = False
        pool._open_leases += 1

    # -- SlotPool-compatible surface -----------------------------------

    @property
    def num_lanes(self) -> int:
        return self.pool.num_lanes(self.kind)

    @property
    def lane_free_times(self) -> List[float]:
        """Current free time of every lane (feeds ``FaultScheduler``)."""
        return list(self.pool.lanes(self.kind))

    def schedule(self, cost: float) -> Tuple[float, float, int]:
        """Place one task on the earliest-free lane, floored at grant time.

        Matches :meth:`repro.mapreduce.engine.SlotPool.schedule` exactly
        when every lane is free at or before the floor — which is the
        single-job case — and otherwise queues behind the lanes' earlier
        commitments.
        """
        if not math.isfinite(cost) or cost < 0:
            raise ValueError(f"task cost must be finite and >= 0, got {cost}")
        lanes = self.pool.lanes(self.kind)
        lane = min(range(len(lanes)), key=lambda i: (lanes[i], i))
        start = max(lanes[lane], self.floor)
        end = start + cost
        lanes[lane] = end
        self.placements.append((start, end, lane))
        self._busy += end - start
        if end > self._end:
            self._end = end
        return start, end, lane

    @property
    def makespan(self) -> float:
        """Latest placement end so far (grant time when nothing placed)."""
        return self._end

    # -- fault-plan composition ----------------------------------------

    def commit_fault(self, final_free_times: Sequence[float], schedules) -> None:
        """Absorb a :class:`FaultScheduler` simulation into the lanes.

        ``schedules`` is the simulator's per-task attempt list; every
        attempt (winning, failed, killed) occupied a lane for its span and
        is charged to the lease's busy time.
        """
        lanes = self.pool.lanes(self.kind)
        for index, free in enumerate(final_free_times):
            lanes[index] = max(lanes[index], free)
        for sched in schedules:
            for attempt in sched.attempts:
                self.placements.append(
                    (attempt.start, attempt.end, attempt.slot)
                )
                self._busy += attempt.end - attempt.start
                if attempt.end > self._end:
                    self._end = attempt.end
        return None

    # -- accounting ----------------------------------------------------

    @property
    def phase_end(self) -> float:
        return self._end

    @property
    def slot_seconds(self) -> float:
        """Total lane-busy virtual time this phase consumed."""
        return self._busy

    def close(self) -> None:
        """Finalize accounting (idempotent; lanes were updated eagerly)."""
        if self._closed:
            return
        self._closed = True
        self.pool._open_leases -= 1
        self.pool._busy[self.kind] += self._busy

    @property
    def closed(self) -> bool:
        return self._closed


class SharedSlotPool:
    """Shared map/reduce lane capacity on one virtual timeline.

    Args:
        map_lanes: concurrent map tasks the shared cluster can run.
        reduce_lanes: concurrent reduce tasks it can run.
        ready_time: virtual time every lane starts free at (default 0).
    """

    def __init__(
        self, map_lanes: int, reduce_lanes: int, *, ready_time: float = 0.0
    ) -> None:
        if map_lanes <= 0 or reduce_lanes <= 0:
            raise ValueError(
                f"need at least one lane of each kind, got "
                f"map={map_lanes} reduce={reduce_lanes}"
            )
        self._lanes: Dict[str, List[float]] = {
            "map": [ready_time] * map_lanes,
            "reduce": [ready_time] * reduce_lanes,
        }
        self._busy: Dict[str, float] = {"map": 0.0, "reduce": 0.0}
        self._open_leases = 0

    # -- introspection -------------------------------------------------

    def lanes(self, kind: str) -> List[float]:
        """The mutable free-time list of ``kind`` lanes."""
        try:
            return self._lanes[kind]
        except KeyError:
            raise ValueError(
                f"unknown slot kind {kind!r}; expected one of {SLOT_KINDS}"
            ) from None

    def num_lanes(self, kind: str) -> int:
        return len(self.lanes(kind))

    def first_free(self, kind: str) -> float:
        """Earliest time any lane of ``kind`` is (or becomes) free."""
        return min(self.lanes(kind))

    @property
    def makespan(self) -> float:
        """Latest committed free time across every lane of both kinds."""
        return max(max(lanes) for lanes in self._lanes.values())

    @property
    def open_leases(self) -> int:
        """Leases granted but not yet closed (0 whenever the scheduler
        is quiescent — the no-leaked-slots invariant)."""
        return self._open_leases

    def busy_seconds(self, kind: str) -> float:
        """Cumulative lane-busy virtual time charged by closed leases."""
        return self._busy[kind]

    def utilization(self, kind: str, horizon: Optional[float] = None) -> float:
        """Busy fraction of ``kind`` capacity over ``[0, horizon]``."""
        horizon = self.makespan if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return self._busy[kind] / (horizon * self.num_lanes(kind))

    # -- leasing -------------------------------------------------------

    def lease(
        self,
        kind: str,
        *,
        job: str,
        phase: str,
        tenant: str,
        floor: float,
    ) -> SlotLease:
        """Check every ``kind`` lane out to one phase of one job."""
        self.lanes(kind)  # validate kind before constructing
        return SlotLease(
            self, kind=kind, job=job, phase=phase, tenant=tenant, floor=floor
        )


__all__ = ["SLOT_KINDS", "SharedSlotPool", "SlotLease"]
