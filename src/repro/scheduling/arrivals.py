"""Deterministic Poisson arrival traces for the scheduler harness.

The test archetype of this PR lives or dies on reproducible workloads:
the property suite, the golden fixture and the bench all drive the
scheduler with *seeded* Poisson processes.  ``random.expovariate`` is
reproducible across CPython versions in practice, but we derive
exponentials from ``Random.random()`` through the explicit inverse CDF
(``-ln(1 - u) / rate``) so the trace depends only on the Mersenne
Twister stream — the same cross-version determinism argument the fault
plans in ``mapreduce/faults.py`` make with splitmix64.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Arrival:
    """One job arrival drawn from a trace."""

    index: int
    time: float
    tenant: str
    lane: str
    #: Uniform draw in [0, 1) for the caller to derive job size/shape
    #: from without consuming extra RNG state.
    size_draw: float


def poisson_arrivals(
    *,
    seed: int,
    rate: float,
    count: int,
    tenants: Sequence[str],
    tenant_weights: Optional[Sequence[float]] = None,
    interactive_fraction: float = 0.0,
) -> List[Arrival]:
    """Draw ``count`` arrivals of a Poisson process with ``rate`` jobs
    per unit virtual time.

    Tenants are sampled per arrival (optionally weighted), and each
    arrival is flagged ``interactive`` with probability
    ``interactive_fraction`` (else ``batch``).  The draw order is fixed —
    inter-arrival gap, tenant, lane, size — so a given seed always yields
    the same trace.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be > 0, got {rate}")
    if count < 0:
        raise ValueError(f"arrival count must be >= 0, got {count}")
    if not tenants:
        raise ValueError("need at least one tenant")
    if not 0.0 <= interactive_fraction <= 1.0:
        raise ValueError(
            f"interactive_fraction must be in [0, 1], got {interactive_fraction}"
        )
    if tenant_weights is not None and len(tenant_weights) != len(tenants):
        raise ValueError(
            f"{len(tenant_weights)} weights for {len(tenants)} tenants"
        )

    rng = random.Random(seed)
    if tenant_weights is not None:
        cumulative: List[float] = []
        total = 0.0
        for weight in tenant_weights:
            if weight <= 0:
                raise ValueError(f"tenant weights must be > 0, got {weight}")
            total += weight
            cumulative.append(total)
    else:
        cumulative = [float(i + 1) for i in range(len(tenants))]
        total = float(len(tenants))

    arrivals: List[Arrival] = []
    clock = 0.0
    for index in range(count):
        # Inverse-CDF exponential: u in [0, 1) so 1 - u in (0, 1].
        gap = -math.log(1.0 - rng.random()) / rate
        clock += gap
        pick = rng.random() * total
        tenant = tenants[-1]
        for position, bound in enumerate(cumulative):
            if pick < bound:
                tenant = tenants[position]
                break
        lane_draw = rng.random()
        lane = "interactive" if lane_draw < interactive_fraction else "batch"
        size_draw = rng.random()
        arrivals.append(Arrival(index, clock, tenant, lane, size_draw))
    return arrivals


__all__ = ["Arrival", "poisson_arrivals"]
