"""Admission control for the multi-tenant scheduler.

Every submission passes through an :class:`AdmissionPolicy` **before** it
can touch the shared timeline, and receives a typed
:class:`AdmissionReceipt` recording the decision:

``admitted``
    a slot-pool run lane was free; the job enters the dispatch queue
    immediately.
``queued``
    the cluster is at its concurrent-job cap (``max_active``); the job
    waits in arrival order and starts when an earlier job's last phase
    ends on the virtual timeline.
``rejected``
    the submission violates a hard cap — per-tenant queue depth
    (``queue-full``) or per-tenant estimated-cost budget
    (``over-budget``) — and never runs.  The receipt carries the
    machine-readable ``reason`` so callers can implement back-off.

Budgets are charged on *estimated* cost at admission time (the scheduler
knows nothing better before running the job), mirroring how YARN-style
capacity schedulers charge reservations rather than actuals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Receipt decisions, in increasing order of severity.
DECISIONS = ("admitted", "queued", "rejected")

#: Machine-readable rejection reasons.
REASON_QUEUE_FULL = "queue-full"
REASON_OVER_BUDGET = "over-budget"


@dataclass(frozen=True)
class AdmissionReceipt:
    """Typed outcome of one admission decision."""

    decision: str
    job: str
    tenant: str
    reason: Optional[str] = None
    #: Estimated virtual cost charged against the tenant budget.
    estimated_cost: float = 0.0
    #: Jobs (admitted or queued) the tenant had pending at decision time.
    queue_depth: int = 0

    @property
    def admitted(self) -> bool:
        return self.decision == "admitted"

    @property
    def rejected(self) -> bool:
        return self.decision == "rejected"

    def to_dict(self) -> Dict[str, object]:
        return {
            "decision": self.decision,
            "job": self.job,
            "tenant": self.tenant,
            "reason": self.reason,
            "estimated_cost": self.estimated_cost,
            "queue_depth": self.queue_depth,
        }


@dataclass
class AdmissionPolicy:
    """Caps enforced at submit time.

    Args:
        max_queued: per-tenant cap on jobs that are submitted but not yet
            finished; ``None`` disables the cap.
        cost_budgets: per-tenant budget of *estimated* virtual cost; a
            submission whose estimate would push the tenant's admitted
            total past its budget is rejected.  Tenants without an entry
            are unbudgeted.
        max_active: cluster-wide cap on jobs running concurrently on the
            shared timeline; excess admissions are ``queued`` (started at
            the virtual time an active job completes), never rejected.
    """

    max_queued: Optional[int] = None
    cost_budgets: Dict[str, float] = field(default_factory=dict)
    max_active: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_queued is not None and self.max_queued < 1:
            raise ValueError(f"max_queued must be >= 1, got {self.max_queued}")
        if self.max_active is not None and self.max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {self.max_active}")
        for tenant, budget in self.cost_budgets.items():
            if budget < 0:
                raise ValueError(
                    f"cost budget for {tenant!r} must be >= 0, got {budget}"
                )

    def decide(
        self,
        *,
        job: str,
        tenant: str,
        estimated_cost: float,
        tenant_pending: int,
        tenant_spent: float,
        active_jobs: int,
    ) -> AdmissionReceipt:
        """Apply the caps in severity order: queue depth, budget, load."""
        if self.max_queued is not None and tenant_pending >= self.max_queued:
            return AdmissionReceipt(
                "rejected",
                job,
                tenant,
                reason=REASON_QUEUE_FULL,
                estimated_cost=estimated_cost,
                queue_depth=tenant_pending,
            )
        budget = self.cost_budgets.get(tenant)
        if budget is not None and tenant_spent + estimated_cost > budget:
            return AdmissionReceipt(
                "rejected",
                job,
                tenant,
                reason=REASON_OVER_BUDGET,
                estimated_cost=estimated_cost,
                queue_depth=tenant_pending,
            )
        if self.max_active is not None and active_jobs >= self.max_active:
            return AdmissionReceipt(
                "queued",
                job,
                tenant,
                estimated_cost=estimated_cost,
                queue_depth=tenant_pending,
            )
        return AdmissionReceipt(
            "admitted",
            job,
            tenant,
            estimated_cost=estimated_cost,
            queue_depth=tenant_pending,
        )


__all__ = [
    "DECISIONS",
    "REASON_OVER_BUDGET",
    "REASON_QUEUE_FULL",
    "AdmissionPolicy",
    "AdmissionReceipt",
]
