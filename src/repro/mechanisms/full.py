"""Exhaustive (all-pairs) resolution.

Not one of the paper's progressive mechanisms, but the traditional
similarity-computation baseline: every pair in the block, in arbitrary
(id) order.  Useful as a worst-case comparator in examples and ablations,
and as the semantics reference in tests (any window-limited mechanism finds
a subset of what this one finds).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence, Tuple

from ..data.entity import Entity
from ..mapreduce.clock import CostModel
from .base import ChargeFn, Mechanism, SortKey


class FullResolution(Mechanism):
    """Compare all pairs of the block; ``window`` is ignored."""

    name = "full"

    def pair_stream(
        self,
        entities: Sequence[Entity],
        window: int,
        sort_key: SortKey,
        charge: ChargeFn,
        cost_model: CostModel,
    ) -> Iterator[Tuple[Entity, Entity]]:
        charge(self.additional_cost(len(entities), window, cost_model))
        ordered = sorted(entities, key=lambda e: e.id)
        yield from combinations(ordered, 2)

    def additional_cost(self, n: int, window: int, cost_model: CostModel) -> float:
        """``CostA``: reading the block members (no sort, no hint)."""
        return cost_model.read_record * n


__all__ = ["FullResolution"]
