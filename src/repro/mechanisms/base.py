"""Progressive mechanism interface and the block-resolution driver.

A *progressive mechanism M* (paper Section II-B) is any ER algorithm —
possibly combined with a hint — that can be applied on a block to identify
its duplicate pairs as quickly as possible.  Here a mechanism contributes
two things:

* a **pair stream**: candidate entity pairs of one block in priority order
  (most-likely-duplicate first), and
* an **additional cost** ``CostA`` (hint generation, sorting, reading) that
  it charges before the first comparison.

:func:`resolve_block` is the shared driver used by both our approach's
reducer and the Basic baseline: it walks the stream, lets the caller veto
pairs (redundancy-free resolution / already-resolved-in-child checks),
invokes the match function, charges comparison cost, and consults a
pluggable stop condition after every comparison.

The driver decides pairs in **batches** through
:class:`~repro.similarity.batch.BatchMatcher` rather than one
``matcher.is_match`` call at a time: it collects up to
:data:`DEFAULT_BATCH_PAIRS` admitted pairs from the stream, decides them in
one kernel call, then *replays* the outcomes in stream order — charging,
counting, invoking callbacks and consulting the stop condition per pair
exactly as the scalar loop did.  Decisions, charges and stop points are
bit-identical; only wall-clock time changes.  Look-ahead into the stream is
free in virtual time because every mechanism charges its ``CostA`` once up
front and never per pair.  Two contracts make the replay safe:

* ``should_resolve`` must be a pure function of the entity *pair* (the
  in-repo vetoes — redundancy sets keyed by id pairs — are); the driver
  additionally flushes the pending batch before admitting a pair whose id
  pair already occurred in it, so a veto consulted at collection time can
  never miss state an earlier occurrence of the *same pair* would have
  written.
* pair streams must not call ``charge`` per yielded pair (all in-repo
  mechanisms front-load their cost; a stream that charged lazily would see
  those charges reordered relative to comparison charges).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Protocol, Sequence, Tuple

from ..data.entity import Entity
from ..mapreduce.clock import CostModel
from ..similarity.batch import BatchMatcher
from ..similarity.matchers import WeightedMatcher

SortKey = Callable[[Entity], object]
ChargeFn = Callable[[float], float]
PairCallback = Callable[[Entity, Entity], None]
ShouldResolve = Callable[[Entity, Entity], bool]

#: Pairs decided per batch-kernel call.  Large enough to amortize the
#: kernel's per-batch setup and trip its vectorized paths, small enough
#: that stop-condition look-ahead stays cheap (a fired stop discards at
#: most one batch of pulled-but-undecided pairs, which cost no virtual
#: time).  Read at call time: set to ``1`` (via
#: :func:`set_default_batch_pairs` or monkeypatching) to force the scalar
#: per-pair path, e.g. in differential tests.
DEFAULT_BATCH_PAIRS = 64


def set_default_batch_pairs(width: int) -> None:
    """Set the module-wide batch width (``<= 1`` forces the scalar path)."""
    global DEFAULT_BATCH_PAIRS
    if width < 1:
        raise ValueError(f"batch width must be >= 1, got {width}")
    DEFAULT_BATCH_PAIRS = width


@dataclass
class ResolveStats:
    """Mutable tally of one block resolution.

    Attributes:
        comparisons: resolve-function invocations actually performed.
        duplicates: pairs declared duplicates.
        distincts: pairs declared distinct.
        skipped: pairs vetoed by ``should_resolve`` (redundancy / already
            resolved in a child block).
        filtered: pairs vetoed by the scenario-level ``pair_filter``
            (e.g. same-source pairs in clean-clean linkage) — not
            candidates at all, so they cost nothing and never touch the
            stop budget.
        pruned: pairs vetoed by the meta-blocking ``prune`` predicate.
            Pruned pairs cost nothing but *do* consume the distinct-pair
            budget (see :class:`DistinctBudget`), so a pruned run stops no
            later than its unpruned twin at every stream position — the
            structural guarantee behind "pruned output ⊆ unpruned output".
        exhausted: True when the pair stream ran dry (block fully resolved
            up to the mechanism's window), False when the stop condition
            fired first.
    """

    comparisons: int = 0
    duplicates: int = 0
    distincts: int = 0
    skipped: int = 0
    filtered: int = 0
    pruned: int = 0
    exhausted: bool = False


class StopCondition(Protocol):
    """Consulted after every comparison; ``True`` terminates the block."""

    def should_stop(self, stats: ResolveStats, was_duplicate: bool) -> bool:
        """Decide termination given the running stats of this block."""
        ...


class NeverStop:
    """Run the mechanism to stream exhaustion (Basic F / root blocks)."""

    def should_stop(self, stats: ResolveStats, was_duplicate: bool) -> bool:
        return False


class DistinctBudget:
    """Terminate after ``threshold`` distinct pairs (paper Section III-A).

    This is the termination threshold ``Th(X^i_j)`` used for non-root
    blocks: the mechanism keeps going while it finds duplicates and stops
    once it has burned the distinct-pair budget.
    """

    def __init__(self, threshold: int) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        self.threshold = threshold

    def should_stop(self, stats: ResolveStats, was_duplicate: bool) -> bool:
        # Meta-blocking-pruned pairs consume budget as if they had been
        # compared and found distinct: at every stream position the pruned
        # run has burned at least as much budget as its unpruned twin, so
        # it stops no later — which is what makes the pruned run's output
        # a subset of the unpruned run's.  Plain runs have pruned == 0.
        return stats.distincts + stats.pruned >= self.threshold


class Mechanism(ABC):
    """Base class for progressive mechanisms."""

    #: short identifier used in reports.
    name: str = "mechanism"

    @abstractmethod
    def pair_stream(
        self,
        entities: Sequence[Entity],
        window: int,
        sort_key: SortKey,
        charge: ChargeFn,
        cost_model: CostModel,
    ) -> Iterator[Tuple[Entity, Entity]]:
        """Yield candidate pairs in priority order, charging ``CostA`` first."""

    @abstractmethod
    def additional_cost(self, n: int, window: int, cost_model: CostModel) -> float:
        """``CostA`` estimate for a block of size ``n`` (used by both the
        real charging and the cost model of Section IV-B)."""


def block_sort_key(entity: Entity, primary: str) -> Tuple[str, str]:
    """Sorting key for SN-style mechanisms: the blocking attribute first
    (the paper sorts each block on the attribute its blocking function is
    defined on), the remaining attributes as tie-break.

    The tie-break matters in blocks keyed on low-cardinality attributes
    (e.g. venue): thousands of entities share the identical primary value,
    and without a content tie-break duplicates would be scattered randomly
    across the tie region, far outside any realistic window.  The title
    (the most stable attribute in both datasets) leads the tie-break, then
    the remaining attributes in name order.
    """
    parts = []
    if primary != "title":
        parts.append(entity.get("title"))
    parts.extend(
        value
        for name, value in sorted(entity.attrs.items())
        if name != primary and name != "title"
    )
    return entity.get(primary), "\x1f".join(parts)


def window_pairs_count(n: int, window: int) -> int:
    """Number of pairs at rank distance < ``window`` in a sorted list of n.

    ``sum_{d=1}^{min(w-1, n-1)} (n - d)`` — the work an SN-style mechanism
    performs when run to exhaustion.
    """
    if n < 2 or window < 2:
        return 0
    dmax = min(window - 1, n - 1)
    return dmax * n - dmax * (dmax + 1) // 2


def resolve_block(
    entities: Sequence[Entity],
    mechanism: Mechanism,
    *,
    window: int,
    sort_key: SortKey,
    matcher: WeightedMatcher,
    cost_model: CostModel,
    charge: ChargeFn,
    on_duplicate: PairCallback,
    should_resolve: Optional[ShouldResolve] = None,
    pair_filter: Optional[ShouldResolve] = None,
    prune: Optional[ShouldResolve] = None,
    stop: Optional[StopCondition] = None,
    on_resolved: Optional[Callable[[Entity, Entity, bool], None]] = None,
    pair_range: Optional[Tuple[int, int]] = None,
    batch_pairs: Optional[int] = None,
    charge_compare: Optional[ChargeFn] = None,
) -> ResolveStats:
    """Resolve one block with mechanism M (shared driver).

    Args:
        entities: the block's members.
        mechanism: the progressive mechanism M.
        window: SN-style window size for this block.
        sort_key: attribute extractor used to sort the block (the paper
            sorts on the attribute the blocking was performed on).
        matcher: the resolve/match function.
        cost_model: unit costs.
        charge: task-clock charging callback.
        on_duplicate: called for every pair declared duplicate.
        should_resolve: optional veto; a vetoed pair costs nothing and is
            counted in ``stats.skipped``.
        pair_filter: optional scenario-level candidate predicate (e.g.
            "cross-source only" in clean-clean linkage).  A rejected pair
            costs nothing, is counted in ``stats.filtered`` and does not
            touch the stop budget — it was never a candidate.
        prune: optional meta-blocking veto.  A rejected pair costs
            nothing and is counted in ``stats.pruned``; pruned pairs *do*
            consume the :class:`DistinctBudget` (checked in stream order),
            so pruning can only make a block stop earlier, never extend
            its resolution deeper into the stream.  Must be a pure
            function of the entity pair.
        stop: stop condition (default: run to exhaustion).
        on_resolved: optional observer called for every *performed*
            comparison with the verdict (used to track per-tree resolved
            pairs so parents skip work done in children).
        pair_range: optional ``(start, stop)`` half-open slice of the raw
            pair-stream positions — only pairs at those positions are
            considered (load-balancing shards of oversized root blocks).
            Positions outside the range are free: no veto, no charge, no
            stats.  ``CostA`` is still charged by the stream itself.
        batch_pairs: pairs decided per batch-kernel call (default: the
            module-wide :data:`DEFAULT_BATCH_PAIRS`); ``<= 1`` selects the
            scalar per-pair reference path.
        charge_compare: optional charging callback used for the per-pair
            comparison charges only (default: ``charge``).  Lets callers
            tag comparison cost separately from ``CostA`` for cost-model
            calibration without touching the mechanism interface.

    Returns:
        the final :class:`ResolveStats` of the block.
    """
    stats = ResolveStats()
    if charge_compare is None:
        charge_compare = charge
    condition = stop if stop is not None else NeverStop()
    first, last = (0, None) if pair_range is None else pair_range
    if first < 0 or (last is not None and last < first):
        raise ValueError(f"invalid pair_range {pair_range!r}")
    stream = mechanism.pair_stream(entities, window, sort_key, charge, cost_model)
    width = DEFAULT_BATCH_PAIRS if batch_pairs is None else batch_pairs

    if width <= 1:
        # Scalar reference path: one is_match per pair, kept verbatim as
        # the oracle the batch path is differenced against.
        position = -1
        for e1, e2 in stream:
            position += 1
            if position < first:
                continue
            if last is not None and position >= last:
                break
            if pair_filter is not None and not pair_filter(e1, e2):
                stats.filtered += 1
                continue
            if prune is not None and not prune(e1, e2):
                stats.pruned += 1
                if condition.should_stop(stats, False):
                    return stats
                continue
            if should_resolve is not None and not should_resolve(e1, e2):
                stats.skipped += 1
                continue
            charge_compare(cost_model.compare * matcher.comparison_cost_factor(e1, e2))
            is_dup = matcher.is_match(e1, e2)
            stats.comparisons += 1
            if is_dup:
                stats.duplicates += 1
                on_duplicate(e1, e2)
            else:
                stats.distincts += 1
            if on_resolved is not None:
                on_resolved(e1, e2, is_dup)
            if condition.should_stop(stats, is_dup):
                return stats
        stats.exhausted = True
        return stats

    batcher = BatchMatcher(matcher)
    # Pending entries in stream order: a pair to decide, or the stat name
    # ("skipped" / "filtered" / "pruned") of a vetoed position, replayed so
    # stats — and budget consumption by pruned pairs — interleave
    # identically to the scalar loop.
    pending: List[object] = []
    to_decide: List[Tuple[Entity, Entity]] = []
    batch_idents = set()

    def _flush() -> bool:
        """Decide and replay the pending batch; True when stop fired."""
        if not pending:
            return False
        factors = batcher.cost_factors(to_decide)
        decisions = batcher.decisions(to_decide)
        index = 0
        stopped = False
        for entry in pending:
            if isinstance(entry, str):
                setattr(stats, entry, getattr(stats, entry) + 1)
                if entry == "pruned" and condition.should_stop(stats, False):
                    stopped = True
                    break
                continue
            e1, e2 = entry
            charge_compare(cost_model.compare * factors[index])
            is_dup = decisions[index]
            index += 1
            stats.comparisons += 1
            if is_dup:
                stats.duplicates += 1
                on_duplicate(e1, e2)
            else:
                stats.distincts += 1
            if on_resolved is not None:
                on_resolved(e1, e2, is_dup)
            if condition.should_stop(stats, is_dup):
                stopped = True
                break
        pending.clear()
        to_decide.clear()
        batch_idents.clear()
        return stopped

    position = -1
    for e1, e2 in stream:
        position += 1
        if position < first:
            continue
        if last is not None and position >= last:
            break
        if pair_filter is not None and not pair_filter(e1, e2):
            pending.append("filtered")
            continue
        if prune is not None and not prune(e1, e2):
            pending.append("pruned")
            continue
        ident = (e1.id, e2.id) if e1.id <= e2.id else (e2.id, e1.id)
        if ident in batch_idents:
            # The same pair again before the first occurrence was decided:
            # flush so the veto below sees that decision's state updates.
            if _flush():
                return stats
        if should_resolve is not None and not should_resolve(e1, e2):
            pending.append("skipped")
            continue
        pending.append((e1, e2))
        to_decide.append((e1, e2))
        batch_idents.add(ident)
        if len(to_decide) >= width:
            if _flush():
                return stats
    if _flush():
        return stats
    stats.exhausted = True
    return stats


__all__ = [
    "Mechanism",
    "ResolveStats",
    "StopCondition",
    "NeverStop",
    "DistinctBudget",
    "resolve_block",
    "window_pairs_count",
    "SortKey",
    "DEFAULT_BATCH_PAIRS",
    "set_default_batch_pairs",
]
