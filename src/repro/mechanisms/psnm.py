"""Progressive Sorted Neighborhood Method (mechanism 2).

The paper's second mechanism (used for OL-Books): PSNM from
[Papenbrock, Heise & Naumann, TKDE '15].  Like SN it sorts the block on the
blocking attribute, but instead of materializing a pair hint it *iterates*
the window: first all rank-distance-1 neighbours across the whole sorted
list, then distance 2, and so on up to ``w - 1`` — progressively widening
the neighbourhood.  The pair order is identical to the SN hint's; the
difference is the cost profile: no pair list is built or sorted, so
``CostA`` is just the entity sort.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from ..data.entity import Entity
from ..mapreduce.clock import CostModel
from .base import ChargeFn, Mechanism, SortKey


class PSNM(Mechanism):
    """Progressive Sorted Neighborhood: lazy, rank-distance-iterated pairs."""

    name = "psnm"

    def pair_stream(
        self,
        entities: Sequence[Entity],
        window: int,
        sort_key: SortKey,
        charge: ChargeFn,
        cost_model: CostModel,
    ) -> Iterator[Tuple[Entity, Entity]]:
        """Sort the block, then lazily yield pairs distance by distance."""
        charge(self.additional_cost(len(entities), window, cost_model))
        ordered = sorted(entities, key=lambda e: (sort_key(e), e.id))
        n = len(ordered)
        for distance in range(1, min(window, n)):
            for i in range(n - distance):
                yield ordered[i], ordered[i + distance]

    def additional_cost(self, n: int, window: int, cost_model: CostModel) -> float:
        """``CostA``: entity sort only (no materialized hint)."""
        return cost_model.hint_setup + cost_model.sort_cost(n)


__all__ = ["PSNM"]
