"""Sorted Neighbor with the pay-as-you-go hint (mechanism 1).

The paper's first mechanism (used for CiteSeerX): the Sorted Neighbor
algorithm [Hernández & Stolfo '95] combined with the *sorted-pairs hint* of
[Whang et al. '13].  The block's entities are sorted on the blocking
attribute; the hint materializes every pair at rank distance < w and orders
the pairs by non-decreasing distance, so the most-likely duplicates (closest
neighbours) are resolved first.

Cost profile (``CostA``): sorting the entities **plus** generating and
sorting the explicit pair list — the hint is what makes this mechanism more
expensive per block than PSNM (Section VI-A3 / [17]).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..data.entity import Entity
from ..mapreduce.clock import CostModel
from .base import ChargeFn, Mechanism, SortKey, window_pairs_count


class SortedNeighborHint(Mechanism):
    """SN + sorted-pairs hint: materialized, distance-ordered pair list."""

    name = "sn-hint"

    def pair_stream(
        self,
        entities: Sequence[Entity],
        window: int,
        sort_key: SortKey,
        charge: ChargeFn,
        cost_model: CostModel,
    ) -> Iterator[Tuple[Entity, Entity]]:
        """Sort the block, build the hint, then yield pairs by distance."""
        charge(self.additional_cost(len(entities), window, cost_model))
        ordered = sorted(entities, key=lambda e: (sort_key(e), e.id))
        # The hint: all pairs with distance < window, ordered by distance
        # (ties broken by position for determinism).  Materialized up front,
        # exactly like the sorted-list-of-pairs hint in the paper.
        hint: List[Tuple[Entity, Entity]] = []
        n = len(ordered)
        for distance in range(1, min(window, n)):
            for i in range(n - distance):
                hint.append((ordered[i], ordered[i + distance]))
        yield from hint

    def additional_cost(self, n: int, window: int, cost_model: CostModel) -> float:
        """``CostA``: entity sort + hint generation/sort over window pairs."""
        pairs = window_pairs_count(n, window)
        return (
            cost_model.hint_setup
            + cost_model.sort_cost(n)
            + cost_model.sort_cost(pairs)
        )


__all__ = ["SortedNeighborHint"]
