"""Hierarchical-partitioning hint (mechanism 3, extension).

Section III-A notes that progressive blocking was inspired by the
*hierarchical partitioning hint* of [Whang et al. '13] and that "our
approach can use the hierarchical partitioning hint along with an
appropriate ER algorithm as a mechanism M for resolving the blocks."
This module provides exactly that mechanism.

The block's sorted order is carved into leaf partitions of
``leaf_size`` entities; ``branching`` adjacent partitions form each parent
partition, recursively.  A pair's priority is the *smallest* partition
containing both entities — pairs co-located in a leaf are likeliest to be
duplicates and stream first, then pairs whose lowest common partition is
one level up, and so on.  Within a level, pairs stream by rank distance,
and the stream is truncated at rank distance < ``window`` so the
mechanism's work matches the SN family's.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..data.entity import Entity
from ..mapreduce.clock import CostModel
from .base import ChargeFn, Mechanism, SortKey


class HierarchyHint(Mechanism):
    """Hierarchy-of-partitions pair prioritization [Whang'13]."""

    name = "hierarchy-hint"

    def __init__(self, leaf_size: int = 8, branching: int = 2) -> None:
        if leaf_size < 2:
            raise ValueError(f"leaf_size must be at least 2, got {leaf_size}")
        if branching < 2:
            raise ValueError(f"branching must be at least 2, got {branching}")
        self.leaf_size = leaf_size
        self.branching = branching

    def pair_stream(
        self,
        entities: Sequence[Entity],
        window: int,
        sort_key: SortKey,
        charge: ChargeFn,
        cost_model: CostModel,
    ) -> Iterator[Tuple[Entity, Entity]]:
        """Yield window-bounded pairs by lowest-common-partition level."""
        charge(self.additional_cost(len(entities), window, cost_model))
        ordered = sorted(entities, key=lambda e: (sort_key(e), e.id))
        n = len(ordered)
        if n < 2:
            return
        levels = self._levels(n)
        buckets: List[List[Tuple[int, int, int]]] = [[] for _ in range(len(levels))]
        for i in range(n):
            for j in range(i + 1, min(n, i + window)):
                level = self._common_level(i, j, levels)
                buckets[level].append((j - i, i, j))
        for bucket in buckets:
            bucket.sort()
            for _, i, j in bucket:
                yield ordered[i], ordered[j]

    def additional_cost(self, n: int, window: int, cost_model: CostModel) -> float:
        """``CostA``: entity sort plus building/ordering the hint."""
        from .base import window_pairs_count

        pairs = window_pairs_count(n, window)
        return (
            cost_model.hint_setup
            + cost_model.sort_cost(n)
            + cost_model.sort_cost(pairs)
        )

    # ------------------------------------------------------------------

    def _levels(self, n: int) -> List[int]:
        """Partition sizes per level: leaf_size, leaf_size*branching, ..."""
        sizes = [self.leaf_size]
        while sizes[-1] < n:
            sizes.append(sizes[-1] * self.branching)
        return sizes

    def _common_level(self, i: int, j: int, levels: Sequence[int]) -> int:
        """Index of the smallest partition level containing both ranks."""
        for index, size in enumerate(levels):
            if i // size == j // size:
                return index
        return len(levels) - 1


__all__ = ["HierarchyHint"]
