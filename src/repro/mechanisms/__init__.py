"""Progressive mechanisms M: SN + hint, PSNM, popcorn stopping, exhaustive."""

from .base import (
    DEFAULT_BATCH_PAIRS,
    DistinctBudget,
    block_sort_key,
    Mechanism,
    NeverStop,
    ResolveStats,
    StopCondition,
    resolve_block,
    set_default_batch_pairs,
    window_pairs_count,
)
from .full import FullResolution
from .hierarchy import HierarchyHint
from .popcorn import PopcornCondition
from .psnm import PSNM
from .sorted_neighbor import SortedNeighborHint

__all__ = [
    "Mechanism",
    "ResolveStats",
    "StopCondition",
    "NeverStop",
    "DistinctBudget",
    "block_sort_key",
    "resolve_block",
    "window_pairs_count",
    "SortedNeighborHint",
    "PSNM",
    "FullResolution",
    "HierarchyHint",
    "PopcornCondition",
    "DEFAULT_BATCH_PAIRS",
    "set_default_batch_pairs",
]
