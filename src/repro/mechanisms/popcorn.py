"""The popcorn stopping scheme [Whang et al. '13].

Section VI-B1: "The popcorn scheme terminates the mechanism M on the block
at hand when the rate of the newly identified duplicate pairs drops below
the specified threshold."

Implemented as a barren-run detector: if more than ``1 / threshold``
consecutive comparisons pass without a new duplicate, the instantaneous
duplicate rate has provably dropped below ``threshold`` and the block is
abandoned.  This maps the paper's threshold scale monotonically —
``0.1`` stops after 10 barren comparisons (very aggressive, low final
recall), ``0.00001`` after 100 000 (effectively resolves small blocks to
completion, like Basic F).
"""

from __future__ import annotations

import math

from .base import ResolveStats, StopCondition


class PopcornCondition(StopCondition):
    """Stop when the duplicate-detection rate falls below ``threshold``."""

    def __init__(self, threshold: float) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"popcorn threshold must be in (0, 1), got {threshold}")
        self.threshold = threshold
        #: comparisons allowed without a duplicate before stopping.
        self.barren_limit = math.ceil(1.0 / threshold)
        self._barren = 0

    def should_stop(self, stats: ResolveStats, was_duplicate: bool) -> bool:
        if was_duplicate:
            self._barren = 0
            return False
        self._barren += 1
        return self._barren >= self.barren_limit

    def reset(self) -> None:
        """Re-arm the detector for the next block."""
        self._barren = 0


__all__ = ["PopcornCondition"]
