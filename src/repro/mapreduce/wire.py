"""Slim wire format for task payloads crossing the worker boundary.

The parallel backend moves two kinds of data over process pipes: reduce
inputs (driver -> worker) and task payloads (worker -> driver).  Pickling
the payload dataclasses directly is wasteful — every :class:`Event`,
:class:`SpanFragment` and :class:`OutputFile` instance pays dataclass
``__reduce__`` overhead (per-instance state dicts, attribute-name
back-references), and ER payloads are text-heavy (entity attributes,
blocking keys) with enormous internal redundancy.

This module packs payloads into plain nested tuples before pickling and
applies zlib when the pickle is large enough to benefit:

* **tuple packing** — dataclass instances become positional tuples, so the
  stream carries values only, no per-instance construction scaffolding;
* **compression** — streams above :data:`COMPRESS_MIN_BYTES` are
  zlib-compressed and kept only when compression actually wins (ER text
  routinely shrinks 3-10x); tiny streams skip the attempt entirely.

Every blob starts with a one-byte flag (:data:`_RAW` / :data:`_ZLIB`), so
decoding is self-describing.  Encoding is deterministic and lossless:
``decode(encode(p))`` reconstructs a payload that compares bit-for-bit
equal to ``p`` in every engine-observable field, which is what keeps the
cross-backend determinism contract intact.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any, List, Sequence

from .counters import Counters
from .types import Event, OutputFile, SpanFragment

#: Pickle streams below this size are never worth a compression attempt.
COMPRESS_MIN_BYTES = 128

#: zlib level: text-heavy ER payloads compress well past the default; 9
#: costs little extra at these sizes (payloads are tens of KB, not MB).
COMPRESS_LEVEL = 9

_RAW = b"\x00"
_ZLIB = b"\x01"

_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _build_zdict() -> bytes:
    """Preset zlib dictionary seeded with the payload schema's vocabulary.

    Small payloads (a reduce task's worth of events and records) repeat the
    same counter names, event kinds, span keys and framing byte patterns as
    every *other* payload, but per-blob zlib cannot see across blobs.  A
    preset dictionary hands the compressor that shared context up front;
    with it, even sub-kilobyte payloads compress like they were part of a
    large stream.  The dictionary is a synthetic pickle built from package
    constants, so driver and (forked) workers derive the identical bytes —
    nothing is ever persisted, so cross-version stability is irrelevant.
    """
    skeleton = (
        # Counter vocabulary, as the (group, name) pairs _pack_counters emits.
        (
            (("engine", "map_records"), 0),
            (("engine", "map_emitted"), 0),
            (("engine", "combine_input"), 0),
            (("engine", "combine_output"), 0),
            (("engine", "reduce_groups"), 0),
            (("engine", "reduce_records"), 0),
            (("driver", "blocks_resolved"), 0),
            (("driver", "duplicates"), 0),
            (("driver", "stat_blocks"), 0),
        ),
        # Stat-delta vocabulary.
        (("matcher", "cache_hits", 0), ("matcher", "cache_misses", 0)),
        # Event / span framing: kinds, categories and arg keys that recur
        # in every task, with the numeric shapes they usually carry.
        tuple((float(i), "duplicate", (i, i + 1)) for i in range(4)),
        tuple(
            ("reduce[0]", "task", 0.0, 1.0, (("phase", "reduce"), ("task", 0)))
            for _ in range(2)
        ),
        ("block", "map", "reduce", "attempt", "speculative", "duplicates"),
        # Attribute names of the paper's three entity families (map payloads
        # ship entities; their attrs dicts repeat these keys).
        (
            "title", "abstract", "venue", "authors", "publisher", "year",
            "isbn", "pages", "language", "format", "name", "surname",
            "street", "city", "state", "zip", "birth_year", "phone",
        ),
        # Output-file tuples as _pack_files emits them.
        tuple((0, i, 0.0, ((i, i + 1),)) for i in range(3)),
    )
    return pickle.dumps(skeleton, protocol=_PROTOCOL)


#: Shared compression context for small payloads (see :func:`_build_zdict`).
_ZDICT = _build_zdict()


def _encode(obj: Any) -> bytes:
    """Pickle ``obj`` and compress when it pays off."""
    data = pickle.dumps(obj, protocol=_PROTOCOL)
    if len(data) >= COMPRESS_MIN_BYTES:
        compressor = zlib.compressobj(COMPRESS_LEVEL, zdict=_ZDICT)
        packed = compressor.compress(data) + compressor.flush()
        if len(packed) + 1 < len(data):
            return _ZLIB + packed
    return _RAW + data


def _decode(blob: bytes) -> Any:
    flag, data = blob[:1], blob[1:]
    if flag == _ZLIB:
        data = zlib.decompressobj(zdict=_ZDICT).decompress(data)
    elif flag != _RAW:
        raise ValueError(f"unknown wire flag {flag!r}")
    return pickle.loads(data)


# ---------------------------------------------------------------------------
# Structural packing
# ---------------------------------------------------------------------------


def _pack_events(events: Sequence[Event]) -> tuple:
    return tuple((e.time, e.kind, e.payload) for e in events)


def _unpack_events(packed: tuple) -> List[Event]:
    return [Event(time=t, kind=k, payload=p) for t, k, p in packed]


def _pack_spans(spans: Sequence[SpanFragment]) -> tuple:
    return tuple((s.name, s.category, s.start, s.end, s.args) for s in spans)


def _unpack_spans(packed: tuple) -> List[SpanFragment]:
    return [
        SpanFragment(name=n, category=c, start=s, end=e, args=a)
        for n, c, s, e, a in packed
    ]


def _pack_counters(counters: Counters) -> tuple:
    return tuple(counters.items())


def _unpack_counters(packed: tuple) -> Counters:
    counters = Counters()
    for (group, name), value in packed:
        counters.increment(group, name, value)
    return counters


def _pack_files(files: Sequence[OutputFile]) -> tuple:
    return tuple((f.task_id, f.index, f.close_time, f.records) for f in files)


def _unpack_files(packed: tuple) -> List[OutputFile]:
    return [
        OutputFile(task_id=t, index=i, close_time=c, records=r)
        for t, i, c, r in packed
    ]


# ---------------------------------------------------------------------------
# Payload encode/decode (imports deferred: executors imports this module)
# ---------------------------------------------------------------------------


def encode_map_payload(payload) -> bytes:
    """Encode a :class:`~repro.mapreduce.executors.MapTaskPayload`."""
    return _encode(
        (
            payload.task_id,
            payload.cost,
            _pack_events(payload.events),
            payload.emitted,
            _pack_counters(payload.counters),
            payload.num_records,
            payload.combine_input,
            payload.combine_output,
            _pack_spans(payload.spans),
            payload.stat_deltas,
            payload.wall_ns,
            payload.charge_profile,
        )
    )


def decode_map_payload(blob: bytes):
    from .executors import MapTaskPayload

    (
        task_id,
        cost,
        events,
        emitted,
        counters,
        num_records,
        combine_input,
        combine_output,
        spans,
        stat_deltas,
        wall_ns,
        charge_profile,
    ) = _decode(blob)
    return MapTaskPayload(
        task_id=task_id,
        cost=cost,
        events=_unpack_events(events),
        emitted=list(emitted),
        counters=_unpack_counters(counters),
        num_records=num_records,
        combine_input=combine_input,
        combine_output=combine_output,
        spans=_unpack_spans(spans),
        stat_deltas=stat_deltas,
        wall_ns=wall_ns,
        charge_profile=charge_profile,
    )


def encode_reduce_payload(payload) -> bytes:
    """Encode a :class:`~repro.mapreduce.executors.ReduceTaskPayload`."""
    return _encode(
        (
            payload.task_id,
            payload.cost,
            _pack_events(payload.events),
            payload.written,
            _pack_files(payload.files),
            _pack_counters(payload.counters),
            payload.num_groups,
            payload.num_records,
            _pack_spans(payload.spans),
            payload.stat_deltas,
            payload.wall_ns,
            payload.charge_profile,
        )
    )


def decode_reduce_payload(blob: bytes):
    from .executors import ReduceTaskPayload

    (
        task_id,
        cost,
        events,
        written,
        files,
        counters,
        num_groups,
        num_records,
        spans,
        stat_deltas,
        wall_ns,
        charge_profile,
    ) = _decode(blob)
    return ReduceTaskPayload(
        task_id=task_id,
        cost=cost,
        events=_unpack_events(events),
        written=list(written),
        files=_unpack_files(files),
        counters=_unpack_counters(counters),
        num_groups=num_groups,
        num_records=num_records,
        spans=_unpack_spans(spans),
        stat_deltas=stat_deltas,
        wall_ns=wall_ns,
        charge_profile=charge_profile,
    )


def encode_records(records: Sequence[Any]) -> bytes:
    """Encode a task's input records (reduce partitions shipped to workers)."""
    return _encode(tuple(records))


def decode_records(blob: bytes) -> List[Any]:
    return list(_decode(blob))


def raw_pickle_size(payload: Any) -> int:
    """Bytes the pre-wire encoding (plain pickle, as the stdlib pool would
    send it) needs for ``payload`` — the baseline the ``driver.ipc_*_raw``
    counters compare against."""
    return len(pickle.dumps(payload))


__all__ = [
    "COMPRESS_MIN_BYTES",
    "COMPRESS_LEVEL",
    "encode_map_payload",
    "decode_map_payload",
    "encode_reduce_payload",
    "decode_reduce_payload",
    "encode_records",
    "decode_records",
    "raw_pickle_size",
]
