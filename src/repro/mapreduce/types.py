"""Shared datatypes for the MapReduce simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped occurrence inside a task.

    Progressive ER emits one event per discovered duplicate pair; the
    evaluation layer turns the event stream into recall-versus-time curves.

    Attributes:
        time: global virtual time at which the event became available.
        kind: event category, e.g. ``"duplicate"``.
        payload: event data (compared last in ordering, kept comparable by
            convention; duplicate events carry an entity-id pair).
    """

    time: float
    kind: str
    payload: Any = field(compare=False)


@dataclass(frozen=True)
class SpanFragment:
    """A task-local trace span recorded inside a task computation.

    Fragments are recorded in *task-local* virtual time (like events) and
    rebased to global time by the engine once the task is scheduled on a
    slot.  They ride back to the driver inside the task payload, so serial
    and process backends produce identical traces.  ``args`` is a sorted
    tuple of ``(key, value)`` pairs — hashable and picklable by design.
    """

    name: str
    category: str
    start: float
    end: float
    args: Tuple[Tuple[str, Any], ...] = ()

    def arg(self, key: str, default: Any = None) -> Any:
        """Value of one annotation key (linear scan; args are tiny)."""
        for k, v in self.args:
            if k == key:
                return v
        return default


@dataclass
class TaskResult:
    """What a single (map or reduce) task produced.

    Attributes:
        task_id: index of the task within its phase.
        cost: total virtual cost the task accumulated.
        start_time: global time at which the task began executing.
        end_time: global time at which the task finished (start + cost).
        events: timestamped events recorded by the task (global time).
        output: records written via ``context.write`` (reduce side) or
            emitted key-value pairs (map side, grouped by partition).
        num_failed_attempts: attempts that crashed (or were injected as
            legacy full-cost failures) before the task committed.
        speculative: True when the committing attempt was a speculative
            backup that beat the original (see
            :mod:`repro.mapreduce.faults`).
        wall_ns: wall-clock nanoseconds the committing attempt's task body
            took in whichever process ran it.  Observability only —
            excluded from equality so backend-parity fingerprints and
            result comparisons ignore it; never folded into counters.
        charge_profile: sorted ``(category, units)`` pairs of the task's
            tagged virtual charges ("compare", "emit", "shuffle", "sort",
            "read"); the untagged remainder is ``cost - sum(units)``.
            Deterministic (derived from virtual charging), used together
            with ``wall_ns`` by :mod:`repro.core.calibration`.
    """

    task_id: int
    cost: float
    start_time: float
    end_time: float
    events: List[Event] = field(default_factory=list)
    output: List[Any] = field(default_factory=list)
    num_failed_attempts: int = 0
    speculative: bool = False
    wall_ns: int = field(default=0, compare=False)
    charge_profile: Tuple[Tuple[str, float], ...] = ()


@dataclass
class OutputFile:
    """An incrementally flushed result file (Section III-B).

    The reduce function writes results to a new file every α cost units so
    partial results can be consumed while the job is still running.  The
    simulator models a file as the list of records plus the global time at
    which the file was closed (i.e. became readable).
    """

    task_id: int
    index: int
    close_time: float
    records: List[Any] = field(default_factory=list)


@dataclass
class JobResult:
    """Aggregate result of one simulated MapReduce job.

    Attributes:
        start_time: global time the job was submitted.
        map_phase_end: global time when the last map task finished.
        end_time: global time when the last reduce task finished.
        map_tasks / reduce_tasks: per-task results.
        events: all task events merged and sorted by time.
        output: all reduce outputs concatenated (task order).
        output_files: incrementally flushed files from all reduce tasks.
        counters: aggregated job counters.
    """

    start_time: float
    map_phase_end: float
    end_time: float
    map_tasks: List[TaskResult]
    reduce_tasks: List[TaskResult]
    events: List[Event]
    output: List[Any]
    output_files: List[OutputFile]
    counters: "Counters"

    @property
    def duration(self) -> float:
        """Total virtual duration of the job."""
        return self.end_time - self.start_time


# Convenience aliases used across the package.
Key = Any
Value = Any
KeyValue = Tuple[Key, Value]
Partition = List[KeyValue]
Config = Dict[str, Any]

from .counters import Counters  # noqa: E402  (re-export for type reference)

__all__ = [
    "Event",
    "SpanFragment",
    "TaskResult",
    "OutputFile",
    "JobResult",
    "Key",
    "Value",
    "KeyValue",
    "Partition",
    "Config",
    "Counters",
]
