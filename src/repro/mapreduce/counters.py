"""Hadoop-style counters for the MapReduce simulator."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Tuple


class Counters:
    """A two-level (group, name) -> integer counter map.

    Mirrors Hadoop's job counters: tasks increment local counters and the
    engine aggregates them into the job result.

    Counter groups are namespaced by the layer that owns them:

    * ``engine.*`` — framework bookkeeping incremented by the engine
      itself (``map_records``, ``map_emitted``, ``map_retries``,
      ``combine_input``, ``combine_output``, ``reduce_groups``,
      ``reduce_records``, ``reduce_retries``);
    * ``driver.*`` — ER-pipeline counters incremented inside tasks
      (``blocks_resolved``, ``duplicates``, ``stat_blocks``);
    * ``matcher.*`` — similarity-layer statistics (``cache_hits``,
      ``cache_misses``, ``cache_entries``); process-wide, surfaced via
      :func:`repro.similarity.matchers.similarity_cache_counters` and
      snapshotted by the metrics registry, never merged into job counters
      (per-worker caches diverge across execution backends);
    * ``fault.*`` — fault-injection statistics per phase, incremented by
      the engine when a :class:`~repro.mapreduce.faults.FaultPlan` is
      attached (``{map,reduce}_failed_attempts``, ``_retries``,
      ``_speculative_launched``, ``_speculative_wins``,
      ``_speculative_failed``, ``_killed_attempts``,
      ``_blacklisted_slots``).  Only non-zero values are ever recorded,
      so a fault-free run carries no ``fault.*`` keys at all.

    Jobs may add their own groups freely; the namespaces above are
    reserved for the framework.
    """

    def __init__(self) -> None:
        self._values: Dict[Tuple[str, str], int] = defaultdict(int)

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``(group, name)``."""
        self._values[(group, name)] += amount

    def get(self, group: str, name: str) -> int:
        """Current value of ``(group, name)`` (0 if never incremented)."""
        return self._values.get((group, name), 0)

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one."""
        for key, value in other._values.items():
            self._values[key] += value

    def items(self) -> Iterable[Tuple[Tuple[str, str], int]]:
        """Iterate ``((group, name), value)`` pairs."""
        return self._values.items()

    def as_dict(self) -> Dict[Tuple[str, str], int]:
        """Snapshot of all counters."""
        return dict(self._values)

    def as_flat_dict(self) -> Dict[str, int]:
        """Snapshot keyed ``"group.name"``, sorted — the JSON-export shape
        used by the metrics registry."""
        return {
            f"{group}.{name}": value
            for (group, name), value in sorted(self._values.items())
        }

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{g}.{n}={v}" for (g, n), v in sorted(self._values.items()))
        return f"Counters({inner})"
