"""Hadoop-style counters for the MapReduce simulator."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Tuple


class Counters:
    """A two-level (group, name) -> integer counter map.

    Mirrors Hadoop's job counters: tasks increment local counters and the
    engine aggregates them into the job result.
    """

    def __init__(self) -> None:
        self._values: Dict[Tuple[str, str], int] = defaultdict(int)

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``(group, name)``."""
        self._values[(group, name)] += amount

    def get(self, group: str, name: str) -> int:
        """Current value of ``(group, name)`` (0 if never incremented)."""
        return self._values.get((group, name), 0)

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one."""
        for key, value in other._values.items():
            self._values[key] += value

    def items(self) -> Iterable[Tuple[Tuple[str, str], int]]:
        """Iterate ``((group, name), value)`` pairs."""
        return self._values.items()

    def as_dict(self) -> Dict[Tuple[str, str], int]:
        """Snapshot of all counters."""
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{g}.{n}={v}" for (g, n), v in sorted(self._values.items()))
        return f"Counters({inner})"
